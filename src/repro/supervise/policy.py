"""The supervisor's knobs: retries, backoff, budgets, quorum.

Everything here is a pure function of the policy and a seeded RNG — no
wall-clock reads (replicheck R004) and no OS entropy (R001): the jitter
stream comes from :func:`repro.rng.ensure_rng`, so a supervised run's
whole retry schedule is reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import ensure_rng

__all__ = ["RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """How hard (and how wide) the supervisor tries before giving up.

    * ``max_attempts`` — total launches, the first included; when they
      are exhausted the supervisor declares a tier-3 durable failure.
    * ``backoff_base_s`` / ``backoff_factor`` / ``backoff_max_s`` —
      exponential backoff before each retry, capped; jitter up to
      ``backoff_jitter`` (a fraction of the raw delay) is added from a
      seeded stream so co-scheduled supervisors don't retry in lockstep
      yet stay reproducible.
    * ``attempt_timeout_s`` — per-attempt wall-clock budget, enforced by
      the launcher's mesh timeout: a wedged attempt is killed and
      classified, it can never hang the supervisor (``None`` keeps the
      launcher's default).
    * ``min_ranks`` — the quorum: in-mesh recovery may shrink the mesh
      and finish in place (graceful degradation) only while at least
      this many ranks survive; one fewer raises
      :class:`~repro.errors.QuorumLostError` and escalates to tier 2.
    * ``rank_shrink`` — tier-2 degradation factor: a restart at
      ``max(min_ranks, floor(ranks * rank_shrink))`` ranks sidesteps
      capacity problems (a flaky node set that keeps killing the wide
      mesh) rather than retrying into them.
    """

    max_attempts: int = 4
    min_ranks: int = 1
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    backoff_jitter: float = 0.5
    attempt_timeout_s: float | None = None
    rank_shrink: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.min_ranks < 1:
            raise ValueError("min_ranks must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive")
        if not 0.0 < self.rank_shrink <= 1.0:
            raise ValueError("rank_shrink must be in (0, 1]")

    def backoff_s(self, retry: int,
                  rng: np.random.Generator | int | None = None) -> float:
        """Delay before the ``retry``-th relaunch (``retry`` counts from
        1).  Raw delay is ``base * factor**(retry-1)`` capped at
        ``backoff_max_s``; the jittered value lands in
        ``[raw, raw * (1 + backoff_jitter)]``."""
        if retry < 1:
            raise ValueError("retry counts from 1")
        raw = min(self.backoff_max_s,
                  self.backoff_base_s * self.backoff_factor ** (retry - 1))
        return raw * (1.0 + self.backoff_jitter * float(ensure_rng(rng).random()))

    def reduced_ranks(self, n_ranks: int) -> int:
        """The tier-2 mesh width: shrink by ``rank_shrink``, floored at
        the quorum (a degraded restart below quorum would be judged too
        narrow by its own policy)."""
        return max(self.min_ranks, 1, int(n_ranks * self.rank_shrink))

    @staticmethod
    def other_dist(dist_kind: str) -> str:
        """The tier-2 distribution flip: a failure pattern tied to one
        data layout (e.g. the rank holding a monolithic partition keeps
        dying) is sidestepped by the other scheme."""
        return "mps" if dist_kind == "cyclic" else "cyclic"
