"""Run supervision: escalation-ladder recovery over the live engines.

The in-mesh fault tolerance of PR 1 (agree → shrink → redistribute →
resume) handles the common case — a rank dies, the survivors absorb its
share.  This package adds the layers above it, the paper's operational
reality for multi-day runs on flaky clusters:

* :mod:`repro.supervise.policy` — :class:`RecoveryPolicy`: retry budget,
  exponential backoff with seeded jitter, per-attempt wall-clock budget,
  and the ``min_ranks`` quorum below which a shrunk mesh may no longer
  limp to the finish line;
* :mod:`repro.supervise.supervisor` — :class:`Supervisor`: drives the
  escalation ladder (tier 0 in-mesh recovery, tier 1 kill + restart from
  the latest checkpoint, tier 2 restart degraded — fewer ranks and/or
  the other data distribution, tier 3 durable failure with the first
  stall diagnosis attached) and records every attempt as a chain in the
  run registry;
* :mod:`repro.supervise.chaos` — seeded chaos campaigns: N runs with
  randomized multi-fault schedules (die/hang/slow, including faults
  injected *during* recovery), each asserting the supervision invariant:
  the run ends bitwise-identical to the undisturbed reference, or fails
  cleanly at tier 3 naming its diagnosis — never a hang, never a
  partial result.
"""

from repro.supervise.policy import RecoveryPolicy
from repro.supervise.supervisor import (
    TIER_DEGRADE,
    TIER_FAIL,
    TIER_IN_MESH,
    TIER_RESTART,
    AttemptRecord,
    SupervisedOutcome,
    Supervisor,
)

__all__ = [
    "RecoveryPolicy",
    "Supervisor",
    "AttemptRecord",
    "SupervisedOutcome",
    "TIER_IN_MESH",
    "TIER_RESTART",
    "TIER_DEGRADE",
    "TIER_FAIL",
]
