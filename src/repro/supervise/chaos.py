"""Seeded chaos campaigns over the supervised engines.

A campaign runs the same small search N times, each time under a
randomized multi-fault schedule (deaths, hangs, transient stragglers —
including faults timed to land *inside* a recovery), and asserts the
supervision invariant for every run:

* the run ends **bitwise-identical** to the undisturbed reference (same
  Newick topology, log likelihood within ``logl_tol``), **or**
* it fails **cleanly at tier 3**, naming its diagnosis —

never a hang (per-attempt budgets bound every launch), never a partial
result.  Schedules are a pure function of the campaign seed via
:func:`repro.rng.ensure_rng`, so a red campaign is replayed exactly by
its seed.

Every chaos run is registered (with its full attempt chain) in a run
registry under the campaign's output directory, so a CI failure ships
the complete escalation story as artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.par.faultcomm import (
    MODE_DIE,
    MODE_HANG,
    MODE_SLOW,
    WHEN_ANY,
    WHEN_RECOVERY,
    FaultPlan,
    FaultSpec,
)
from repro.rng import ensure_rng
from repro.search.search import SearchConfig
from repro.supervise.policy import RecoveryPolicy
from repro.supervise.supervisor import TIER_FAIL, Supervisor

__all__ = [
    "ChaosRun",
    "ChaosReport",
    "generate_schedule",
    "run_campaign",
    "DEFAULT_LOGL_TOL",
    "REPORT_FILENAME",
]

#: |Δ logL| a matching run may show against the undisturbed reference.
#: The engines are replica-exact; the tolerance only absorbs the ε-stub
#: noise of empty cyclic shares (~1e-10) across differing mesh widths.
DEFAULT_LOGL_TOL = 1e-8

REPORT_FILENAME = "chaos_report.json"

#: Mode mix for drawn faults: deaths dominate (the fail-stop model the
#: recovery machinery is built for), hangs exercise bounded-receive
#: detection, slows exercise the straggler-vs-stall distinction.
_MODE_CHOICES = (MODE_DIE, MODE_HANG, MODE_SLOW)
_MODE_WEIGHTS = (0.6, 0.2, 0.2)


def generate_schedule(
    rng: np.random.Generator | int | None,
    n_ranks: int,
    engine: str = "decentralized",
    max_faults: int = 3,
    max_call: int = 40,
    hang_seconds: float = 2.0,
) -> FaultPlan:
    """Draw one randomized multi-fault schedule from ``rng``.

    Lethal faults (die/hang — a hang eventually exits too) are capped at
    ``n_ranks - 1`` so the mesh always keeps one survivor to tell the
    story; extra draws degrade to ``slow``.  With probability ~0.3 a
    follow-up fault is scoped ``when="recovery"`` (it fires during the
    agree/shrink repair of an earlier fault, or right after the resume)
    — the multi-fault case single-fault tests never reach.  Fork-join
    schedules include rank 0 so master-death → tier-1 restarts are
    drawn naturally.
    """
    rng = ensure_rng(rng)
    n_faults = int(rng.integers(1, max_faults + 1))
    lethal_budget = max(0, n_ranks - 1)
    specs: list[FaultSpec] = []
    taken: set[tuple[int, str]] = set()
    for _ in range(n_faults):
        rank = int(rng.integers(0, n_ranks))
        mode = str(rng.choice(_MODE_CHOICES, p=_MODE_WEIGHTS))
        when = WHEN_ANY
        if specs and float(rng.random()) < 0.3:
            when = WHEN_RECOVERY
        if when == WHEN_RECOVERY:
            at_call = int(rng.integers(1, 5))  # agree=1, shrink=2, resume=3+
        else:
            at_call = int(rng.integers(1, max_call + 1))
        if (rank, when) in taken:
            continue  # one fault per (rank, scope): the first wins anyway
        if mode in (MODE_DIE, MODE_HANG):
            if lethal_budget <= 0:
                mode = MODE_SLOW
            else:
                lethal_budget -= 1
        taken.add((rank, when))
        specs.append(FaultSpec(rank, at_call, mode, when))
    return FaultPlan(specs=tuple(specs), hang_seconds=hang_seconds)


@dataclass
class ChaosRun:
    """One campaign run and its verdict against the invariant."""

    index: int
    schedule: str
    ok: bool  # the supervised run produced a result
    matched: bool | None  # result bitwise-identical to the reference
    clean_failure: bool | None  # tier-3 with a named diagnosis/error
    tier: int
    attempts: int
    verdict: str  # final attempt verdict (or tier-3 error summary)
    logl: float | None = None
    run_id: str | None = None

    @property
    def invariant_held(self) -> bool:
        return bool(self.matched) if self.ok else bool(self.clean_failure)

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index, "schedule": self.schedule, "ok": self.ok,
            "matched": self.matched, "clean_failure": self.clean_failure,
            "invariant_held": self.invariant_held, "tier": self.tier,
            "attempts": self.attempts, "verdict": self.verdict,
            "logl": self.logl, "run_id": self.run_id,
        }


@dataclass
class ChaosReport:
    """The whole campaign: reference, runs, violations."""

    seed: int
    engine: str
    n_ranks: int
    dist_kind: str
    reference_logl: float
    reference_newick: str
    runs: list[ChaosRun] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "chaos_campaign",
            "seed": self.seed, "engine": self.engine,
            "ranks": self.n_ranks, "dist": self.dist_kind,
            "reference": {"logl": self.reference_logl,
                          "newick": self.reference_newick},
            "n_runs": len(self.runs),
            "n_recovered": sum(1 for r in self.runs if r.ok),
            "n_tier3": sum(1 for r in self.runs if not r.ok),
            "ok": self.ok,
            "violations": self.violations,
            "runs": [r.to_dict() for r in self.runs],
        }

    def format_table(self) -> str:
        header = (f"{'run':>4} {'schedule':<34} {'tier':>4} {'att':>4} "
                  f"{'outcome':<10} {'logL':>14}  verdict")
        lines = [header, "-" * len(header)]
        for r in self.runs:
            outcome = ("recovered" if r.ok else "tier-3")
            if not r.invariant_held:
                outcome = "VIOLATION"
            logl = f"{r.logl:.4f}" if r.logl is not None else "-"
            lines.append(f"{r.index:>4} {r.schedule:<34} {r.tier:>4} "
                         f"{r.attempts:>4} {outcome:<10} {logl:>14}  "
                         f"{r.verdict}")
        lines.append("-" * len(header))
        n_ok = sum(1 for r in self.runs if r.ok)
        lines.append(
            f"{len(self.runs)} run(s): {n_ok} recovered bitwise-identical, "
            f"{len(self.runs) - n_ok} failed cleanly at tier 3, "
            f"{len(self.violations)} invariant violation(s)")
        for v in self.violations:
            lines.append(f"VIOLATION: {v}")
        return "\n".join(lines)


def _chaos_policy() -> RecoveryPolicy:
    """Campaign default: quick backoff (chaos measures correctness, not
    politeness), a hard per-attempt budget so no schedule can wedge the
    campaign, and a small retry count to bound total wall-clock."""
    return RecoveryPolicy(max_attempts=3, backoff_base_s=0.05,
                          backoff_max_s=0.5, attempt_timeout_s=120.0)


def run_campaign(
    parts: list,
    taxa: list[str],
    start_newick: str,
    *,
    n_runs: int = 20,
    seed: int = 0,
    n_ranks: int = 3,
    engine: str = "decentralized",
    dist_kind: str = "cyclic",
    config: SearchConfig | None = None,
    policy: RecoveryPolicy | None = None,
    n_branch_sets: int = 1,
    out_dir: str | Path | None = None,
    detect_timeout: float = 6.0,
    max_faults: int = 3,
    hang_seconds: float = 2.0,
    logl_tol: float = DEFAULT_LOGL_TOL,
    monitor: bool = False,
    log: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run ``n_runs`` seeded chaos runs and check the invariant on each.

    ``hang_seconds`` must stay *under* ``detect_timeout``: a slow fault
    then resolves before bounded-receive detection fires (a transient
    straggler, not a false-positive failure), while a hang still turns
    into a detectable death when the hung process exits.

    Returns the :class:`ChaosReport`; when ``out_dir`` is given the
    report JSON, every run's registry manifest (with its attempt chain)
    and the supervisors' work dirs are left there as artifacts.
    """
    if hang_seconds >= detect_timeout:
        raise ValueError(
            "hang_seconds must be < detect_timeout (a longer sleep turns "
            "the benign slow fault into a false-positive rank failure)")
    emit = log or (lambda msg: None)
    rng = ensure_rng(seed)
    config = config or SearchConfig(
        max_iterations=10, radius_max=2, model_opt=False,
        epsilon=1e-6, branch_passes=3)
    out = Path(out_dir) if out_dir is not None else None
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
    registry = None
    if out is not None:
        from repro.obs.registry import RunRegistry

        registry = RunRegistry(out / "runs")

    emit(f"[chaos] reference run: undisturbed {engine} on {n_ranks} "
         f"rank(s) ({dist_kind})")
    reference = _undisturbed_reference(
        parts, taxa, start_newick, n_ranks, config, dist_kind, engine,
        n_branch_sets, detect_timeout)

    report = ChaosReport(
        seed=seed, engine=engine, n_ranks=n_ranks, dist_kind=dist_kind,
        reference_logl=reference.logl, reference_newick=reference.newick)

    for index in range(n_runs):
        plan = generate_schedule(
            rng, n_ranks, engine=engine, max_faults=max_faults,
            hang_seconds=hang_seconds)
        schedule = plan.describe()
        emit(f"[chaos] run {index + 1}/{n_runs}: faults {schedule}")
        run_id = None
        if registry is not None:
            run_id = registry.register({
                "command": "chaos", "engine": engine, "ranks": n_ranks,
                "dist": dist_kind, "seed": seed, "chaos_index": index,
                "fault_schedule": schedule,
            })
        supervisor = Supervisor(
            policy or _chaos_policy(), engine=engine,
            work_dir=(out / f"run{index:03d}" if out is not None else None),
            registry=registry, run_id=run_id, rng=rng,
            detect_timeout=detect_timeout, monitor=monitor, log=log,
        )
        outcome = supervisor.run(
            parts, taxa, start_newick, n_ranks, config=config,
            dist_kind=dist_kind, n_branch_sets=n_branch_sets,
            fault_plan=plan)

        matched = clean = None
        logl = None
        if outcome.ok:
            assert outcome.result is not None
            logl = outcome.result.logl
            matched = (outcome.result.newick == reference.newick
                       and abs(logl - reference.logl) <= logl_tol)
            verdict = outcome.attempts[-1].verdict
            if not matched:
                report.violations.append(
                    f"run {index} ({schedule}): recovered but diverged "
                    f"from the reference (logL {logl:.6f} vs "
                    f"{reference.logl:.6f}, trees "
                    f"{'equal' if outcome.result.newick == reference.newick else 'differ'})")
        else:
            clean = (outcome.tier == TIER_FAIL
                     and bool(outcome.error or outcome.diagnosis))
            verdict = outcome.error or outcome.attempts[-1].verdict
            if not clean:
                report.violations.append(
                    f"run {index} ({schedule}): failed without a clean "
                    f"tier-3 verdict (tier {outcome.tier})")
        status = "completed" if outcome.ok else "failed"
        if registry is not None and run_id is not None:
            registry.update(run_id, status=status, result=(
                {"logl": logl, "matched": matched} if outcome.ok else None))
        report.runs.append(ChaosRun(
            index=index, schedule=schedule, ok=outcome.ok, matched=matched,
            clean_failure=clean, tier=outcome.tier,
            attempts=len(outcome.attempts), verdict=verdict, logl=logl,
            run_id=run_id))

    if out is not None:
        (out / REPORT_FILENAME).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n")
    return report


def _undisturbed_reference(
    parts, taxa, start_newick, n_ranks, config, dist_kind, engine,
    n_branch_sets, detect_timeout,
):
    """The bitwise target every chaos run must reproduce.  A single
    undisturbed run of the same engine at the same width suffices for
    *every* tier (including degraded tier-2 widths): the engines are
    replica-exact across rank counts and distributions — that is the
    consistency contract the repo's tier-1 tests enforce."""
    from repro.engines.launch import run_decentralized, run_forkjoin

    if engine == "decentralized":
        replicas = run_decentralized(
            parts, taxa, start_newick, n_ranks=n_ranks, config=config,
            dist_kind=dist_kind, n_branch_sets=n_branch_sets,
            detect_timeout=detect_timeout)
        return replicas[0]
    return run_forkjoin(
        parts, taxa, start_newick, n_ranks=n_ranks, config=config,
        dist_kind=dist_kind, n_branch_sets=n_branch_sets,
        detect_timeout=detect_timeout)
