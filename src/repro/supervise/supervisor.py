"""The escalation ladder: relaunch, degrade, or fail — but never hang.

The :class:`Supervisor` sits above the live launchers and turns "the run
died" into a policy decision instead of a stack trace:

====  ==========================================================
tier  remedy
====  ==========================================================
0     in-mesh recovery (agree → shrink → redistribute → resume);
      lives inside the engines, the supervisor just launches
1     kill + restart from the latest checkpoint on a fresh mesh,
      after backoff — the remedy for a fork-join master death and
      for hung-rank / global-stall verdicts the launch timeout
      killed
2     restart *degraded*: reduced rank count and the other data
      distribution — the remedy for quorum loss and for failures
      that keep recurring at the original width
3     durable failure: attempts exhausted; the first stall
      diagnosis (when the monitor saw one) is attached to the run
      registry manifest
====  ==========================================================

Every launch is recorded as one link of an **attempt chain** in the run
registry (tier, engine, ranks, distribution, backoff, verdict), so
``repro runs show`` tells the whole story of a supervised run.

Wall-clock discipline (replicheck R004): the supervisor never *reads* a
clock — per-attempt budgets are enforced by the launcher's mesh timeout
and backoff is a blind ``time.sleep`` whose duration comes from the
seeded policy stream.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.engines.launch import (
    DistributedResult,
    run_decentralized,
    run_forkjoin,
)
from repro.errors import CommError, MasterLostError
from repro.par.faultcomm import FaultPlan
from repro.rng import ensure_rng
from repro.search.search import SearchConfig
from repro.supervise.policy import RecoveryPolicy

__all__ = [
    "Supervisor",
    "AttemptRecord",
    "SupervisedOutcome",
    "TIER_IN_MESH",
    "TIER_RESTART",
    "TIER_DEGRADE",
    "TIER_FAIL",
]

TIER_IN_MESH = 0
TIER_RESTART = 1
TIER_DEGRADE = 2
TIER_FAIL = 3

#: Verdicts that escalate straight to a degraded (tier-2) restart: the
#: failure is *about* the mesh width, so retrying at the same width
#: cannot help.
_DEGRADE_VERDICTS = frozenset({"quorum_lost"})


@dataclass(frozen=True)
class AttemptRecord:
    """One link of the attempt chain (mirrors the registry entry)."""

    attempt: int
    tier: int
    engine: str
    ranks: int
    dist: str
    verdict: str  # ok | master_lost | quorum_lost | timeout | stall:<status> | comm_error
    backoff_s: float = 0.0
    detail: str = ""
    resumed_from: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "attempt": self.attempt, "tier": self.tier,
            "engine": self.engine, "ranks": self.ranks, "dist": self.dist,
            "verdict": self.verdict, "backoff_s": round(self.backoff_s, 3),
            "detail": self.detail, "resumed_from": self.resumed_from,
        }


@dataclass
class SupervisedOutcome:
    """What the whole supervised run amounted to."""

    ok: bool
    tier: int  # tier of the final attempt (TIER_FAIL when exhausted)
    result: DistributedResult | None
    attempts: list[AttemptRecord] = field(default_factory=list)
    #: First stall-class monitor diagnosis seen across all attempts.
    diagnosis: dict[str, Any] | None = None
    error: str = ""
    #: True when the run stopped on a cooperative cancellation (SIGTERM
    #: under a cancellable launch) — not a success, but not a failure
    #: the ladder should retry either; ``result`` holds the partial
    #: state at the stop boundary.
    cancelled: bool = False


class Supervisor:
    """Drive one search to completion (or tier-3) under a policy.

    ``registry``/``run_id`` (both optional) chain every attempt into the
    run's manifest.  ``monitor`` runs the parent-side heartbeat monitor
    per attempt so a timeout verdict carries the *diagnosed* stall
    (``stall:hung_rank``, ``stall:global_stall``, ...) instead of just
    "timed out".  ``sleep`` is injectable for tests.
    """

    def __init__(
        self,
        policy: RecoveryPolicy | None = None,
        *,
        engine: str = "decentralized",
        work_dir: str | Path | None = None,
        registry: Any = None,
        run_id: str | None = None,
        rng: np.random.Generator | int | None = None,
        detect_timeout: float | None = None,
        monitor: bool = True,
        cancellable: bool = False,
        trace_dir: str | Path | None = None,
        trace_id: str = "",
        sleep: Callable[[float], None] = time.sleep,
        log: Callable[[str], None] | None = None,
    ) -> None:
        if engine not in ("decentralized", "forkjoin"):
            raise ValueError(f"unsupported engine {engine!r}")
        self.policy = policy or RecoveryPolicy()
        self.engine = engine
        self.work_dir = Path(work_dir) if work_dir is not None else None
        self.registry = registry
        self.run_id = run_id
        self.rng = ensure_rng(rng)
        self.detect_timeout = detect_timeout
        self.monitor = monitor
        self.cancellable = cancellable
        #: With ``trace_dir``, every attempt traces its ranks into
        #: ``trace_dir/attempt<K>/`` (restarts must not overwrite the
        #: spans of the mesh that died), all stamped with ``trace_id``.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.trace_id = trace_id
        self._sleep = sleep
        self._log = log or (lambda msg: None)

    # -- the ladder ---------------------------------------------------- #
    def run(
        self,
        parts: list,
        taxa: list[str],
        start_newick: str,
        n_ranks: int,
        config: SearchConfig | None = None,
        dist_kind: str = "cyclic",
        n_branch_sets: int = 1,
        fault_plan: FaultPlan | None = None,
    ) -> SupervisedOutcome:
        policy = self.policy
        work_dir = self.work_dir or Path(
            tempfile.mkdtemp(prefix="repro-supervised-"))
        work_dir.mkdir(parents=True, exist_ok=True)
        config = config or SearchConfig()
        if not config.checkpoint_every:
            # Tier 1 is only as good as its checkpoints: force periodic
            # ones into the supervisor's work dir when the caller set
            # none, so every retry resumes instead of redoing.
            config = replace(config, checkpoint_every=1,
                             checkpoint_path=str(work_dir / "supervised.ckpt"))
        ckpt = Path(config.checkpoint_path)  # type: ignore[arg-type]
        if ckpt.suffix != ".npz":
            ckpt = ckpt.with_name(ckpt.name + ".npz")  # np.savez suffixing

        tier = TIER_IN_MESH
        ranks, dist, plan = n_ranks, dist_kind, fault_plan
        attempts: list[AttemptRecord] = []
        first_diagnosis: dict[str, Any] | None = None
        verdict = detail = ""
        for attempt in range(policy.max_attempts):
            backoff = 0.0
            if attempt:
                backoff = policy.backoff_s(attempt, self.rng)
                self._log(f"[supervise] attempt {attempt} (tier {tier}): "
                          f"backing off {backoff:.2f}s, then relaunching "
                          f"{self.engine} on {ranks} rank(s) ({dist})")
                self._sleep(backoff)
            resume = ckpt if ckpt.exists() else None
            monitor_thread = None
            if self.monitor:
                from repro.obs.monitor import MonitorThread

                monitor_dir = work_dir / f"attempt{attempt}" / "monitor"
                monitor_dir.mkdir(parents=True, exist_ok=True)
                monitor_thread = MonitorThread(monitor_dir).start()
                if self.registry is not None and self.run_id is not None:
                    # keep the manifest pointing at the *live* attempt so
                    # `repro watch <run-id>` follows across relaunches
                    self.registry.update(self.run_id,
                                         monitor_dir=str(monitor_dir))
            else:
                monitor_dir = None
            trace_dir = None
            if self.trace_dir is not None:
                trace_dir = self.trace_dir / f"attempt{attempt}"
            result = None
            stall = None
            try:
                result = self._launch(
                    parts, taxa, start_newick, ranks, dist, config,
                    n_branch_sets, plan, resume, monitor_dir, trace_dir)
                verdict, detail = "ok", ""
                if result.cancelled:
                    # A cooperative stop is terminal: the ladder must
                    # not relaunch a run the operator asked to end.
                    verdict = "cancelled"
                    detail = (f"stopped at iteration {result.iterations} "
                              f"by cooperative cancellation")
            except MasterLostError as exc:
                verdict, detail = "master_lost", _summarize(exc)
            except CommError as exc:
                verdict, detail = _classify(exc)
            finally:
                if monitor_thread is not None:
                    monitor_thread.poll_once()  # final state, post-join
                    stall = monitor_thread.stop()
            if stall is not None:
                if first_diagnosis is None:
                    first_diagnosis = stall.to_dict()
                if verdict == "timeout":
                    # The budget killed a wedged mesh; the monitor knows
                    # *why* it was wedged — name the diagnosis, not the
                    # clock.
                    verdict = f"stall:{stall.status}"
                    detail = stall.message

            record = AttemptRecord(
                attempt=attempt, tier=tier, engine=self.engine, ranks=ranks,
                dist=dist, verdict=verdict, backoff_s=backoff, detail=detail,
                resumed_from=str(resume) if resume else None,
            )
            attempts.append(record)
            self._record(record)
            if verdict == "cancelled":
                self._log(f"[supervise] attempt {attempt} cancelled "
                          f"cooperatively (tier {tier}, {ranks} rank(s))")
                self._finalize(False, tier, first_diagnosis, attempts)
                return SupervisedOutcome(
                    ok=False, tier=tier, result=result, attempts=attempts,
                    diagnosis=first_diagnosis, cancelled=True,
                    error="run cancelled")
            if verdict == "ok":
                self._log(f"[supervise] attempt {attempt} succeeded "
                          f"(tier {tier}, {ranks} rank(s))")
                self._finalize(True, tier, first_diagnosis, attempts)
                return SupervisedOutcome(
                    ok=True, tier=tier, result=result, attempts=attempts,
                    diagnosis=first_diagnosis)
            self._log(f"[supervise] attempt {attempt} failed "
                      f"(tier {tier}): {verdict}" +
                      (f" — {detail}" if detail else ""))

            # escalate: replacement-node model — injected faults belong
            # to the mesh that died; a fresh mesh starts clean
            plan = None
            if verdict in _DEGRADE_VERDICTS:
                tier = TIER_DEGRADE
            else:
                tier = min(tier + 1, TIER_DEGRADE)
            if tier == TIER_DEGRADE:
                ranks = policy.reduced_ranks(ranks)
                dist = policy.other_dist(dist)

        error = (f"supervised run failed durably after "
                 f"{policy.max_attempts} attempt(s); last verdict: "
                 f"{verdict}" + (f" — {detail}" if detail else ""))
        self._log(f"[supervise] tier {TIER_FAIL}: {error}")
        self._finalize(False, TIER_FAIL, first_diagnosis, attempts)
        return SupervisedOutcome(
            ok=False, tier=TIER_FAIL, result=None, attempts=attempts,
            diagnosis=first_diagnosis, error=error)

    # -- helpers ------------------------------------------------------- #
    def _launch(
        self, parts, taxa, newick, ranks, dist, config, n_branch_sets,
        plan, resume, monitor_dir, trace_dir=None,
    ) -> DistributedResult:
        kwargs: dict[str, Any] = dict(
            config=config, dist_kind=dist, n_branch_sets=n_branch_sets,
            fault_plan=plan, detect_timeout=self.detect_timeout,
            monitor_dir=monitor_dir, resume_from=resume,
            timeout=self.policy.attempt_timeout_s,
            cancellable=self.cancellable,
            trace_dir=trace_dir, trace_id=self.trace_id,
        )
        if self.engine == "decentralized":
            replicas = run_decentralized(
                parts, taxa, newick, n_ranks=ranks,
                min_ranks=self.policy.min_ranks, **kwargs)
            survivors = [r for r in replicas if r is not None]
            if not survivors:
                raise CommError("no surviving replicas")
            return survivors[0]
        return run_forkjoin(parts, taxa, newick, n_ranks=ranks, **kwargs)

    def _record(self, record: AttemptRecord) -> None:
        if self.registry is not None and self.run_id is not None:
            self.registry.record_attempt(self.run_id, record.to_dict())

    def _finalize(self, ok: bool, tier: int,
                  diagnosis: dict[str, Any] | None,
                  attempts: list[AttemptRecord]) -> None:
        """Attach the supervision summary (and, for a tier-3 failure,
        the first stall diagnosis) to the registry manifest.  The final
        ``status`` stays with the caller — it owns the run lifecycle."""
        if self.registry is None or self.run_id is None:
            return
        fields: dict[str, Any] = {
            "supervised": {"ok": ok, "final_tier": tier,
                           "attempts": len(attempts)},
        }
        if diagnosis is not None:
            fields["diagnosis"] = diagnosis
        self.registry.update(self.run_id, **fields)


def _summarize(exc: BaseException) -> str:
    return str(exc).strip().splitlines()[0][:300]


def _classify(exc: CommError) -> tuple[str, str]:
    """Map a launch failure to a ladder verdict.

    Child-rank exceptions cross the process boundary as traceback text
    inside the :class:`CommError` message (see ``run_mpi``), so typed
    errors raised *inside* a rank — like the quorum check — are
    recognized by name here rather than by ``isinstance``.
    """
    text = str(exc)
    if "QuorumLostError" in text:
        return "quorum_lost", _last_line(text)
    if "timeout after" in text:
        return "timeout", _last_line(text)
    return "comm_error", _last_line(text)


def _last_line(text: str) -> str:
    lines = [ln.strip() for ln in text.strip().splitlines() if ln.strip()]
    return (lines[-1] if lines else "")[:300]
