"""Metrics registry: counters, gauges and histograms for live runs.

The observability layer counts what the analytic models only predict:
collective calls and payload bytes per Table-I tag, kernel invocations,
failure detections and recovery rounds.  A :class:`MetricsRegistry` is
process-local (one per rank); its :meth:`~MetricsRegistry.snapshot` is a
plain JSON-safe dict that travels home through the launcher's result
pipe, and snapshots from several ranks can be combined with
:func:`merge_snapshots`.

Metric names are dotted paths, e.g. ``comm.calls.allreduce`` or
``comm.bytes.tag.traversal descriptor``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "DEFAULT_TIME_BOUNDS",
    "histogram_quantile",
]

#: Default latency bucket edges (seconds) for service-level histograms
#: (queue wait, scheduling latency, run duration).  Spans five orders of
#: magnitude: sub-tick scheduling up to multi-minute runs; anything
#: longer lands in the implicit ``+Inf`` overflow.
DEFAULT_TIME_BOUNDS: tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0, 600.0,
)


@dataclass
class Counter:
    """Monotonically increasing count (calls, bytes, failures)."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (ring occupancy, current rank count)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming summary of an observed distribution (no raw samples).

    With ``bounds`` (sorted upper edges), per-bucket counts are kept as
    well — values above the last edge land in the implicit ``+Inf``
    overflow tracked by ``count`` itself.  Bucketless histograms stay
    summary-only and their dict form is unchanged (no ``buckets`` key),
    so existing bench records and dashboards keep parsing.
    """

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    bounds: tuple[float, ...] = ()
    bucket_counts: dict[float, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.bounds = tuple(sorted(float(b) for b in self.bounds))
        if self.bounds and not self.bucket_counts:
            self.bucket_counts = {b: 0 for b in self.bounds}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for bound in self.bounds:
            if value <= bound:
                self.bucket_counts[bound] += 1
                break

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        if not self.count:
            out: dict[str, Any] = {"count": 0, "total": 0.0, "min": 0.0,
                                   "max": 0.0, "mean": 0.0}
        else:
            out = {"count": self.count, "total": self.total,
                   "min": self.min, "max": self.max, "mean": self.mean}
        if self.bounds:
            out["buckets"] = {repr(b): self.bucket_counts[b]
                              for b in self.bounds}
        return out


@dataclass
class MetricsRegistry:
    """Name → metric store; metrics are created on first use."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            metric = self.counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            metric = self.gauges[name] = Gauge()
            return metric

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = ()) -> Histogram:
        """Get or create; ``bounds`` only applies on first creation."""
        try:
            return self.histograms[name]
        except KeyError:
            metric = self.histograms[name] = Histogram(bounds=bounds)
            return metric

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe copy of every metric's current value."""
        return {
            "counters": {k: v.value for k, v in sorted(self.counters.items())},
            "gauges": {k: v.value for k, v in sorted(self.gauges.items())},
            "histograms": {
                k: v.to_dict() for k, v in sorted(self.histograms.items())
            },
        }


def histogram_quantile(hist: dict[str, Any], q: float) -> float:
    """Prometheus-style quantile estimate over a bucketed histogram dict.

    ``hist`` is one entry of a snapshot's ``histograms`` map (or of a
    :func:`merge_snapshots` result) carrying per-bucket counts.  Linear
    interpolation inside the target bucket, exactly as PromQL's
    ``histogram_quantile`` — so a dashboard's reading and an offline
    report computed from the same buckets agree.  The overflow bucket
    (observations above the last edge) is clamped to the last finite
    edge; the true summary ``max`` is a better bound there.  Returns 0.0
    for empty or bucketless histograms.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    buckets = hist.get("buckets")
    total = int(hist.get("count", 0))
    if not buckets or not total:
        return 0.0
    target = q * total
    cumulative = 0
    lower = 0.0
    for edge in sorted(buckets, key=float):
        upper = float(edge)
        in_bucket = int(buckets[edge])
        if cumulative + in_bucket >= target and in_bucket > 0:
            fraction = (target - cumulative) / in_bucket
            return lower + (upper - lower) * max(0.0, min(1.0, fraction))
        cumulative += in_bucket
        lower = upper
    return lower  # target sits in the +Inf overflow: clamp to last edge


def merge_snapshots(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """Combine per-rank snapshots: counters sum, gauges take the max,
    histograms merge their streaming summaries."""
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, dict[str, float]] = {}
    for snap in snapshots:
        if not snap:
            continue
        for k, v in snap.get("counters", {}).items():
            counters[k] = counters.get(k, 0.0) + v
        for k, v in snap.get("gauges", {}).items():
            gauges[k] = max(gauges.get(k, float("-inf")), v)
        for k, h in snap.get("histograms", {}).items():
            if not h.get("count"):
                continue
            if k not in hists:
                hists[k] = dict(h)
                if "buckets" in h:
                    hists[k]["buckets"] = dict(h["buckets"])
            else:
                acc = hists[k]
                acc["count"] += h["count"]
                acc["total"] += h["total"]
                acc["min"] = min(acc["min"], h["min"])
                acc["max"] = max(acc["max"], h["max"])
                acc["mean"] = acc["total"] / acc["count"]
                if "buckets" in h:
                    # union of edges: ranks may bucket the same metric
                    # differently (or one side may be bucketless)
                    merged = acc.setdefault("buckets", {})
                    for edge, n in h["buckets"].items():
                        merged[edge] = merged.get(edge, 0) + n
    return {"counters": counters, "gauges": gauges, "histograms": hists}
