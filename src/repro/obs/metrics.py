"""Metrics registry: counters, gauges and histograms for live runs.

The observability layer counts what the analytic models only predict:
collective calls and payload bytes per Table-I tag, kernel invocations,
failure detections and recovery rounds.  A :class:`MetricsRegistry` is
process-local (one per rank); its :meth:`~MetricsRegistry.snapshot` is a
plain JSON-safe dict that travels home through the launcher's result
pipe, and snapshots from several ranks can be combined with
:func:`merge_snapshots`.

Metric names are dotted paths, e.g. ``comm.calls.allreduce`` or
``comm.bytes.tag.traversal descriptor``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
]


@dataclass
class Counter:
    """Monotonically increasing count (calls, bytes, failures)."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (ring occupancy, current rank count)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming summary of an observed distribution (no raw samples)."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count, "total": self.total, "min": self.min,
                "max": self.max, "mean": self.mean}


@dataclass
class MetricsRegistry:
    """Name → metric store; metrics are created on first use."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            metric = self.counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            metric = self.gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            metric = self.histograms[name] = Histogram()
            return metric

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe copy of every metric's current value."""
        return {
            "counters": {k: v.value for k, v in sorted(self.counters.items())},
            "gauges": {k: v.value for k, v in sorted(self.gauges.items())},
            "histograms": {
                k: v.to_dict() for k, v in sorted(self.histograms.items())
            },
        }


def merge_snapshots(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """Combine per-rank snapshots: counters sum, gauges take the max,
    histograms merge their streaming summaries."""
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, dict[str, float]] = {}
    for snap in snapshots:
        if not snap:
            continue
        for k, v in snap.get("counters", {}).items():
            counters[k] = counters.get(k, 0.0) + v
        for k, v in snap.get("gauges", {}).items():
            gauges[k] = max(gauges.get(k, float("-inf")), v)
        for k, h in snap.get("histograms", {}).items():
            if not h.get("count"):
                continue
            if k not in hists:
                hists[k] = dict(h)
            else:
                acc = hists[k]
                acc["count"] += h["count"]
                acc["total"] += h["total"]
                acc["min"] = min(acc["min"], h["min"])
                acc["max"] = max(acc["max"], h["max"])
                acc["mean"] = acc["total"] / acc["count"]
    return {"counters": counters, "gauges": gauges, "histograms": hists}
