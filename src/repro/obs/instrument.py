"""Instrumentation wrappers: spans + counters without semantic changes.

:class:`TracingComm` wraps any :class:`~repro.par.comm.Comm`
(:class:`~repro.par.seqcomm.SequentialComm`,
:class:`~repro.par.mpcomm.MPComm`,
:class:`~repro.par.faultcomm.FaultInjectingComm`, …) and emits one span
per collective — carrying the Table-I ``tag`` as its category and the
payload size in bytes — plus counters in a
:class:`~repro.obs.metrics.MetricsRegistry`.  Delivery order, reduction
order and fault behaviour are untouched: every call delegates 1:1 to the
wrapped communicator, so rank-ordered determinism (and therefore replica
consistency) is preserved.

Failure semantics: a :class:`~repro.errors.RankFailureError` unwinding a
collective closes the open span with ``error=True`` and bumps the
``comm.failures.detected`` counter.  The ULFM-style recovery verbs
(:meth:`agree`, :meth:`shrink`) appear as explicit ``recovery`` spans, so
a merged trace shows the full detect → agree → shrink timeline.

:class:`TracedExecutor` is the instrumented lock-step worker kernel: the
same tree-agnostic :class:`~repro.engines.executor.DescriptorExecutor`,
but every descriptor execution, evaluation, sumtable build and derivative
batch is timed and counted (``kernel.ops.*``).
"""

from __future__ import annotations

from typing import Any

from repro.engines.executor import DescriptorExecutor
from repro.errors import RankFailureError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import KIND_COMM, KIND_KERNEL, KIND_RECOVERY, Tracer
from repro.par.comm import Comm, ReduceOp, payload_nbytes

__all__ = ["TracingComm", "TracedExecutor"]


class TracingComm(Comm):
    """Span- and counter-emitting wrapper around any communicator."""

    def __init__(
        self,
        inner: Comm,
        tracer: Tracer,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.inner = inner
        self.tracer = tracer
        self.metrics = metrics

    # -- delegation -------------------------------------------------------- #
    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def bytes_by_tag(self):
        return self.inner.bytes_by_tag

    @property
    def calls_by_tag(self):
        return self.inner.calls_by_tag

    def world_rank(self, rank: int) -> int:
        return self.inner.world_rank(rank)

    def world_ranks(self, ranks) -> tuple[int, ...]:
        return self.inner.world_ranks(ranks)

    # -- traced collectives ------------------------------------------------ #
    def _traced(self, name: str, tag: str, obj: Any, call) -> Any:
        """Run ``call()`` under a span; count calls/bytes per collective
        and per tag.  ``nbytes`` is the payload this rank contributes, or
        — for pure receives (non-root bcast/scatter, recv) — the payload
        it obtains."""
        nbytes = payload_nbytes(obj)
        with self.tracer.span(name, kind=KIND_COMM, category=tag,
                              nbytes=nbytes) as span:
            try:
                result = call()
            except RankFailureError:
                if self.metrics is not None:
                    self.metrics.counter("comm.failures.detected").inc()
                raise
            if nbytes == 0 and result is not None:
                nbytes = payload_nbytes(result)
                if span is not None:
                    span.nbytes = nbytes
        if self.metrics is not None:
            m = self.metrics
            m.counter(f"comm.calls.{name}").inc()
            m.counter(f"comm.bytes.{name}").inc(nbytes)
            m.counter(f"comm.calls.tag.{tag}").inc()
            m.counter(f"comm.bytes.tag.{tag}").inc(nbytes)
            m.histogram(f"comm.payload_nbytes.{name}").observe(nbytes)
        return result

    def bcast(self, obj: Any, root: int = 0, tag: str = "generic") -> Any:
        return self._traced("bcast", tag, obj,
                            lambda: self.inner.bcast(obj, root, tag))

    def reduce(self, obj: Any, op: ReduceOp = ReduceOp.SUM, root: int = 0,
               tag: str = "generic") -> Any:
        return self._traced("reduce", tag, obj,
                            lambda: self.inner.reduce(obj, op, root, tag))

    def allreduce(self, obj: Any, op: ReduceOp = ReduceOp.SUM,
                  tag: str = "generic") -> Any:
        return self._traced("allreduce", tag, obj,
                            lambda: self.inner.allreduce(obj, op, tag))

    def barrier(self, tag: str = "generic") -> None:
        return self._traced("barrier", tag, None,
                            lambda: self.inner.barrier(tag))

    def gather(self, obj: Any, root: int = 0, tag: str = "generic"):
        return self._traced("gather", tag, obj,
                            lambda: self.inner.gather(obj, root, tag))

    def scatter(self, objs: list[Any] | None, root: int = 0,
                tag: str = "generic") -> Any:
        return self._traced("scatter", tag, objs,
                            lambda: self.inner.scatter(objs, root, tag))

    def send(self, obj: Any, dest: int, tag: str = "generic") -> None:
        return self._traced("send", tag, obj,
                            lambda: self.inner.send(obj, dest, tag))

    def recv(self, source: int, tag: str = "generic") -> Any:
        return self._traced("recv", tag, None,
                            lambda: self.inner.recv(source, tag))

    # -- recovery (explicit trace events) ---------------------------------- #
    def agree(self, failed) -> frozenset[int]:
        with self.tracer.span("agree", kind=KIND_RECOVERY,
                              suspected=sorted(int(r) for r in failed)) as s:
            agreed = self.inner.agree(failed)
            if s is not None:
                s.attrs["agreed"] = sorted(agreed)
        if self.metrics is not None:
            self.metrics.counter("recovery.agree_rounds").inc()
        return agreed

    def shrink(self, failed) -> "TracingComm":
        """Shrink the wrapped communicator; tracing (same tracer, same
        metrics — the observability story continues across the failure)
        survives on the renumbered communicator."""
        failed_world = self.inner.world_ranks(failed)
        with self.tracer.span("shrink", kind=KIND_RECOVERY,
                              failed_world=list(failed_world)) as s:
            shrunk = self.inner.shrink(failed)
            if s is not None:
                s.attrs["new_size"] = shrunk.size
                s.attrs["new_rank"] = shrunk.rank
        if self.metrics is not None:
            self.metrics.counter("recovery.shrinks").inc()
            self.metrics.gauge("comm.size").set(shrunk.size)
        return TracingComm(shrunk, self.tracer, self.metrics)


class TracedExecutor(DescriptorExecutor):
    """Lock-step worker kernel with kernel-op spans and counters.

    ``profiler`` (an :class:`~repro.obs.hotspots.OpProfiler`) adds per-op
    wall-time/FLOP accounting inside the batch spans; omitted, the
    inherited null profiler keeps the per-op hooks free.
    """

    def __init__(self, parts, node_taxon, tracer: Tracer,
                 metrics: MetricsRegistry | None = None,
                 profiler=None) -> None:
        super().__init__(parts, node_taxon)
        self.tracer = tracer
        self.metrics = metrics
        if profiler is not None:
            self.profiler = profiler

    def _count(self, name: str, amount: float) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _on_evict(self, count: int, nbytes: int) -> None:
        """Surface CLV evictions (cache-reuse baseline signal)."""
        if self.metrics is not None:
            self.metrics.counter("clv.evictions").inc(count)
            # cumulative bytes freed so far (gauge: merge keeps the max)
            self.metrics.gauge("clv.freed_bytes").set(
                float(sum(self._clv_evicted_bytes)))
        self.tracer.instant("clv_evict", kind=KIND_KERNEL,
                            count=count, nbytes=nbytes)

    def run_ops(self, wire: list[tuple]) -> None:
        n_ops = len(wire)
        with self.tracer.span("run_ops", kind=KIND_KERNEL, n_ops=n_ops):
            super().run_ops(wire)
        self._count("kernel.ops.newview", n_ops * self.n_partitions)
        self._count("kernel.calls.run_ops", 1)

    def evaluate(self, u_id: int, v_id: int, t_root):
        with self.tracer.span("evaluate", kind=KIND_KERNEL):
            result = super().evaluate(u_id, v_id, t_root)
        self._count("kernel.ops.evaluate", self.n_partitions)
        return result

    def sumtables(self, u_id: int, v_id: int):
        with self.tracer.span("sumtables", kind=KIND_KERNEL):
            result = super().sumtables(u_id, v_id)
        self._count("kernel.ops.sumtable", self.n_partitions)
        return result

    def derivatives(self, tables, t, n_branch_sets: int):
        with self.tracer.span("derivatives", kind=KIND_KERNEL):
            result = super().derivatives(tables, t, n_branch_sets)
        self._count("kernel.ops.derivative", self.n_partitions)
        return result
