"""Kernel-level compute observability: per-op profiling and hotspots.

The tracing stack sees everything *between* ranks (collective spans,
wait attribution); this module looks *inside* a likelihood call and
attributes wall time, modeled FLOPs/bytes and CLV memory to the
individual kernel operations of Felsenstein pruning:

``pmatrix`` / ``newview`` / ``evaluate`` / ``sumtable`` / ``derivative``

Three layers:

* :class:`OpProfiler` — a per-rank *aggregating* profiler.  The kernel
  hot loops bracket each operation with ``t0 = prof.begin()`` /
  ``prof.end(t0, op, partition, units, ...)``; the profiler accumulates
  wall-nanoseconds, invocation counts, pattern·category work units and
  allocated bytes per ``(op, partition)`` key.  Aggregation (instead of
  one span per op) keeps a long search from blowing out the tracer ring
  buffer: the whole profile flushes as a handful of summary spans.
  ``units`` uses the *same* virtual-pattern accounting as
  :class:`~repro.par.ledger.WorkLedger` (``cost_patterns × n_cats`` per
  invocation), so modeled FLOPs derived from the profile match the work
  ledger exactly.  :data:`NULL_OP_PROFILER` is the disabled path:
  ``begin()`` returns 0 without reading a clock and ``end()`` is a
  no-op, the same zero-cost discipline as
  :data:`~repro.obs.tracer.NULL_TRACER`.  All clock reads live here (in
  ``obs``), so the engines' hot loops contain no wall-clock calls —
  replicheck's R004 stays clean and profiling can never steer replica
  control flow.

* :func:`emit_kernel_profile` — flushes the accumulated totals into the
  existing tracer/metrics machinery as ``kernel_op`` summary instants
  (one per op × partition) plus ``clv_memory`` instants carrying each
  CLV owner's live/peak byte accounting.  The instants ride the normal
  per-rank JSONL streams, so a trace directory is a complete offline
  profile.

* :func:`build_hotspot_report` — turns merged span records back into a
  ranked :class:`HotspotReport`: time share, achieved vs modeled
  GFLOP/s, arithmetic intensity and a roofline placement against
  :class:`~repro.par.machine.MachineSpec` peak FLOP/s and memory
  bandwidth, plus per-partition CLV memory reconciled against the
  analytic footprint model.

CLV reconciliation tolerance (documented band, :data:`CLV_RATIO_MIN` /
:data:`CLV_RATIO_MAX`): the memory model charges one CLV per inner node
(``(n_taxa − 2)`` entries), while the measured cache keys CLVs by
*directed* edge — up to three orientations per inner node — and each
entry carries a per-pattern log-scale vector (``+1/(n_cats·n_states)``
relative).  After the end-of-run garbage collection that
:func:`emit_kernel_profile` performs on tree-aware sources, the live
bytes therefore land between ~1× (exactly the final traversal resident)
and ~3.2× (all orientations resident) of the model's raw CLV bytes;
the band adds slack for partial shares and PSR rescans.  Fork-join
worker stores are tree-agnostic (no validity notion, nothing is ever
collected), so their ratio is reported but only the decentralized
engine is gated on it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.tracer import KIND_KERNEL
from repro.par.machine import HITS_CLUSTER, MachineSpec
from repro.perf.costmodel import modeled_bytes, modeled_flops, modeled_gflops

__all__ = [
    "KERNEL_OP_SPAN",
    "CLV_MEMORY_SPAN",
    "CLV_RATIO_MIN",
    "CLV_RATIO_MAX",
    "OpProfiler",
    "NullOpProfiler",
    "NULL_OP_PROFILER",
    "emit_kernel_profile",
    "OpStat",
    "HotspotReport",
    "build_hotspot_report",
]

#: Span name of one flushed ``(op, partition)`` profile summary.
KERNEL_OP_SPAN = "kernel_op"
#: Span name of one flushed per-partition CLV memory record.
CLV_MEMORY_SPAN = "clv_memory"

#: Documented band for measured-live / modeled-raw CLV bytes (see the
#: module docstring for the derivation).
CLV_RATIO_MIN = 0.3
CLV_RATIO_MAX = 3.5

#: Ops whose work unit is one pattern·category (ledger convention); the
#: machine's ``op_cost_ns`` constants price exactly these, so only they
#: get a modeled-throughput column.  ``pmatrix`` units are transition
#: *matrices* (its work does not scale with patterns under Γ).
PATTERN_UNIT_OPS = ("newview", "evaluate", "sumtable", "derivative")


class OpProfiler:
    """Aggregating per-op kernel profiler (one per rank).

    Not thread-safe and not shared across ranks: each forked rank owns
    one, exactly like its :class:`~repro.obs.tracer.Tracer`.
    """

    enabled = True

    __slots__ = ("_acc", "_meta")

    def __init__(self) -> None:
        # (op, partition) -> [wall_ns, count, units, alloc_bytes]
        self._acc: dict[tuple[str, int], list[float]] = {}
        # (op, partition) -> (n_states, site_specific)
        self._meta: dict[tuple[str, int], tuple[int, bool]] = {}

    def begin(self) -> int:
        """Start timestamp for one kernel region."""
        return time.perf_counter_ns()

    def end(
        self,
        t0: int,
        op: str,
        partition: int,
        units: float,
        count: int = 1,
        alloc: int = 0,
        n_states: int = 4,
        site_specific: bool = False,
    ) -> None:
        """Account one timed kernel region.

        ``units`` is the modeled work in the op's unit (pattern·category
        for CLV ops, matrices for ``pmatrix``); ``alloc`` the bytes of
        arrays the region allocated (CLVs, sumtables, P matrices).
        """
        now = time.perf_counter_ns()
        key = (op, partition)
        acc = self._acc.get(key)
        if acc is None:
            self._acc[key] = [float(now - t0), float(count), float(units),
                              float(alloc)]
            self._meta[key] = (int(n_states), bool(site_specific))
        else:
            acc[0] += now - t0
            acc[1] += count
            acc[2] += units
            acc[3] += alloc

    def records(self) -> list[dict[str, Any]]:
        """Accumulated totals as JSON-safe dicts, one per (op, partition)."""
        out = []
        for (op, partition), acc in sorted(self._acc.items()):
            n_states, site_specific = self._meta[(op, partition)]
            out.append({
                "op": op,
                "partition": partition,
                "wall_ns": int(acc[0]),
                "count": int(acc[1]),
                "units": acc[2],
                "alloc_bytes": acc[3],
                "n_states": n_states,
                "site_specific": site_specific,
            })
        return out

    def units(self, op: str, partition: int | None = None) -> float:
        """Accumulated work units for one op (optionally one partition) —
        directly comparable to ``WorkLedger.pattern_ops``."""
        return sum(
            acc[2]
            for (kind, p), acc in self._acc.items()
            if kind == op and (partition is None or p == partition)
        )

    def invocations(self, op: str, partition: int | None = None) -> int:
        return int(sum(
            acc[1]
            for (kind, p), acc in self._acc.items()
            if kind == op and (partition is None or p == partition)
        ))

    def clear(self) -> None:
        self._acc.clear()
        self._meta.clear()

    def __len__(self) -> int:
        return len(self._acc)


class NullOpProfiler:
    """Profiling disabled: ``begin()`` reads no clock, ``end()`` is a
    no-op — the kernels keep their instrumentation unconditional."""

    enabled = False

    __slots__ = ()

    def begin(self) -> int:
        return 0

    def end(self, t0: int, op: str, partition: int, units: float,
            count: int = 1, alloc: int = 0, n_states: int = 4,
            site_specific: bool = False) -> None:
        return None

    def records(self) -> list[dict[str, Any]]:
        return []

    def units(self, op: str, partition: int | None = None) -> float:
        return 0.0

    def invocations(self, op: str, partition: int | None = None) -> int:
        return 0

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: The shared disabled profiler (default on every executor/likelihood).
NULL_OP_PROFILER = NullOpProfiler()


def emit_kernel_profile(
    profiler,
    tracer,
    metrics=None,
    clv_sources: Iterable[Any] = (),
) -> int:
    """Flush a rank's accumulated kernel profile into tracer + metrics.

    Emits one :data:`KERNEL_OP_SPAN` instant per ``(op, partition)``
    total and one :data:`CLV_MEMORY_SPAN` instant per partition of every
    CLV owner in ``clv_sources`` (objects exposing ``clv_stats()`` —
    :class:`~repro.likelihood.partitioned.PartitionedLikelihood` or
    :class:`~repro.engines.executor.DescriptorExecutor`).  Tree-aware
    sources are garbage-collected first so ``live_bytes`` reflects the
    *reachable* working set, which is what the footprint model predicts.

    Returns the number of instants emitted.  No-op when either the
    profiler or the tracer is disabled.
    """
    if not getattr(profiler, "enabled", False) or not tracer.enabled:
        return 0
    emitted = 0
    for rec in profiler.records():
        tracer.instant(KERNEL_OP_SPAN, kind=KIND_KERNEL, **rec)
        emitted += 1
        if metrics is not None:
            op = rec["op"]
            metrics.counter(f"kernel.optime_ns.{op}").inc(rec["wall_ns"])
            metrics.counter(f"kernel.opcalls.{op}").inc(rec["count"])
            metrics.counter(f"kernel.units.{op}").inc(rec["units"])
            metrics.counter(f"kernel.alloc_bytes.{op}").inc(
                rec["alloc_bytes"])
    live = peak = entries = evictions = evicted_bytes = 0
    for source in clv_sources:
        if source is None:
            continue
        gc = getattr(source, "gc", None)
        if callable(gc):
            gc()
        for stat in source.clv_stats():
            tracer.instant(CLV_MEMORY_SPAN, kind=KIND_KERNEL, **stat)
            emitted += 1
            live += stat["live_bytes"]
            peak += stat["peak_bytes"]
            entries += stat["entries"]
            evictions += stat["evictions"]
            evicted_bytes += stat["evicted_bytes"]
    if metrics is not None and entries + live + peak:
        metrics.gauge("clv.live_bytes").set(live)
        metrics.gauge("clv.peak_bytes").set(peak)
        metrics.gauge("clv.entries").set(entries)
        metrics.gauge("clv.evictions_total").set(evictions)
        metrics.gauge("clv.evicted_bytes_total").set(evicted_bytes)
    return emitted


# --------------------------------------------------------------------- #
# offline analysis: merged span records -> ranked hotspot report
# --------------------------------------------------------------------- #
@dataclass
class OpStat:
    """Cross-rank totals for one kernel op."""

    op: str
    wall_s: float
    count: int
    units: float
    flops: float
    bytes_moved: float
    alloc_bytes: float
    n_states: int
    site_specific: bool
    by_partition: dict[int, float] = field(default_factory=dict)
    time_share: float = 0.0

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s per core (total flops over total core-seconds;
        virtual FLOP/s on pattern-scaled workloads, matching the model's
        units)."""
        return self.flops / self.wall_s / 1e9 if self.wall_s > 0 else 0.0

    @property
    def intensity(self) -> float:
        """Arithmetic intensity (FLOP per byte of modeled traffic)."""
        return self.flops / self.bytes_moved if self.bytes_moved > 0 else 0.0

    @property
    def ns_per_unit(self) -> float:
        return self.wall_s * 1e9 / self.units if self.units > 0 else 0.0

    def modeled_gflops(self, machine: MachineSpec) -> float | None:
        """Throughput the machine's ``op_cost_ns`` constants imply
        (``None`` for ops not priced in pattern·category units)."""
        if self.op not in PATTERN_UNIT_OPS:
            return None
        return modeled_gflops(machine, self.op, n_states=self.n_states,
                              site_specific=self.site_specific)

    def attainable_gflops(self, machine: MachineSpec) -> float:
        """Roofline ceiling at this op's intensity, per core."""
        return machine.attainable_flops(self.intensity) / 1e9

    def to_dict(self, machine: MachineSpec | None = None) -> dict[str, Any]:
        out: dict[str, Any] = {
            "op": self.op,
            "wall_s": self.wall_s,
            "time_share": self.time_share,
            "count": self.count,
            "units": self.units,
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "alloc_bytes": self.alloc_bytes,
            "gflops": self.gflops,
            "intensity": self.intensity,
            "ns_per_unit": self.ns_per_unit,
            "by_partition": {str(k): v
                             for k, v in sorted(self.by_partition.items())},
        }
        if machine is not None:
            out["modeled_gflops"] = self.modeled_gflops(machine)
            out["attainable_gflops"] = self.attainable_gflops(machine)
        return out


@dataclass
class HotspotReport:
    """Ranked per-op kernel profile of one traced run."""

    ops: list[OpStat]
    total_wall_s: float
    n_ranks: int
    machine: MachineSpec
    #: Per-partition CLV accounting summed across ranks.
    memory: list[dict[str, Any]] = field(default_factory=list)
    #: Analytic raw CLV bytes ((n_taxa−2) × Σ_p patterns·cats·states·8);
    #: ``None`` when the workload is not available (``--from-trace``).
    modeled_clv_bytes: float | None = None

    @property
    def measured_clv_live_bytes(self) -> float:
        return float(sum(m["live_bytes"] for m in self.memory))

    @property
    def measured_clv_peak_bytes(self) -> float:
        return float(sum(m["peak_bytes"] for m in self.memory))

    def clv_ratio(self) -> float | None:
        """Measured-live over modeled-raw CLV bytes (None if unmodeled)."""
        if not self.modeled_clv_bytes:
            return None
        return self.measured_clv_live_bytes / self.modeled_clv_bytes

    def check(self, check_memory: bool = True) -> list[str]:
        """Internal-consistency problems (empty list == healthy report).

        * time shares must sum to 1 over the ranked ops,
        * each op's carried FLOPs must equal the analytic per-unit
          formula times its ledger units — *exactly* (same floats, same
          accounting; any drift means the formulas and the profiler
          disagree),
        * with ``check_memory`` and a modeled footprint, the CLV ratio
          must sit inside the documented band.
        """
        problems: list[str] = []
        if self.ops:
            share_sum = sum(s.time_share for s in self.ops)
            if abs(share_sum - 1.0) > 1e-6:
                problems.append(
                    f"time shares sum to {share_sum:.6f}, expected 1.0")
        for stat in self.ops:
            expect = modeled_flops(stat.op, stat.units,
                                   n_states=stat.n_states)
            if stat.flops != expect:
                problems.append(
                    f"{stat.op}: carried {stat.flops} FLOPs but the "
                    f"per-unit formula gives {expect} for "
                    f"{stat.units} units")
        ratio = self.clv_ratio()
        if check_memory and ratio is not None:
            if not (CLV_RATIO_MIN <= ratio <= CLV_RATIO_MAX):
                problems.append(
                    f"CLV live/model ratio {ratio:.3f} outside the "
                    f"documented band [{CLV_RATIO_MIN}, {CLV_RATIO_MAX}]")
        return problems

    def to_dict(self) -> dict[str, Any]:
        return {
            "machine": self.machine.name,
            "ranks": self.n_ranks,
            "total_kernel_s": self.total_wall_s,
            "ops": [s.to_dict(self.machine) for s in self.ops],
            "memory": {
                "per_partition": self.memory,
                "live_bytes": self.measured_clv_live_bytes,
                "peak_bytes": self.measured_clv_peak_bytes,
                "modeled_bytes": self.modeled_clv_bytes,
                "live_over_model": self.clv_ratio(),
                "ratio_band": [CLV_RATIO_MIN, CLV_RATIO_MAX],
            },
        }

    def format_markdown(self, top: int | None = None) -> str:
        """Ranked kernel table + memory section, GitHub-flavored."""
        lines = ["# Kernel hotspots", ""]
        lines.append(
            f"{self.n_ranks} rank(s), {self.total_wall_s:.3f} s total "
            f"kernel time; roofline vs {self.machine.name} "
            f"({self.machine.peak_flops_per_core / 1e9:.1f} GFLOP/s, "
            f"{self.machine.mem_bandwidth_per_core_bps / 1e9:.2f} GB/s "
            f"per core, ridge "
            f"{self.machine.ridge_intensity:.1f} FLOP/B)")
        lines.append("")
        lines.append("| op | wall s | share | calls | units | GFLOP/s "
                     "| model GF/s | roofline GF/s | FLOP/B | alloc MiB |")
        lines.append("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|")
        shown = self.ops if top is None else self.ops[:top]
        for s in shown:
            model = s.modeled_gflops(self.machine)
            model_s = f"{model:.2f}" if model is not None else "—"
            lines.append(
                f"| {s.op} | {s.wall_s:.4f} | {s.time_share:6.1%} "
                f"| {s.count} | {s.units:.3g} | {s.gflops:.3f} "
                f"| {model_s} | {s.attainable_gflops(self.machine):.2f} "
                f"| {s.intensity:.2f} "
                f"| {s.alloc_bytes / 2**20:.2f} |")
        if top is not None and len(self.ops) > top:
            lines.append("")
            lines.append(f"({len(self.ops) - top} further op(s) omitted)")
        if self.memory:
            lines.append("")
            lines.append("## CLV memory")
            lines.append("")
            lines.append("| partition | entries | live MiB | peak MiB "
                         "| evictions | evicted MiB |")
            lines.append("|---:|---:|---:|---:|---:|---:|")
            for m in self.memory:
                lines.append(
                    f"| {m['partition']} | {m['entries']} "
                    f"| {m['live_bytes'] / 2**20:.3f} "
                    f"| {m['peak_bytes'] / 2**20:.3f} "
                    f"| {m['evictions']} "
                    f"| {m['evicted_bytes'] / 2**20:.3f} |")
            ratio = self.clv_ratio()
            if ratio is not None:
                assert self.modeled_clv_bytes is not None
                lines.append("")
                lines.append(
                    f"Modeled raw CLV footprint "
                    f"{self.modeled_clv_bytes / 2**20:.3f} MiB; measured "
                    f"live/model = {ratio:.3f} (documented band "
                    f"[{CLV_RATIO_MIN}, {CLV_RATIO_MAX}]).")
        return "\n".join(lines)

    def to_bench(self, engine: str = "",
                 extra: dict[str, Any] | None = None) -> dict[str, Any]:
        """BENCH record for ``repro regress`` (flat, higher-is-worse)."""
        metrics: dict[str, float] = {
            "hotspots.total_kernel_s": self.total_wall_s,
        }
        for s in self.ops:
            prefix = f"hotspots.{engine}.{s.op}" if engine \
                else f"hotspots.{s.op}"
            metrics[f"{prefix}.wall_s"] = s.wall_s
            if s.op in PATTERN_UNIT_OPS and s.units > 0:
                metrics[f"{prefix}.ns_per_unit"] = s.ns_per_unit
        record: dict[str, Any] = {
            "kind": "kernel_hotspots",
            "engine": engine,
            "metrics": metrics,
            "report": self.to_dict(),
        }
        if extra:
            record.update(extra)
        return record


def build_hotspot_report(
    records: Iterable[dict[str, Any]],
    machine: MachineSpec | None = None,
    modeled_clv_bytes: float | None = None,
) -> HotspotReport:
    """Aggregate merged span records into a ranked :class:`HotspotReport`.

    ``records`` is any span-dict stream that contains the
    :data:`KERNEL_OP_SPAN` / :data:`CLV_MEMORY_SPAN` instants written by
    :func:`emit_kernel_profile` — typically the output of
    :func:`~repro.obs.export.merge_rank_streams` over a trace
    directory.  Everything else (comm spans, search spans) is ignored,
    so the same merged trace feeds both wait attribution and this.
    """
    machine = machine or HITS_CLUSTER
    acc: dict[str, OpStat] = {}
    mem: dict[int, dict[str, Any]] = {}
    ranks: set[int] = set()
    for rec in records:
        name = rec.get("name")
        attrs = rec.get("attrs") or {}
        if name == KERNEL_OP_SPAN:
            op = attrs["op"]
            partition = int(attrs.get("partition", 0))
            wall_s = attrs["wall_ns"] / 1e9
            units = float(attrs["units"])
            n_states = int(attrs.get("n_states", 4))
            ranks.add(int(rec.get("rank", 0)))
            stat = acc.get(op)
            if stat is None:
                stat = OpStat(
                    op=op, wall_s=0.0, count=0, units=0.0, flops=0.0,
                    bytes_moved=0.0, alloc_bytes=0.0, n_states=n_states,
                    site_specific=bool(attrs.get("site_specific", False)),
                )
                acc[op] = stat
            stat.wall_s += wall_s
            stat.count += int(attrs["count"])
            stat.units += units
            stat.flops += modeled_flops(op, units, n_states=n_states)
            stat.bytes_moved += modeled_bytes(op, units, n_states=n_states)
            stat.alloc_bytes += float(attrs.get("alloc_bytes", 0.0))
            stat.n_states = max(stat.n_states, n_states)
            stat.by_partition[partition] = (
                stat.by_partition.get(partition, 0.0) + wall_s)
        elif name == CLV_MEMORY_SPAN:
            partition = int(attrs.get("partition", 0))
            entry = mem.setdefault(partition, {
                "partition": partition, "entries": 0, "live_bytes": 0,
                "peak_bytes": 0, "evictions": 0, "evicted_bytes": 0,
            })
            for key in ("entries", "live_bytes", "peak_bytes",
                        "evictions", "evicted_bytes"):
                entry[key] += int(attrs.get(key, 0))
    ops = sorted(acc.values(), key=lambda s: (-s.wall_s, s.op))
    total = sum(s.wall_s for s in ops)
    for stat in ops:
        stat.time_share = stat.wall_s / total if total > 0 else 0.0
    return HotspotReport(
        ops=ops,
        total_wall_s=total,
        n_ranks=max(len(ranks), 1),
        machine=machine,
        memory=[mem[p] for p in sorted(mem)],
        modeled_clv_bytes=modeled_clv_bytes,
    )
