"""Measured scaling harness: live runs across rank counts, analyzed.

The paper's Figures 3/4 plot speedup over rank counts for both engines;
``perf/`` *simulates* those curves from the analytic models, and this
module *measures* them: it runs both engines live across rank counts
and partition shapes, attributes the traced spans
(:mod:`repro.obs.analyze`) into busy/wait time, derives relative
speedup and parallel efficiency from the traced windows, and emits a
``BENCH_scaling.json`` record (gateable via :mod:`repro.obs.regress`)
plus a markdown report.

Absolute times on a laptop-scale run say nothing about a 768-core
cluster — but the *orderings* do: which engine is comm-heavier, whether
the collective-wait share grows with rank count, whether a monolithic
(``mps``) distribution shows the load imbalance the paper fixes with
cyclic.  The report therefore pairs every measured table with the
analytic prediction from :mod:`repro.perf.scaling` and states whether
the orderings agree.  ``repro scale`` on the CLI wraps this module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.obs.analyze import CriticalPath, TraceAnalysis, analyze_trace

__all__ = ["ScalePoint", "ScalingResult", "run_scaling", "DEFAULT_RANKS"]

DEFAULT_RANKS = (1, 2, 4)


@dataclass
class ScalePoint:
    """One measured (engine, dist, ranks) configuration."""

    engine: str
    dist: str
    ranks: int
    wall_s: float  # traced window (excludes process spawn/teardown)
    harness_s: float  # parent-side wall including spawn, for reference
    logl: float
    iterations: int
    wait_share: float
    busy_share: float
    imbalance: float
    n_collectives: int
    n_spans: int
    dropped_spans: int
    trace_dir: str
    critical_path_shares: dict[str, float] = field(default_factory=dict)
    speedup: float = 1.0
    efficiency: float = 1.0
    base_ranks: int = 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "dist": self.dist,
            "ranks": self.ranks,
            "wall_s": self.wall_s,
            "harness_s": self.harness_s,
            "logl": self.logl,
            "iterations": self.iterations,
            "wait_share": self.wait_share,
            "busy_share": self.busy_share,
            "imbalance": self.imbalance,
            "n_collectives": self.n_collectives,
            "n_spans": self.n_spans,
            "dropped_spans": self.dropped_spans,
            "trace_dir": self.trace_dir,
            "critical_path_shares": dict(self.critical_path_shares),
            "speedup": self.speedup,
            "efficiency": self.efficiency,
            "base_ranks": self.base_ranks,
        }


@dataclass
class ScalingResult:
    """All measured points plus the analytic predictions they test."""

    points: list[ScalePoint]
    workload: dict[str, Any] = field(default_factory=dict)
    predicted: dict[str, Any] = field(default_factory=dict)  # per dist
    #: dist → ranks(str) → True when the measured comm-heavier engine
    #: matches the model's prediction.
    agreement: dict[str, dict[str, bool]] = field(default_factory=dict)

    def point(self, engine: str, dist: str, ranks: int) -> ScalePoint:
        for p in self.points:
            if (p.engine, p.dist, p.ranks) == (engine, dist, ranks):
                return p
        raise KeyError((engine, dist, ranks))

    def wait_share(self, engine: str, dist: str, ranks: int) -> float:
        return self.point(engine, dist, ranks).wait_share

    # -- gateable record ------------------------------------------------ #
    def metrics(self) -> dict[str, float]:
        """Flat higher-is-worse metrics for the regression gate."""
        out: dict[str, float] = {}
        for p in self.points:
            key = f"scale.{p.engine}.{p.dist}.r{p.ranks}"
            out[f"{key}.wall_s"] = p.wall_s
            out[f"{key}.wait_share"] = p.wait_share
            out[f"{key}.imbalance"] = p.imbalance
        return out

    def to_bench(self) -> dict[str, Any]:
        return {
            "kind": "scaling",
            "workload": dict(self.workload),
            "points": [p.to_dict() for p in self.points],
            "predicted": dict(self.predicted),
            "agreement": {d: dict(a) for d, a in self.agreement.items()},
            "metrics": self.metrics(),
        }

    # -- markdown report (the Fig. 3/4 analogue) ------------------------ #
    def format_markdown(self) -> str:
        lines = ["# Measured scaling report", ""]
        if self.workload:
            desc = ", ".join(f"{k}={v}" for k, v in self.workload.items())
            lines += [f"Workload: {desc}", ""]
        dists = sorted({p.dist for p in self.points})
        engines = sorted({p.engine for p in self.points})
        for dist in dists:
            lines.append(f"## Distribution: {dist}")
            lines.append("")
            for engine in engines:
                pts = sorted(
                    (p for p in self.points
                     if p.engine == engine and p.dist == dist),
                    key=lambda p: p.ranks,
                )
                if not pts:
                    continue
                lines.append(f"### {engine} (speedup vs "
                             f"{pts[0].base_ranks} rank(s))")
                lines.append("")
                lines.append("| ranks | wall s | speedup | efficiency |"
                             " busy % | wait % | imbalance λ |")
                lines.append("|---:|---:|---:|---:|---:|---:|---:|")
                for p in pts:
                    lines.append(
                        f"| {p.ranks} | {p.wall_s:.3f} | {p.speedup:.2f} "
                        f"| {p.efficiency:.2f} "
                        f"| {100.0 * p.busy_share:.1f} "
                        f"| {100.0 * p.wait_share:.1f} "
                        f"| {p.imbalance:.3f} |"
                    )
                lines.append("")
            if len(engines) == 2:
                lines.append("### Collective-wait comparison "
                             "(measured vs model)")
                lines.append("")
                lines.append("| ranks | " + " wait % | ".join(engines)
                             + " wait % | measured comm-heavier "
                               "| model comm-heavier | agree |")
                lines.append("|---:|" + "---:|" * (len(engines) + 3))
                ordering = (self.predicted.get(dist, {})
                            .get("ordering", {})
                            .get("comm_heavier", {}))
                for n in sorted({p.ranks for p in self.points
                                 if p.dist == dist}):
                    try:
                        shares = {e: self.wait_share(e, dist, n)
                                  for e in engines}
                    except KeyError:
                        continue
                    measured = max(shares, key=shares.get)  # type: ignore[arg-type]
                    modeled = ordering.get(str(n), "-")
                    agree = ("yes" if modeled == measured else
                             ("-" if modeled == "-" else "NO"))
                    cells = " | ".join(f"{100.0 * shares[e]:.1f}"
                                       for e in engines)
                    lines.append(f"| {n} | {cells} | {measured} "
                                 f"| {modeled} | {agree} |")
                lines.append("")
        if self.predicted:
            lines.append("## Model-predicted totals (reference machine)")
            lines.append("")
            for dist, pred in sorted(self.predicted.items()):
                for engine, per_ranks in sorted(
                        pred.get("engines", {}).items()):
                    row = ", ".join(
                        f"{n}r: {v['total_s']:.4g}s (×{v['speedup']:.2f})"
                        for n, v in sorted(per_ranks.items(),
                                           key=lambda kv: int(kv[0]))
                    )
                    lines.append(f"- `{dist}` / {engine}: {row}")
            lines.append("")
        return "\n".join(lines)


def _merged_trace(trace_dir: Path, n_ranks: int) -> list[dict[str, Any]]:
    from repro.obs.export import merge_rank_streams, rank_trace_path

    paths = [rank_trace_path(trace_dir, r) for r in range(n_ranks)]
    return merge_rank_streams([p for p in paths if p.exists()])


def run_scaling(
    build_likelihood: Callable[[], Any],
    start_newick: str,
    config,
    engines: Sequence[str] = ("decentralized", "forkjoin"),
    ranks_list: Iterable[int] = DEFAULT_RANKS,
    dist_kinds: Sequence[str] = ("cyclic",),
    trace_root: str | Path = "trace_scale",
    trace_capacity: int | None = None,
    predict: bool = True,
    workload_info: dict[str, Any] | None = None,
    progress: Callable[[str], None] | None = None,
) -> ScalingResult:
    """Run every (engine, dist, ranks) configuration live and analyze it.

    ``build_likelihood`` must return a *fresh*
    :class:`~repro.likelihood.partitioned.PartitionedLikelihood` on each
    call — the search mutates model state, so configurations must not
    share one.  Speedup/efficiency are relative to the smallest rank
    count measured for the same (engine, dist).
    """
    from repro.engines.launch import run_decentralized, run_forkjoin

    ranks_sorted = sorted(set(int(n) for n in ranks_list))
    if not ranks_sorted or ranks_sorted[0] < 1:
        raise ValueError("ranks_list must hold positive rank counts")
    trace_root = Path(trace_root)
    points: list[ScalePoint] = []

    for dist in dist_kinds:
        for engine in engines:
            for n in ranks_sorted:
                lik = build_likelihood()
                trace_dir = trace_root / f"{engine}-{dist}-r{n}"
                t0 = time.perf_counter()
                if engine == "decentralized":
                    replicas = run_decentralized(
                        lik.parts, lik.taxa, start_newick, n_ranks=n,
                        config=config, dist_kind=dist,
                        n_branch_sets=lik.n_branch_sets,
                        trace_dir=trace_dir,
                        trace_capacity=trace_capacity,
                    )
                    res = next(r for r in replicas if r is not None)
                elif engine == "forkjoin":
                    res = run_forkjoin(
                        lik.parts, lik.taxa, start_newick, n_ranks=n,
                        config=config, dist_kind=dist,
                        n_branch_sets=lik.n_branch_sets,
                        trace_dir=trace_dir,
                        trace_capacity=trace_capacity,
                    )
                else:
                    raise ValueError(f"unknown engine {engine!r}")
                harness_s = time.perf_counter() - t0

                merged = _merged_trace(trace_dir, n)
                analysis, cpath = analyze_trace(merged)
                point = _make_point(engine, dist, n, res, analysis, cpath,
                                    harness_s, str(trace_dir))
                points.append(point)
                if progress is not None:
                    progress(
                        f"[{engine}/{dist}] {n} rank(s): "
                        f"{point.wall_s:.2f}s traced, wait "
                        f"{100.0 * point.wait_share:.1f}%, "
                        f"λ={point.imbalance:.3f}"
                    )

    _fill_speedups(points)
    result = ScalingResult(points=points,
                           workload=dict(workload_info or {}))
    if predict:
        _attach_predictions(result, build_likelihood, start_newick,
                            config, ranks_sorted, dist_kinds)
    return result


def _make_point(
    engine: str,
    dist: str,
    n: int,
    res,
    analysis: TraceAnalysis,
    cpath: CriticalPath,
    harness_s: float,
    trace_dir: str,
) -> ScalePoint:
    active = analysis.total_active_ns
    busy = sum(r.busy_ns for r in analysis.ranks.values())
    return ScalePoint(
        engine=engine,
        dist=dist,
        ranks=n,
        wall_s=analysis.window_ns / 1e9,
        harness_s=harness_s,
        logl=res.logl,
        iterations=res.iterations,
        wait_share=analysis.wait_share,
        busy_share=busy / active if active else 0.0,
        imbalance=analysis.imbalance,
        n_collectives=analysis.n_collectives,
        n_spans=sum(r.n_spans for r in analysis.ranks.values()),
        dropped_spans=analysis.dropped_spans,
        trace_dir=trace_dir,
        critical_path_shares=cpath.contribution_shares(),
    )


def _fill_speedups(points: list[ScalePoint]) -> None:
    by_series: dict[tuple[str, str], list[ScalePoint]] = {}
    for p in points:
        by_series.setdefault((p.engine, p.dist), []).append(p)
    for series in by_series.values():
        base = min(series, key=lambda p: p.ranks)
        for p in series:
            p.base_ranks = base.ranks
            p.speedup = (base.wall_s / p.wall_s) if p.wall_s else 0.0
            # efficiency vs ideal scaling from the base rank count
            p.efficiency = (p.speedup * base.ranks / p.ranks
                            if p.ranks else 0.0)


def _attach_predictions(
    result: ScalingResult,
    build_likelihood: Callable[[], Any],
    start_newick: str,
    config,
    ranks_sorted: list[int],
    dist_kinds: Sequence[str],
) -> None:
    from repro.perf.scaling import predict_scaling, predicted_ordering

    engines = sorted({p.engine for p in result.points})
    for dist in dist_kinds:
        lik = build_likelihood()
        pred = predict_scaling(
            lik.parts, lik.taxa, start_newick, config, ranks_sorted,
            dist_kind=dist, n_branch_sets=lik.n_branch_sets,
        )
        ordering = predicted_ordering(pred)
        doc = pred.to_dict()
        doc["ordering"] = ordering
        result.predicted[dist] = doc
        if len(engines) == 2:
            agree: dict[str, bool] = {}
            for n in ranks_sorted:
                try:
                    shares = {e: result.wait_share(e, dist, n)
                              for e in engines}
                except KeyError:
                    continue
                measured = max(shares, key=shares.get)  # type: ignore[arg-type]
                modeled = ordering["comm_heavier"].get(str(n))
                agree[str(n)] = measured == modeled
            result.agreement[dist] = agree
