"""Model-vs-measured reconciliation: the repro's first empirical check of
the paper's Table-I mechanism.

The analytic communication models
(:class:`~repro.engines.forkjoin.ForkJoinCommModel`,
:class:`~repro.engines.decentral.DecentralizedCommModel`) *predict* the
bytes each engine moves per Table-I category; a live multiprocess run
*measures* them (``Comm.bytes_by_tag``, fed by the same
:func:`~repro.par.comm.payload_nbytes` used for wire accounting).  This
module replays the identical search on a
:class:`~repro.engines.recording.RecordingBackend`, prices the recorded
region stream with the engine's model, and compares per category.

What "matching" means, per engine:

* **de-centralized** — every collective is an allreduce of a flat float64
  array whose size the model knows exactly (``8p`` likelihood doubles,
  ``16·sets`` derivative doubles).  Measured on a **non-root** rank, the
  byte totals must match the model *exactly*: :class:`~repro.par.mpcomm.MPComm`
  composes ``allreduce = reduce + bcast`` and only the root additionally
  accounts the broadcast result, so a non-root rank accounts precisely one
  contributed payload per allreduce — the model's convention.
* **fork-join** — descriptors travel as framed Python tuples, so the wire
  carries per-op framing the idealized model does not price; category
  totals agree within a small constant factor (the documented tolerance,
  default 4×) and the dominant category must agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "CategoryDelta",
    "ReconcileReport",
    "modeled_byte_totals",
    "reconcile",
    "reconcile_live_run",
    "DECENTRALIZED_REL_TOL",
    "FORKJOIN_REL_TOL",
]

#: Non-root decentralized payloads are exact (see module docstring); the
#: tiny epsilon only guards float accumulation in the model totals.
DECENTRALIZED_REL_TOL = 1.0e-9
#: Fork-join wire framing vs. idealized descriptor bytes: within 4×.
FORKJOIN_REL_TOL = 3.0


@dataclass(frozen=True)
class CategoryDelta:
    """Measured vs. modeled bytes (and collective calls) for one category."""

    category: str
    measured: float
    modeled: float
    measured_calls: int | None = None
    modeled_calls: int | None = None

    @property
    def delta(self) -> float:
        return self.measured - self.modeled

    @property
    def ratio(self) -> float:
        if self.modeled == 0.0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.modeled

    @property
    def rel_error(self) -> float:
        if self.modeled == 0.0:
            return float("inf") if self.measured else 0.0
        return abs(self.delta) / self.modeled

    def within(self, rel_tol: float, abs_tol: float = 0.0) -> bool:
        return abs(self.delta) <= max(abs_tol, rel_tol * self.modeled)


@dataclass
class ReconcileReport:
    """Per-category comparison of a live run against the analytic model."""

    engine: str
    rows: list[CategoryDelta]
    #: Measured tags the model has no category for (e.g. the fork-join
    #: ``control`` STOP broadcast) — reported, never silently dropped.
    unmodeled: dict[str, float] = field(default_factory=dict)
    #: Which rank's measurement this is (non-root for decentralized).
    measured_rank: int | None = None

    @property
    def measured_total(self) -> float:
        return sum(r.measured for r in self.rows)

    @property
    def modeled_total(self) -> float:
        return sum(r.modeled for r in self.rows)

    @property
    def worst_rel_error(self) -> float:
        active = [r.rel_error for r in self.rows if r.modeled or r.measured]
        return max(active) if active else 0.0

    def within(self, rel_tol: float, abs_tol: float = 0.0) -> bool:
        """True when every modeled category matches within tolerance."""
        return all(r.within(rel_tol, abs_tol) for r in self.rows)

    def format_table(self) -> str:
        header = (
            f"{'category':<42}{'measured B':>14}{'modeled B':>14}"
            f"{'delta B':>12}{'ratio':>8}"
        )
        lines = [f"reconciliation — {self.engine}"
                 + (f" (rank {self.measured_rank})"
                    if self.measured_rank is not None else ""),
                 header, "-" * len(header)]
        for row in self.rows:
            ratio = f"{row.ratio:.3f}" if np.isfinite(row.ratio) else "inf"
            lines.append(
                f"{row.category:<42}{row.measured:>14.0f}{row.modeled:>14.0f}"
                f"{row.delta:>12.0f}{ratio:>8}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<42}{self.measured_total:>14.0f}"
            f"{self.modeled_total:>14.0f}"
            f"{self.measured_total - self.modeled_total:>12.0f}"
        )
        for tag, nbytes in sorted(self.unmodeled.items()):
            lines.append(f"  (unmodeled tag {tag!r}: {nbytes:.0f} B)")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "measured_rank": self.measured_rank,
            "rows": [
                {
                    "category": r.category,
                    "measured": r.measured,
                    "modeled": r.modeled,
                    "delta": r.delta,
                    "ratio": r.ratio if np.isfinite(r.ratio) else None,
                    "measured_calls": r.measured_calls,
                    "modeled_calls": r.modeled_calls,
                }
                for r in self.rows
            ],
            "unmodeled": dict(self.unmodeled),
            "measured_total": self.measured_total,
            "modeled_total": self.modeled_total,
            "worst_rel_error": (
                self.worst_rel_error
                if np.isfinite(self.worst_rel_error) else None
            ),
        }


def _comm_model(engine: str):
    if engine == "decentralized":
        from repro.engines.decentral import DecentralizedCommModel

        return DecentralizedCommModel()
    if engine == "forkjoin":
        from repro.engines.forkjoin import ForkJoinCommModel

        return ForkJoinCommModel()
    raise ValueError(f"unknown engine {engine!r}")


def modeled_byte_totals(
    parts,
    taxa,
    start_newick: str,
    config,
    engine: str = "decentralized",
    n_branch_sets: int = 1,
):
    """Replay the search on full data, price it with the engine's model.

    Returns ``(byte_totals, call_counts, log)`` where ``call_counts`` maps
    each category to the number of collectives the model assigns to it.
    The replay runs the *identical deterministic search* the live engines
    ran (the paper's premise: both engines execute the same algorithm),
    so region streams — and therefore predicted bytes — are comparable
    call for call.
    """
    from repro.engines.recording import RecordingBackend
    from repro.likelihood.partitioned import PartitionedLikelihood
    from repro.search.search import hill_climb
    from repro.tree.newick import parse_newick

    tree = parse_newick(start_newick, n_branch_sets)
    if n_branch_sets > 1:
        tree.set_n_branch_sets(n_branch_sets)
    # private copies: the replay must not disturb the caller's partitions
    parts = [p.subset(np.arange(p.n_patterns)) for p in parts]
    lik = PartitionedLikelihood(tree, parts, list(taxa))
    backend = RecordingBackend(lik)
    hill_climb(backend, config)

    model = _comm_model(engine)
    totals = model.byte_totals(backend.log)
    calls: dict[str, int] = {cat: 0 for cat in totals}
    for region in backend.log:
        for ev in model.region_events(region):
            calls[ev.category] = calls.get(ev.category, 0) + 1
    return totals, calls, backend.log


def reconcile(
    measured_bytes_by_tag: dict[str, float],
    modeled_totals: dict[str, float],
    engine: str,
    measured_calls_by_tag: dict[str, int] | None = None,
    modeled_calls: dict[str, int] | None = None,
    measured_rank: int | None = None,
) -> ReconcileReport:
    """Build a per-category report from measured and modeled totals.

    Row set = the model's category vocabulary; measured tags outside it
    land in ``report.unmodeled``.
    """
    rows = []
    for cat in sorted(modeled_totals):
        rows.append(
            CategoryDelta(
                category=cat,
                measured=float(measured_bytes_by_tag.get(cat, 0.0)),
                modeled=float(modeled_totals[cat]),
                measured_calls=(
                    int(measured_calls_by_tag.get(cat, 0))
                    if measured_calls_by_tag is not None else None
                ),
                modeled_calls=(
                    int(modeled_calls.get(cat, 0))
                    if modeled_calls is not None else None
                ),
            )
        )
    unmodeled = {
        tag: float(nbytes)
        for tag, nbytes in measured_bytes_by_tag.items()
        if tag not in modeled_totals and nbytes
    }
    return ReconcileReport(engine=engine, rows=rows, unmodeled=unmodeled,
                           measured_rank=measured_rank)


def reconcile_live_run(
    parts,
    taxa,
    start_newick: str,
    config,
    engine: str,
    measured_bytes_by_tag: dict[str, float],
    measured_calls_by_tag: dict[str, int] | None = None,
    n_branch_sets: int = 1,
    measured_rank: int | None = None,
) -> ReconcileReport:
    """One-call reconciliation: replay + model + compare."""
    totals, calls, _log = modeled_byte_totals(
        parts, taxa, start_newick, config, engine, n_branch_sets
    )
    return reconcile(
        measured_bytes_by_tag,
        totals,
        engine,
        measured_calls_by_tag=measured_calls_by_tag,
        modeled_calls=calls,
        measured_rank=measured_rank,
    )
