"""Structured in-run progress events, streamed while the search executes.

The trace ring buffer is written *after* a run; this module streams
while it executes.  A :class:`ProgressStream` appends one JSON object
per event to ``progress-rank<N>.jsonl`` (line-buffered, flushed per
event, so a tail/monitor sees events as they happen) and a
:class:`ProgressReporter` is the single object the search layer talks
to: it fans every report out to the JSONL stream *and* to the rank's
:class:`~repro.obs.heartbeat.HeartbeatState`, so one call site keeps
the live health record and the durable event log consistent.

Event vocabulary (the ``event`` field):

* ``run_start`` / ``run_end`` — engine, rank count, final logL;
* ``phase`` — search phase transitions (``initial_smooth``,
  ``model_opt``, ``spr_round``, ``smooth_branches``, ``worker`` …);
* ``iteration`` — one hill-climb iteration: logL, radius, SPR moves
  accepted / insertions rejected, Newton branch-opt iterations since
  the previous iteration event;
* ``move`` — an accepted SPR move (rejections are aggregated into the
  iteration event: thousands of rejected insertions per round would
  swamp the stream);
* ``checkpoint`` — a periodic checkpoint write;
* ``rank_failure`` / ``recovery`` — the live fault-tolerance pipeline.

Everything is engine-agnostic and zero-cost when disabled: an
unmonitored backend has no ``progress`` attribute, so the search driver
falls back to the shared :data:`NULL_PROGRESS` no-op (same discipline
as :data:`~repro.obs.tracer.NULL_TRACER`).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, TextIO

from repro.obs.heartbeat import HeartbeatState

__all__ = [
    "ProgressStream",
    "ProgressReporter",
    "NullProgress",
    "NULL_PROGRESS",
    "progress_path",
    "read_progress",
    "read_progress_since",
]


def progress_path(monitor_dir: str | Path, world_rank: int) -> Path:
    """Canonical per-rank progress stream under ``monitor_dir``."""
    return Path(monitor_dir) / f"progress-rank{world_rank}.jsonl"


class ProgressStream:
    """Append-only JSONL event writer for one rank."""

    def __init__(self, path: str | Path, rank: int) -> None:
        self.path = Path(path)
        self.rank = rank
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: TextIO | None = self.path.open("a")
        self.n_events = 0

    def emit(self, event: str, **fields: Any) -> None:
        """Write one event line; flushed immediately so live consumers
        (``tail -f``, the monitor) see it without waiting for run end."""
        if self._fh is None:
            return
        record: dict[str, Any] = {
            "event": event,
            "rank": self.rank,
            "t_ns": time.perf_counter_ns(),
        }
        record.update(fields)
        try:
            self._fh.write(json.dumps(record, separators=(",", ":"),
                                      default=str) + "\n")
            self._fh.flush()
        except OSError:  # pragma: no cover - disk full mid-run
            self.close()
        else:
            self.n_events += 1

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover
                pass
            self._fh = None


def read_progress(path: str | Path) -> list[dict[str, Any]]:
    """Read a progress stream back; tolerates a torn trailing line
    (the writer may be mid-event when a live reader polls)."""
    return read_progress_since(path, 0)[0]


def read_progress_since(
    path: str | Path, offset: int
) -> tuple[list[dict[str, Any]], int]:
    """Incremental tail of a progress stream: ``(new events, new offset)``.

    ``offset`` is a byte position from a previous call (0 to start).
    Only *complete* lines are consumed — a torn trailing line (the
    writer flushes per event, but a poll can still land mid-write) stays
    unconsumed and is retried at the next poll, so followers like the
    ``/jobs/<id>/events`` stream never emit a half-event or skip one.
    Unparseable complete lines are skipped but still advance the offset.
    """
    out: list[dict[str, Any]] = []
    try:
        with Path(path).open("rb") as fh:
            fh.seek(offset)
            data = fh.read()
    except OSError:
        return out, offset
    end = data.rfind(b"\n")
    if end < 0:
        return out, offset
    for line in data[: end + 1].splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return out, offset + end + 1


class ProgressReporter:
    """The search layer's one-stop telemetry sink.

    Fans reports out to the JSONL stream and the heartbeat state;
    either can be ``None`` (e.g. a state-only reporter for fork-join
    workers that have no search events to stream).
    """

    enabled = True

    def __init__(
        self,
        state: HeartbeatState | None = None,
        stream: ProgressStream | None = None,
    ) -> None:
        self.state = state
        self.stream = stream
        self._newton_since_event = 0

    # -- search-driver hooks ------------------------------------------- #
    def phase(self, name: str, **fields: Any) -> None:
        """A search phase transition (also a heartbeat state change)."""
        if self.state is not None:
            self.state.update(phase=name)
        self.event("phase", phase=name, **fields)

    def iteration(self, iteration: int, *, logl: float, radius: int,
                  moves_accepted: int, insertions_tried: int) -> None:
        """One hill-climb iteration completed."""
        newton = self._newton_since_event
        self._newton_since_event = 0
        if self.state is not None:
            self.state.update(
                iteration=iteration, logl=logl, radius=radius,
                moves_accepted=self.state.moves_accepted + moves_accepted,
                insertions_tried=(self.state.insertions_tried
                                  + insertions_tried),
            )
        self.event(
            "iteration", iteration=iteration, logl=logl, radius=radius,
            moves_accepted=moves_accepted,
            insertions_rejected=max(0, insertions_tried - moves_accepted),
            newton_iters=newton,
        )

    def status(self, **fields: Any) -> None:
        """Heartbeat-state-only update (hot path: no JSONL write)."""
        if self.state is not None:
            self.state.update(**fields)

    def add_newton(self, iters: int) -> None:
        """Account Newton branch-optimization iterations (hot path:
        counter bumps only, reported with the next iteration event)."""
        self._newton_since_event += iters
        if self.state is not None:
            self.state.update(
                newton_iters=self.state.newton_iters + iters)

    def checkpoint(self, path: str, iteration: int) -> None:
        if self.state is not None:
            self.state.update(checkpoints=self.state.checkpoints + 1)
        self.event("checkpoint", path=path, iteration=iteration)

    def event(self, event: str, **fields: Any) -> None:
        """Stream-only structured event."""
        if self.stream is not None:
            self.stream.emit(event, **fields)

    def close(self, final_phase: str | None = None) -> None:
        if final_phase is not None and self.state is not None:
            self.state.update(phase=final_phase, in_collective=False)
        if self.stream is not None:
            self.stream.close()


class NullProgress:
    """Progress reporting disabled: every call is a no-op.

    One shared instance (:data:`NULL_PROGRESS`) serves every
    unmonitored backend, so the search hot loop pays one attribute
    lookup and an empty method call — no allocation, no clock read, no
    file handle.
    """

    enabled = False
    state = None
    stream = None

    def phase(self, name: str, **fields: Any) -> None:
        return None

    def iteration(self, iteration: int, **fields: Any) -> None:
        return None

    def status(self, **fields: Any) -> None:
        return None

    def add_newton(self, iters: int) -> None:
        return None

    def checkpoint(self, path: str, iteration: int) -> None:
        return None

    def event(self, event: str, **fields: Any) -> None:
        return None

    def close(self, final_phase: str | None = None) -> None:
        return None


#: The shared disabled reporter.
NULL_PROGRESS = NullProgress()
