"""Trace analytics: wait-time attribution, critical path, load imbalance.

:mod:`repro.obs.export` merges per-rank span streams into one cross-rank
timeline; this module turns that timeline into the paper's *time* story
(PR 2 closed the *bytes* loop):

* **wait-time attribution** — decompose each rank's traced window into
  compute / collective-wait / transfer / recovery.  All ranks share a
  monotonic timebase, so the wait a rank spends inside a collective is
  inferred from span starts alone: match the i-th collective of each
  name across ranks, take the *last* arrival as the moment the
  collective could complete, and charge each earlier rank the gap
  between its own arrival and that last arrival.  Waits are reported
  per Table-I tag and per search phase (the ``search`` spans emitted by
  :func:`~repro.search.search.hill_climb`).
* **critical-path analysis** — the chain of spans that bounds wall
  time.  Walking backwards from the last span to finish: inside a rank
  the predecessor is the previous activity on that rank; at a matched
  collective the path jumps to the rank that arrived *last* (the
  straggler whose compute bounded everyone).  Waits are therefore never
  on the path — the straggler's compute is, which is exactly the
  paper's argument for why fork-join is bound by master serial work +
  collectives while the de-centralized scheme is bound by compute.
* **load-imbalance index** — max/mean per-rank busy time (compute +
  transfer, i.e. everything that is not inferred wait), the measured
  form of the paper's monolithic-vs-cyclic distribution argument: a
  monolithic (``mps``) placement of unequal partitions shows up here as
  λ ≫ 1 and as wait time on the underloaded ranks.

Inference caveats (documented, deliberate): collective completion is
approximated by barrier semantics (bounded by the last arrival), which
is exact for barrier/allreduce and a faithful upper bound for the
fork-join bcast/reduce pairs where the master is the straggler; after a
mid-run communicator shrink the per-name call sequences of survivors
and casualties diverge, so attribution is most meaningful on
failure-free runs (error-flagged spans are excluded from matching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.tracer import Span

__all__ = [
    "RankBreakdown",
    "TraceAnalysis",
    "CriticalPathStep",
    "CriticalPath",
    "analyze_trace",
    "attribute_wait",
    "critical_path",
    "load_imbalance",
    "match_collectives",
]

#: Span kinds excluded from the rank timelines: ``search`` spans are
#: phase *annotations* enclosing real work, ``meta`` records carry
#: trace bookkeeping such as the ring-buffer truncation marker.
_ANNOTATION_KINDS = frozenset({"search", "meta"})

#: Tags that carry no information about *what* was communicated (the
#: fork-join worker receives every command under ``command``); matched
#: groups prefer any rank's more specific tag over these.
_WEAK_TAGS = frozenset({"", "command", "generic", "control"})


def _as_records(spans: Iterable[dict[str, Any] | Span]) -> list[dict[str, Any]]:
    from repro.obs.export import span_to_dict

    return [s if isinstance(s, dict) else span_to_dict(s) for s in spans]


def _merge_intervals(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Union of half-open intervals, sorted and non-overlapping."""
    out: list[tuple[int, int]] = []
    for t0, t1 in sorted(i for i in intervals if i[1] > i[0]):
        if out and t0 <= out[-1][1]:
            if t1 > out[-1][1]:
                out[-1] = (out[-1][0], t1)
        else:
            out.append((t0, t1))
    return out


def _subtract_intervals(
    base: list[tuple[int, int]], holes: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """``base − holes``; both inputs must be merged/sorted."""
    out: list[tuple[int, int]] = []
    hi = 0
    for b0, b1 in base:
        cur = b0
        while hi < len(holes) and holes[hi][1] <= cur:
            hi += 1
        j = hi
        while j < len(holes) and holes[j][0] < b1:
            h0, h1 = holes[j]
            if h0 > cur:
                out.append((cur, h0))
            cur = max(cur, h1)
            j += 1
        if cur < b1:
            out.append((cur, b1))
    return out


def _total(intervals: list[tuple[int, int]]) -> int:
    return sum(t1 - t0 for t0, t1 in intervals)


# ---------------------------------------------------------------------- #
# collective matching
# ---------------------------------------------------------------------- #


@dataclass
class MatchedCollective:
    """One collective call matched across the ranks that entered it."""

    name: str
    seq: int  # per-name sequence number (call order on each rank)
    #: rank → span record of that rank's participation
    members: dict[int, dict[str, Any]]
    category: str = ""

    @property
    def last_arrival_ns(self) -> int:
        return max(m["t0_ns"] for m in self.members.values())

    @property
    def straggler(self) -> int:
        """The last-arriving rank — the one bounding the collective."""
        return max(self.members, key=lambda r: self.members[r]["t0_ns"])

    def wait_ns(self, rank: int) -> int:
        """Inferred barrier wait of ``rank`` inside this collective."""
        span = self.members[rank]
        dur = max(0, span["t1_ns"] - span["t0_ns"])
        return min(dur, max(0, self.last_arrival_ns - span["t0_ns"]))


def match_collectives(
    records: list[dict[str, Any]]
) -> list[MatchedCollective]:
    """Match the i-th collective of each *name* across ranks.

    Both engines issue their collectives in a deterministic per-rank
    order, and — crucially — in the *same* order on every rank (the
    replica-consistency requirement), so pairing the i-th ``allreduce``
    (``bcast``, ``reduce``, ``barrier``, …) of each rank reconstructs
    the call-for-call grouping without any wire-level identifiers.
    Matching deliberately ignores the tag: the fork-join master tags a
    broadcast with its Table-I category while the workers receive it
    under the generic ``command`` tag.

    Error-flagged spans (a collective aborted by a rank failure) are
    excluded: after a failure the survivors' sequences diverge from the
    casualties' and positional matching would pair unrelated calls.

    Only groups joined by ≥ 2 ranks are returned — a collective seen on
    a single rank (trailing calls of a longer-lived rank) carries no
    cross-rank wait information.
    """
    per_key: dict[tuple[str, int], MatchedCollective] = {}
    counts: dict[tuple[int, str], int] = {}
    for rec in records:
        if rec.get("kind") != "comm" or rec.get("error"):
            continue
        rank, name = rec["rank"], rec["name"]
        seq = counts.get((rank, name), 0)
        counts[(rank, name)] = seq + 1
        group = per_key.setdefault(
            (name, seq), MatchedCollective(name=name, seq=seq, members={})
        )
        group.members[rank] = rec
    groups = [g for g in per_key.values() if len(g.members) >= 2]
    for g in groups:
        tags = [m.get("category", "") for m in g.members.values()]
        strong = [t for t in tags if t not in _WEAK_TAGS]
        g.category = strong[0] if strong else (tags[0] or "generic")
    groups.sort(key=lambda g: g.last_arrival_ns)
    return groups


# ---------------------------------------------------------------------- #
# wait-time attribution
# ---------------------------------------------------------------------- #


@dataclass
class RankBreakdown:
    """One rank's traced window decomposed into exclusive time classes.

    All values are nanoseconds within the rank's active window (first
    span start to last span end).  ``compute + wait + transfer +
    recovery == active`` up to clamping of inferred waits.
    """

    rank: int
    active_ns: int = 0
    compute_ns: int = 0
    comm_ns: int = 0  # union of comm spans = wait + transfer
    wait_ns: int = 0
    recovery_ns: int = 0
    n_spans: int = 0
    comm_calls: int = 0
    comm_bytes: int = 0
    dropped_spans: int = 0

    @property
    def transfer_ns(self) -> int:
        return max(0, self.comm_ns - self.wait_ns)

    @property
    def busy_ns(self) -> int:
        """Non-wait time: compute + transfer (recovery is overhead)."""
        return self.compute_ns + self.transfer_ns

    @property
    def wait_share(self) -> float:
        return self.wait_ns / self.active_ns if self.active_ns else 0.0

    @property
    def busy_share(self) -> float:
        return self.busy_ns / self.active_ns if self.active_ns else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "active_ns": self.active_ns,
            "compute_ns": self.compute_ns,
            "comm_ns": self.comm_ns,
            "wait_ns": self.wait_ns,
            "transfer_ns": self.transfer_ns,
            "recovery_ns": self.recovery_ns,
            "busy_ns": self.busy_ns,
            "wait_share": self.wait_share,
            "busy_share": self.busy_share,
            "n_spans": self.n_spans,
            "comm_calls": self.comm_calls,
            "comm_bytes": self.comm_bytes,
            "dropped_spans": self.dropped_spans,
        }


@dataclass
class TraceAnalysis:
    """Cross-rank attribution of one merged trace."""

    ranks: dict[int, RankBreakdown]
    window_ns: int
    wait_by_tag: dict[str, int] = field(default_factory=dict)
    comm_by_tag: dict[str, int] = field(default_factory=dict)
    wait_by_phase: dict[str, int] = field(default_factory=dict)
    comm_by_phase: dict[str, int] = field(default_factory=dict)
    n_collectives: int = 0

    @property
    def total_active_ns(self) -> int:
        return sum(r.active_ns for r in self.ranks.values())

    @property
    def total_wait_ns(self) -> int:
        return sum(r.wait_ns for r in self.ranks.values())

    @property
    def wait_share(self) -> float:
        """Collective-wait fraction of all ranks' active time — the
        measured form of the paper's bandwidth-bound-vs-compute-bound
        contrast between the two engines."""
        active = self.total_active_ns
        return self.total_wait_ns / active if active else 0.0

    @property
    def imbalance(self) -> float:
        """Load-imbalance index λ = max/mean per-rank busy time."""
        return load_imbalance(self.ranks)

    @property
    def dropped_spans(self) -> int:
        return sum(r.dropped_spans for r in self.ranks.values())

    def format_table(self) -> str:
        """Human-readable per-rank decomposition (``--summary``)."""
        header = (f"{'rank':>5}{'spans':>7}{'calls':>7}{'bytes':>11}"
                  f"{'active ms':>11}{'compute %':>11}{'wait %':>8}"
                  f"{'xfer %':>8}{'recov %':>9}")
        lines = [header, "-" * len(header)]
        for rank in sorted(self.ranks):
            r = self.ranks[rank]
            act = r.active_ns or 1
            lines.append(
                f"{rank:>5}{r.n_spans:>7}{r.comm_calls:>7}"
                f"{r.comm_bytes:>11}{r.active_ns / 1e6:>11.2f}"
                f"{100.0 * r.compute_ns / act:>11.1f}"
                f"{100.0 * r.wait_ns / act:>8.1f}"
                f"{100.0 * r.transfer_ns / act:>8.1f}"
                f"{100.0 * r.recovery_ns / act:>9.1f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"wall {self.window_ns / 1e6:.2f} ms over {len(self.ranks)} "
            f"rank(s): wait share {100.0 * self.wait_share:.1f}%, "
            f"imbalance λ = {self.imbalance:.3f}"
        )
        if self.wait_by_tag:
            lines.append("collective wait by tag:")
            for tag, ns in sorted(self.wait_by_tag.items(),
                                  key=lambda kv: -kv[1]):
                lines.append(f"  {tag:<42}{ns / 1e6:>10.2f} ms")
        if self.wait_by_phase:
            lines.append("collective wait by search phase:")
            for phase, ns in sorted(self.wait_by_phase.items(),
                                    key=lambda kv: -kv[1]):
                lines.append(f"  {phase:<42}{ns / 1e6:>10.2f} ms")
        if self.dropped_spans:
            lines.append(
                f"WARNING: {self.dropped_spans} span(s) dropped by the "
                f"ring buffer — shares underestimate the truncated ranks"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "window_ns": self.window_ns,
            "wait_share": self.wait_share,
            "imbalance": self.imbalance,
            "n_collectives": self.n_collectives,
            "dropped_spans": self.dropped_spans,
            "ranks": {str(k): v.to_dict() for k, v in sorted(self.ranks.items())},
            "wait_by_tag": dict(self.wait_by_tag),
            "comm_by_tag": dict(self.comm_by_tag),
            "wait_by_phase": dict(self.wait_by_phase),
            "comm_by_phase": dict(self.comm_by_phase),
        }


def _phase_lookup(records: list[dict[str, Any]]):
    """rank → sorted search spans; innermost phase containing a time."""
    by_rank: dict[int, list[dict[str, Any]]] = {}
    for rec in records:
        if rec.get("kind") == "search":
            by_rank.setdefault(rec["rank"], []).append(rec)

    def phase_of(rank: int, t_ns: int) -> str | None:
        best: dict[str, Any] | None = None
        for rec in by_rank.get(rank, ()):
            if rec["t0_ns"] <= t_ns <= rec["t1_ns"]:
                if best is None or (rec["t1_ns"] - rec["t0_ns"]
                                    < best["t1_ns"] - best["t0_ns"]):
                    best = rec
        return best["name"] if best is not None else None

    return phase_of


def attribute_wait(
    spans: Iterable[dict[str, Any] | Span]
) -> TraceAnalysis:
    """Decompose a merged trace into per-rank time classes.

    Per rank, over its active window (first span start → last span end):

    * ``comm``     — union of its collective spans,
    * ``wait``     — the part of ``comm`` spent waiting for the last
      rank to arrive (inferred from matched arrivals, clamped to the
      span), with the remainder counted as ``transfer``,
    * ``recovery`` — union of recovery spans minus any collectives
      nested inside them (redistribution traffic counts as comm),
    * ``compute``  — everything else: untraced gaps between spans,
      which on these engines is the likelihood kernel work.
    """
    records = _as_records(spans)
    timeline = [r for r in records if r.get("kind") not in _ANNOTATION_KINDS]
    ranks: dict[int, RankBreakdown] = {}
    if not records:
        return TraceAnalysis(ranks={}, window_ns=0)

    groups = match_collectives(records)
    group_index: dict[tuple[str, int], MatchedCollective] = {
        (g.name, g.seq): g for g in groups
    }
    wait_of: dict[tuple[int, str, int], int] = {}
    for g in groups:
        for rank in g.members:
            wait_of[(rank, g.name, g.seq)] = g.wait_ns(rank)

    phase_of = _phase_lookup(records)
    by_rank: dict[int, list[dict[str, Any]]] = {}
    for rec in timeline:
        by_rank.setdefault(rec["rank"], []).append(rec)
    dropped: dict[int, int] = {}
    for rec in records:
        if rec.get("kind") == "meta" and rec["name"] == "trace_truncated":
            n = int(rec.get("attrs", {}).get("dropped_spans", 0))
            dropped[rec["rank"]] = dropped.get(rec["rank"], 0) + n

    wait_by_tag: dict[str, int] = {}
    comm_by_tag: dict[str, int] = {}
    wait_by_phase: dict[str, int] = {}
    comm_by_phase: dict[str, int] = {}
    seq_counts: dict[tuple[int, str], int] = {}

    lo = min(r["t0_ns"] for r in timeline) if timeline else 0
    hi = max(r["t1_ns"] for r in timeline) if timeline else 0

    for rank, recs in sorted(by_rank.items()):
        b = RankBreakdown(rank=rank, n_spans=len(recs))
        t_first = min(r["t0_ns"] for r in recs)
        t_last = max(r["t1_ns"] for r in recs)
        b.active_ns = t_last - t_first
        comm_iv: list[tuple[int, int]] = []
        recov_iv: list[tuple[int, int]] = []
        for rec in sorted(recs, key=lambda r: r["t0_ns"]):
            kind = rec.get("kind")
            if kind == "comm":
                comm_iv.append((rec["t0_ns"], rec["t1_ns"]))
                b.comm_calls += 1
                b.comm_bytes += int(rec.get("nbytes", 0))
                name = rec["name"]
                seq = seq_counts.get((rank, name), 0)
                if not rec.get("error"):
                    seq_counts[(rank, name)] = seq + 1
                wait = wait_of.get((rank, name, seq), 0)
                b.wait_ns += wait
                group = group_index.get((name, seq))
                if group is not None and rank not in group.members:
                    group = None
                tag = (group.category if group is not None
                       else rec.get("category", "") or "generic")
                dur = max(0, rec["t1_ns"] - rec["t0_ns"])
                wait_by_tag[tag] = wait_by_tag.get(tag, 0) + wait
                comm_by_tag[tag] = comm_by_tag.get(tag, 0) + dur
                # phase: this rank's enclosing search span, else (if the
                # rank runs no search — a fork-join worker) the phase of
                # any matched rank that does (the master's).
                phase = phase_of(rank, rec["t0_ns"])
                if phase is None and group is not None:
                    for other, orec in sorted(group.members.items()):
                        phase = phase_of(other, orec["t0_ns"])
                        if phase is not None:
                            break
                phase = phase or "(no phase)"
                wait_by_phase[phase] = wait_by_phase.get(phase, 0) + wait
                comm_by_phase[phase] = comm_by_phase.get(phase, 0) + dur
            elif kind == "recovery":
                recov_iv.append((rec["t0_ns"], rec["t1_ns"]))
        comm_u = _merge_intervals(comm_iv)
        recov_u = _subtract_intervals(_merge_intervals(recov_iv), comm_u)
        b.comm_ns = _total(comm_u)
        b.recovery_ns = _total(recov_u)
        b.wait_ns = min(b.wait_ns, b.comm_ns)
        b.compute_ns = max(0, b.active_ns - b.comm_ns - b.recovery_ns)
        b.dropped_spans = dropped.get(rank, 0)
        ranks[rank] = b

    for rank in dropped:  # truncated rank with no surviving spans
        if rank not in ranks:
            ranks[rank] = RankBreakdown(rank=rank,
                                        dropped_spans=dropped[rank])

    return TraceAnalysis(
        ranks=ranks,
        window_ns=max(0, hi - lo),
        wait_by_tag=wait_by_tag,
        comm_by_tag=comm_by_tag,
        wait_by_phase=wait_by_phase,
        comm_by_phase=comm_by_phase,
        n_collectives=len(groups),
    )


def load_imbalance(ranks: dict[int, RankBreakdown]) -> float:
    """λ = max/mean busy time; 1.0 is perfect balance.

    Under a cyclic (fine-grained) distribution every rank owns a near
    equal slice of every partition and λ ≈ 1; a monolithic placement of
    unequal partitions starves some ranks, which shows up both here and
    as wait time on the underloaded ranks (they arrive early at every
    collective).
    """
    busy = [r.busy_ns for r in ranks.values()]
    if not busy or sum(busy) == 0:
        return 1.0
    mean = sum(busy) / len(busy)
    return max(busy) / mean if mean else 1.0


# ---------------------------------------------------------------------- #
# critical path
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class CriticalPathStep:
    """One segment of the chain that bounds wall time."""

    rank: int
    name: str
    kind: str  # comm | kernel | recovery | compute
    t0_ns: int
    t1_ns: int

    @property
    def duration_ns(self) -> int:
        return max(0, self.t1_ns - self.t0_ns)


@dataclass
class CriticalPath:
    """Backwards-reconstructed bounding chain of a merged trace."""

    steps: list[CriticalPathStep]  # chronological order
    window_ns: int

    @property
    def length_ns(self) -> int:
        return sum(s.duration_ns for s in self.steps)

    def contribution_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self.steps:
            out[s.kind] = out.get(s.kind, 0) + s.duration_ns
        return out

    def contribution_shares(self) -> dict[str, float]:
        total = self.length_ns
        if not total:
            return {}
        return {k: v / total
                for k, v in self.contribution_by_kind().items()}

    @property
    def rank_switches(self) -> int:
        return sum(1 for a, b in zip(self.steps, self.steps[1:])
                   if a.rank != b.rank)

    def format_summary(self, top: int = 8) -> str:
        shares = sorted(self.contribution_shares().items(),
                        key=lambda kv: -kv[1])
        lines = [
            f"critical path: {self.length_ns / 1e6:.2f} ms over "
            f"{len(self.steps)} segment(s), {self.rank_switches} rank "
            f"switch(es)"
        ]
        for kind, share in shares:
            lines.append(f"  {kind:<10}{100.0 * share:>7.1f} %")
        heavy = sorted(self.steps, key=lambda s: -s.duration_ns)[:top]
        lines.append(f"heaviest segments (top {len(heavy)}):")
        for s in heavy:
            lines.append(
                f"  rank {s.rank} {s.kind:<9}{s.name:<24}"
                f"{s.duration_ns / 1e6:>9.2f} ms"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "window_ns": self.window_ns,
            "length_ns": self.length_ns,
            "rank_switches": self.rank_switches,
            "contribution_ns": self.contribution_by_kind(),
            "contribution_shares": self.contribution_shares(),
            "steps": [
                {"rank": s.rank, "name": s.name, "kind": s.kind,
                 "t0_ns": s.t0_ns, "t1_ns": s.t1_ns}
                for s in self.steps
            ],
        }


def _leaf_segments(records: list[dict[str, Any]]) -> dict[int, list[dict]]:
    """Per rank: innermost comm/kernel/recovery spans plus synthetic
    ``compute`` gap segments, sorted, covering the rank's active window."""
    by_rank: dict[int, list[dict[str, Any]]] = {}
    for rec in records:
        if rec.get("kind") in ("comm", "kernel", "recovery"):
            by_rank.setdefault(rec["rank"], []).append(rec)
    out: dict[int, list[dict]] = {}
    for rank, recs in by_rank.items():
        recs.sort(key=lambda r: (r["t0_ns"], -r["t1_ns"]))
        leaves: list[dict[str, Any]] = []
        stack: list[dict[str, Any]] = []
        is_parent: set[int] = set()
        for rec in recs:
            while stack and stack[-1]["t1_ns"] <= rec["t0_ns"]:
                stack.pop()
            if stack and stack[-1]["t1_ns"] >= rec["t1_ns"]:
                is_parent.add(id(stack[-1]))
            stack.append(rec)
        for rec in recs:
            if id(rec) not in is_parent and rec["t1_ns"] > rec["t0_ns"]:
                leaves.append(rec)
        leaves.sort(key=lambda r: r["t0_ns"])
        # fill inter-span gaps with synthetic compute segments
        segments: list[dict] = []
        cursor: int | None = None
        for rec in leaves:
            if cursor is not None and rec["t0_ns"] > cursor:
                segments.append({
                    "rank": rank, "name": "(gap)", "kind": "compute",
                    "t0_ns": cursor, "t1_ns": rec["t0_ns"],
                })
            segments.append(rec)
            cursor = max(cursor or rec["t1_ns"], rec["t1_ns"])
        out[rank] = segments
    return out


def critical_path(spans: Iterable[dict[str, Any] | Span]) -> CriticalPath:
    """Reconstruct the chain of segments that bounds wall time.

    Walk backwards from the globally last-ending segment.  A matched
    collective completes when its last rank arrives, so the path charges
    the collective only ``[last_arrival, end]`` (the transfer) and then
    jumps to the straggler's timeline — the wait others spent there is
    *caused* by the straggler's earlier activity, which the walk
    continues through.  Non-collective segments charge their full
    duration and the walk stays on the same rank.
    """
    records = _as_records(spans)
    timeline = [r for r in records if r.get("kind") not in _ANNOTATION_KINDS]
    if not timeline:
        return CriticalPath(steps=[], window_ns=0)
    lo = min(r["t0_ns"] for r in timeline)
    hi = max(r["t1_ns"] for r in timeline)

    groups = match_collectives(records)
    group_of: dict[int, MatchedCollective] = {}
    for g in groups:
        for rec in g.members.values():
            group_of[id(rec)] = g

    segments = _leaf_segments(records)

    def predecessor(rank: int, t: int) -> dict | None:
        best = None
        for seg in segments.get(rank, ()):
            if seg["t1_ns"] <= t:
                if best is None or seg["t1_ns"] > best["t1_ns"]:
                    best = seg
        return best

    # start: the globally last-ending segment
    cur: dict | None = None
    for segs in segments.values():
        for seg in segs:
            if cur is None or seg["t1_ns"] > cur["t1_ns"]:
                cur = seg
    steps: list[CriticalPathStep] = []
    t = hi
    guard = sum(len(s) for s in segments.values()) + len(groups) + 8
    while cur is not None and guard > 0:
        guard -= 1
        end = min(cur["t1_ns"], t)
        group = group_of.get(id(cur))
        if group is not None and len(group.members) >= 2:
            start = max(cur["t0_ns"], group.last_arrival_ns)
            if end > start:
                steps.append(CriticalPathStep(
                    rank=cur["rank"], name=cur["name"], kind="comm",
                    t0_ns=start, t1_ns=end,
                ))
            t = start
            straggler = group.straggler
            if straggler != cur["rank"]:
                nxt = predecessor(straggler, t)
                if nxt is None:  # straggler idle since its window start
                    break
                cur = nxt
                continue
            cur = predecessor(cur["rank"], cur["t0_ns"])
        else:
            start = cur["t0_ns"]
            if end > start:
                kind = cur["kind"] if cur["kind"] != "comm" else "comm"
                steps.append(CriticalPathStep(
                    rank=cur["rank"], name=cur["name"], kind=kind,
                    t0_ns=start, t1_ns=end,
                ))
            t = start
            cur = predecessor(cur["rank"], start)
        if t <= lo:
            break
    steps.reverse()
    return CriticalPath(steps=steps, window_ns=hi - lo)


def analyze_trace(
    spans: Iterable[dict[str, Any] | Span]
) -> tuple[TraceAnalysis, CriticalPath]:
    """One-call analysis: attribution + critical path of a merged trace."""
    records = _as_records(spans)
    return attribute_wait(records), critical_path(records)
