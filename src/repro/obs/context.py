"""End-to-end trace context: one ``trace_id`` from HTTP submit to mesh exit.

A job's life crosses three processes — the serve daemon (admission,
sizing, queueing, grant, launch, reap), the ``repro infer`` child it
spawns, and that child's forked rank mesh.  This module carries one
identity across all of them so the whole story can be stitched into a
single timeline:

* :func:`new_trace_id` mints the id at submission time (in the daemon,
  or anywhere else a traced lifecycle starts);
* the daemon records its **service spans** (``queued`` / ``sized`` /
  ``granted`` / ``launched`` / ``run`` ...) with
  :func:`record_service_spans` into ``<run_dir>/trace-daemon.jsonl``,
  on the :data:`DAEMON_RANK` pseudo-rank track;
* the context propagates into the child via CLI flag (``repro infer
  --trace-id``) *and* the :data:`TRACE_ENV` environment variable
  (:func:`child_env` / :func:`current_trace_id`), and from there into
  every rank's :class:`repro.obs.tracer.Tracer`;
* :func:`repro.obs.export.merge_job_trace` merges the daemon stream
  with the per-rank streams — all timestamps come from
  :func:`time.perf_counter_ns`, a system-wide monotonic clock on Linux,
  so daemon and rank spans of one host interleave correctly without any
  clock synchronization.

Service spans reuse the exact record schema of
:func:`repro.obs.export.span_to_dict` (``name``/``kind``/``rank``/
``t0_ns``/``t1_ns`` + ``attrs``) plus a top-level ``trace_id``, so every
existing exporter and analyzer consumes them unchanged.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "TRACE_ENV",
    "DAEMON_RANK",
    "KIND_SERVICE",
    "DAEMON_TRACE_FILENAME",
    "new_trace_id",
    "current_trace_id",
    "child_env",
    "now_ns",
    "now_s",
    "service_span",
    "service_instant",
    "daemon_trace_path",
    "record_service_spans",
]

#: Environment variable carrying the trace id into child processes.
TRACE_ENV = "REPRO_TRACE_ID"

#: Pseudo-rank for daemon-side service spans.  Ranks are >= 0, so the
#: daemon gets its own process track in the merged Chrome trace.
DAEMON_RANK = -1

#: Span kind for scheduler/lifecycle spans (the ``tid`` axis next to
#: ``comm``/``kernel``/``search``/``recovery``).
KIND_SERVICE = "service"

#: Daemon span stream inside a job's run directory.
DAEMON_TRACE_FILENAME = "trace-daemon.jsonl"


def new_trace_id() -> str:
    """Mint a fresh 16-hex-char trace id.

    Uniqueness, not determinism, is the requirement here: the id names
    one submission's lifecycle and never feeds replica control flow.
    """
    return uuid.uuid4().hex[:16]


def current_trace_id(env: Mapping[str, str] | None = None) -> str:
    """The trace id inherited from the environment ('' when untraced)."""
    source = os.environ if env is None else env
    return str(source.get(TRACE_ENV, "") or "")


def child_env(
    trace_id: str, base: Mapping[str, str] | None = None
) -> dict[str, str]:
    """A copy of ``base`` (default: ``os.environ``) carrying the context."""
    env = dict(os.environ if base is None else base)
    if trace_id:
        env[TRACE_ENV] = trace_id
    return env


def now_ns() -> int:
    """Monotonic span timestamp (shared across processes on one host)."""
    return time.perf_counter_ns()


def now_s() -> float:
    """Wall-clock seconds for human-facing manifest stamps."""
    return time.time()


def service_span(
    name: str,
    trace_id: str,
    t0_ns: int,
    t1_ns: int,
    **attrs: Any,
) -> dict[str, Any]:
    """One daemon-side span record in the per-rank stream schema."""
    record: dict[str, Any] = {
        "name": name,
        "kind": KIND_SERVICE,
        "rank": DAEMON_RANK,
        "t0_ns": int(t0_ns),
        "t1_ns": int(t1_ns),
    }
    if trace_id:
        record["trace_id"] = trace_id
    if attrs:
        record["attrs"] = attrs
    return record


def service_instant(
    name: str, trace_id: str, t_ns: int | None = None, **attrs: Any
) -> dict[str, Any]:
    """A zero-duration service marker (``t1_ns == t0_ns``)."""
    t = now_ns() if t_ns is None else int(t_ns)
    return service_span(name, trace_id, t, t, **attrs)


def daemon_trace_path(run_dir: str | Path) -> Path:
    """Where a job's daemon-side span stream lives."""
    return Path(run_dir) / DAEMON_TRACE_FILENAME


def record_service_spans(
    run_dir: str | Path, records: Iterable[dict[str, Any]]
) -> Path:
    """Append service span records to the job's daemon stream.

    Append-only JSONL, one writer (the daemon's locked tick/submit
    paths), flushed per batch — crash-safe in the same torn-tail-tolerant
    sense as the progress streams.
    """
    path = daemon_trace_path(run_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        for record in records:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
    return path
