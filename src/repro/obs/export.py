"""Trace exporters: per-rank JSONL streams and merged Chrome traces.

Each rank writes its ring buffer as one JSON object per line
(``trace-rank<N>.jsonl``, ``N`` = the rank's *original* world number).
Because all ranks of one mesh read the same monotonic clock (see
:mod:`repro.obs.tracer`), the per-rank streams can be merged by
timestamp into one cross-rank timeline and exported in the Chrome
``traceEvents`` JSON format, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* ``pid``  = rank (one process track per rank),
* ``tid``  = span kind (``comm`` / ``kernel`` / ``search`` /
  ``recovery`` — named via thread-name metadata events),
* complete events (``ph: "X"``) for timed spans, instant events
  (``ph: "i"``) for zero-duration markers such as ``rank_failure``,
* timestamps in microseconds relative to the earliest span.

The timeline makes the paper's mechanism *visible*: fork-join traces
show every worker's ``bcast`` span waiting on the master between
regions, decentralized traces show only the sparse ``allreduce`` sites.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.tracer import Span

__all__ = [
    "span_to_dict",
    "write_jsonl",
    "read_jsonl",
    "rank_trace_path",
    "merge_rank_streams",
    "merge_job_trace",
    "chrome_trace",
    "write_chrome_trace",
    "snapshot_to_prom",
]


def span_to_dict(span: Span) -> dict[str, Any]:
    """JSON-safe representation of one span."""
    out: dict[str, Any] = {
        "name": span.name,
        "kind": span.kind,
        "rank": span.rank,
        "t0_ns": span.t0_ns,
        "t1_ns": span.t1_ns,
    }
    if span.category:
        out["category"] = span.category
    if span.nbytes:
        out["nbytes"] = span.nbytes
    if span.error:
        out["error"] = True
    if span.attrs:
        out["attrs"] = {k: _json_safe(v) for k, v in span.attrs.items()}
    return out


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    try:  # numpy scalars
        return value.item()
    except AttributeError:
        return str(value)


def rank_trace_path(trace_dir: str | Path, world_rank: int) -> Path:
    """Canonical per-rank JSONL file name under ``trace_dir``."""
    return Path(trace_dir) / f"trace-rank{world_rank}.jsonl"


def write_jsonl(spans: Iterable[Span | dict], path: str | Path) -> Path:
    """Write spans as one JSON object per line; creates parent dirs."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for span in spans:
            record = span if isinstance(span, dict) else span_to_dict(span)
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
    return path


def read_jsonl(path: str | Path, strict: bool = True) -> list[dict[str, Any]]:
    """Read one rank's JSONL stream back into span dicts.

    With ``strict=False`` a line that fails to parse is skipped instead
    of raising — the signature of a writer killed mid-record (daemon
    SIGKILL, disk-full truncation), where everything before the torn
    trailing line is still valid.
    """
    out = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                if strict:
                    raise
    return out


def merge_rank_streams(paths: Iterable[str | Path]) -> list[dict[str, Any]]:
    """Merge per-rank JSONL streams into one start-time-ordered list.

    Ranks share a monotonic timebase, so a plain sort by ``t0_ns`` (rank
    as tie-breaker) yields the true cross-rank interleaving.  Torn
    trailing records (a stream's writer died mid-write) are dropped
    rather than failing the whole merge.
    """
    merged: list[dict[str, Any]] = []
    for path in paths:
        merged.extend(read_jsonl(path, strict=False))
    merged.sort(key=lambda s: (s["t0_ns"], s["rank"]))
    return merged


def merge_job_trace(run_dir: str | Path) -> list[dict[str, Any]]:
    """Merge a served job's daemon + per-rank span streams into one list.

    The daemon writes its scheduler-lifecycle spans (pseudo-rank ``-1``,
    kind ``service``) to ``<run_dir>/trace-daemon.jsonl``; the job's
    rank meshes write ``trace-rank<N>.jsonl`` files anywhere below the
    run directory (directly under ``trace/`` for plain jobs, under
    ``trace/attempt<K>/`` for supervised relaunches).  All streams share
    the monotonic host clock, so the usual sort yields the true
    submit → queue → launch → iterations → completion interleaving.
    """
    run_dir = Path(run_dir)
    paths: list[Path] = []
    daemon_stream = run_dir / "trace-daemon.jsonl"
    if daemon_stream.exists():
        paths.append(daemon_stream)
    paths.extend(sorted(run_dir.rglob("trace-rank*.jsonl")))
    return merge_rank_streams(paths)


def chrome_trace(spans: Iterable[dict[str, Any] | Span]) -> dict[str, Any]:
    """Convert (merged) spans to a Chrome/Perfetto ``traceEvents`` dict."""
    records = [
        s if isinstance(s, dict) else span_to_dict(s) for s in spans
    ]
    if not records:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(r["t0_ns"] for r in records)
    events: list[dict[str, Any]] = []
    # Stable small-int thread ids per (rank, kind), named via metadata;
    # each pid (= rank, or -1 for the serve daemon) also gets a
    # process_name track so merged job traces read "daemon" / "rank N".
    tids: dict[tuple[int, str], int] = {}
    named_pids: set[int] = set()
    for rec in records:
        if rec["rank"] not in named_pids:
            named_pids.add(rec["rank"])
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": rec["rank"],
                "tid": 0,
                "args": {"name": ("daemon" if rec["rank"] < 0
                                  else f"rank {rec['rank']}")},
            })
        key = (rec["rank"], rec["kind"])
        if key not in tids:
            tid = len([k for k in tids if k[0] == rec["rank"]]) + 1
            tids[key] = tid
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": rec["rank"],
                "tid": tid,
                "args": {"name": rec["kind"]},
            })
        args: dict[str, Any] = dict(rec.get("attrs", {}))
        if rec.get("category"):
            args["tag"] = rec["category"]
        if rec.get("nbytes"):
            args["nbytes"] = rec["nbytes"]
        if rec.get("error"):
            args["error"] = True
        if rec.get("trace_id"):
            args["trace_id"] = rec["trace_id"]
        event: dict[str, Any] = {
            "name": rec["name"],
            "cat": rec.get("kind", ""),
            "pid": rec["rank"],
            "tid": tids[key],
            "ts": (rec["t0_ns"] - base) / 1000.0,
            "args": args,
        }
        if rec["t1_ns"] == rec["t0_ns"]:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = (rec["t1_ns"] - rec["t0_ns"]) / 1000.0
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Iterable[dict[str, Any] | Span], path: str | Path
) -> Path:
    """Write a Chrome-trace JSON file; creates parent dirs."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(spans)))
    return path


def _prom_name(name: str, prefix: str) -> str:
    """Sanitize a dotted metric name into the Prometheus charset."""
    full = f"{prefix}_{name}" if prefix else name
    out = [c if c.isalnum() or c == "_" else "_" for c in full]
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def snapshot_to_prom(
    snapshot: dict[str, Any],
    prefix: str = "repro",
    labels: dict[str, str] | None = None,
) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format.

    ``snapshot`` is a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    (or a :func:`~repro.obs.metrics.merge_snapshots` result).  Counters
    become ``counter`` samples, gauges ``gauge`` samples, and each
    histogram's streaming summary becomes ``<name>_count`` /
    ``<name>_sum`` plus ``_min``/``_max`` gauges — enough for rate and
    mean queries without storing raw samples.  A histogram carrying
    per-bucket counts additionally renders as a genuine Prometheus
    histogram: cumulative ``<name>_bucket{le="..."}`` samples closed by
    the ``le="+Inf"`` total.  ``labels`` (e.g.
    ``{"rank": "2", "engine": "decentralized"}``) are attached to every
    sample, so per-rank snapshots can be scraped side by side from a
    long-running launcher.
    """
    label_str = ""
    if labels:
        def esc(v: Any) -> str:
            return str(v).replace("\\", "\\\\").replace('"', '\\"')

        rendered = ",".join(f'{k}="{esc(v)}"'
                            for k, v in sorted(labels.items()))
        label_str = "{" + rendered + "}"
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname}{label_str} {_prom_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname}{label_str} {_prom_value(value)}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        base = _prom_name(name, prefix)
        buckets = hist.get("buckets")
        if buckets:
            # bucketed histograms render as a real Prometheus histogram:
            # cumulative counts per upper edge, closed by le="+Inf"
            lines.append(f"# TYPE {base} histogram")
            cumulative = 0
            for edge in sorted(buckets, key=float):
                cumulative += buckets[edge]
                le = _prom_value(float(edge))
                if labels:
                    bl = label_str[:-1] + f',le="{le}"}}'
                else:
                    bl = f'{{le="{le}"}}'
                lines.append(f"{base}_bucket{bl} {cumulative}")
            if labels:
                bl = label_str[:-1] + ',le="+Inf"}'
            else:
                bl = '{le="+Inf"}'
            lines.append(f"{base}_bucket{bl} "
                         f"{_prom_value(hist.get('count', 0))}")
        else:
            lines.append(f"# TYPE {base} summary")
        lines.append(f"{base}_count{label_str} "
                     f"{_prom_value(hist.get('count', 0))}")
        lines.append(f"{base}_sum{label_str} "
                     f"{_prom_value(hist.get('total', 0.0))}")
        for stat in ("min", "max"):
            sname = f"{base}_{stat}"
            lines.append(f"# TYPE {sname} gauge")
            lines.append(f"{sname}{label_str} "
                         f"{_prom_value(hist.get(stat, 0.0))}")
    return "\n".join(lines) + "\n" if lines else ""
