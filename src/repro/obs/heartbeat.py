"""Per-rank heartbeat emitter: the live health side channel.

Post-mortem tracing (:mod:`repro.obs.tracer`) answers "what happened";
the heartbeat channel answers "what is happening *right now* — is rank
13 hung or just slow?".  Every monitored rank carries

* a :class:`HeartbeatState` — a small mutable record of where the rank
  is (search phase, iteration, current logL, collective call index,
  whether it is currently inside a collective), updated by the search
  driver and by the :class:`MonitoredComm` wrapper;
* a :class:`HeartbeatWriter` — a **background daemon thread** that
  samples the state every ``interval`` seconds and atomically rewrites
  the rank's status file (``hb-rank<N>.json`` under the monitor
  directory, write-to-temp + ``os.replace``).

The two are deliberately decoupled from the collective path: the writer
thread holds no locks shared with the mesh and performs no
communication, so a rank wedged inside a blocking collective (the pipe
``recv`` releases the GIL) keeps beating — its *state* freezes while
its *beats* stay fresh, which is exactly the signature the monitor
uses to tell a wedged mesh from a dead process.

Timestamps are :func:`time.perf_counter_ns` — ``CLOCK_MONOTONIC``, a
system-wide clock on Linux — so the parent-process monitor can compare
beat and collective-entry times across ranks without synchronization
(the same timebase the tracer uses).

When monitoring is off none of this exists: no thread is spawned, no
file is created, and the communicator is not wrapped — the zero-cost
discipline of :data:`~repro.obs.tracer.NULL_TRACER`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

from repro.par.comm import Comm, ReduceOp

__all__ = [
    "HeartbeatState",
    "HeartbeatWriter",
    "MonitoredComm",
    "heartbeat_path",
    "read_heartbeat",
    "read_heartbeats",
    "DEFAULT_BEAT_INTERVAL",
]

#: Default seconds between heartbeat file rewrites.
DEFAULT_BEAT_INTERVAL = 0.2

_HB_PREFIX = "hb-rank"


def heartbeat_path(monitor_dir: str | Path, world_rank: int) -> Path:
    """Canonical per-rank status file under ``monitor_dir``."""
    return Path(monitor_dir) / f"{_HB_PREFIX}{world_rank}.json"


class HeartbeatState:
    """Mutable per-rank progress record, sampled by the writer thread.

    Writers are the rank's own threads (the search driver and the
    communicator wrapper); the only cross-thread reader is the writer
    thread's :meth:`snapshot`.  Individual attribute writes are atomic
    under the GIL and the record is advisory telemetry, so no lock is
    taken on the update path; ``updated_ns`` marks the last *state
    change* (as opposed to the last *beat*), which is what stall
    detection keys on.
    """

    __slots__ = (
        "rank", "world_rank", "phase", "iteration", "radius", "logl",
        "moves_accepted", "insertions_tried", "newton_iters",
        "checkpoints", "calls", "verb", "tag", "in_collective",
        "entered_ns", "recoveries", "failed_ranks", "updated_ns",
    )

    def __init__(self, world_rank: int) -> None:
        self.rank = world_rank
        self.world_rank = world_rank
        self.phase = "init"
        self.iteration = 0
        self.radius = 0
        self.logl: float | None = None
        self.moves_accepted = 0
        self.insertions_tried = 0
        self.newton_iters = 0
        self.checkpoints = 0
        #: Collective call index (counts application collectives on the
        #: monitored interface; the numbering :class:`MonitoredComm`,
        #: ``SanitizingComm`` and ``FaultInjectingComm`` share, since all
        #: three tick once per top-level call on the same stream).
        self.calls = 0
        self.verb = ""
        self.tag = ""
        self.in_collective = False
        self.entered_ns = 0
        self.recoveries = 0
        self.failed_ranks: tuple[int, ...] = ()
        self.updated_ns = time.perf_counter_ns()

    def update(self, **fields: Any) -> None:
        """Set the given attributes and stamp ``updated_ns``."""
        for key, value in fields.items():
            setattr(self, key, value)
        self.updated_ns = time.perf_counter_ns()

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe copy of the current state (no timestamps added)."""
        return {
            "rank": self.rank,
            "world_rank": self.world_rank,
            "phase": self.phase,
            "iteration": self.iteration,
            "radius": self.radius,
            "logl": self.logl,
            "moves_accepted": self.moves_accepted,
            "insertions_tried": self.insertions_tried,
            "newton_iters": self.newton_iters,
            "checkpoints": self.checkpoints,
            "calls": self.calls,
            "verb": self.verb,
            "tag": self.tag,
            "in_collective": self.in_collective,
            "entered_ns": self.entered_ns,
            "recoveries": self.recoveries,
            "failed_ranks": list(self.failed_ranks),
            "updated_ns": self.updated_ns,
        }


class HeartbeatWriter:
    """Background thread that persists a rank's state every ``interval``.

    Each beat rewrites the status file atomically (temp file +
    ``os.replace``), so the parent-side monitor never reads a torn
    record.  The thread is a daemon: an ``os._exit`` rank death simply
    stops the beats, which the monitor reports as a dead rank.
    """

    def __init__(
        self,
        monitor_dir: str | Path,
        state: HeartbeatState,
        interval: float = DEFAULT_BEAT_INTERVAL,
    ) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.path = heartbeat_path(monitor_dir, state.world_rank)
        self.state = state
        self.interval = interval
        self.seq = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "HeartbeatWriter":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.beat()  # first record lands before any collective
        self._thread = threading.Thread(
            target=self._loop, name=f"heartbeat-rank{self.state.world_rank}",
            daemon=True,
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.beat()
            except OSError:  # pragma: no cover - disk full / dir removed
                return

    def beat(self) -> None:
        """Write one heartbeat record (also called by the owning rank
        for a final synchronous beat on shutdown)."""
        self.seq += 1
        record = self.state.snapshot()
        record["seq"] = self.seq
        record["pid"] = os.getpid()
        record["beat_ns"] = time.perf_counter_ns()
        if resource is not None:
            # peak RSS of this rank process; ru_maxrss is KiB on Linux
            # (bytes on macOS — consumers treat it as platform-units)
            record["rss_peak_kb"] = resource.getrusage(
                resource.RUSAGE_SELF).ru_maxrss
        tmp = self.path.with_name(self.path.name + f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(record, separators=(",", ":")))
        os.replace(tmp, self.path)

    def stop(self, final_phase: str | None = None) -> None:
        """Stop the thread; optionally stamp a terminal phase first."""
        if final_phase is not None:
            self.state.update(phase=final_phase, in_collective=False)
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        try:
            self.beat()
        except OSError:  # pragma: no cover
            pass


def read_heartbeat(path: str | Path) -> dict[str, Any] | None:
    """Read one status file; ``None`` if missing or torn mid-replace."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError):
        return None


def read_heartbeats(monitor_dir: str | Path) -> dict[int, dict[str, Any]]:
    """All rank records under ``monitor_dir``, keyed by world rank."""
    out: dict[int, dict[str, Any]] = {}
    try:
        names = sorted(os.listdir(monitor_dir))
    except OSError:
        return out
    for name in names:
        if not (name.startswith(_HB_PREFIX) and name.endswith(".json")):
            continue
        record = read_heartbeat(Path(monitor_dir) / name)
        if record is not None:
            out[int(record["world_rank"])] = record
    return out


class MonitoredComm(Comm):
    """Communicator wrapper that reports each collective to the state.

    Purely observational: every call delegates 1:1 to the wrapped
    communicator (delivery order, reduction order and fault behaviour
    untouched), bracketed by two attribute updates on the rank-local
    :class:`HeartbeatState` — enter (bump the call index, mark
    ``in_collective``) and exit.  No extra messages are sent, so a
    monitored run has byte-for-byte identical ``bytes_by_tag`` /
    ``calls_by_tag`` to an unmonitored one.

    In the launcher's wrapper stack this sits *inside* fault injection:
    an injected hang fires before the state records the call, so a hung
    rank's heartbeat shows it never *entered* call ``K`` while its
    peers' heartbeats show them waiting *inside* ``K`` — the asymmetry
    :func:`repro.obs.monitor.diagnose` keys on.
    """

    def __init__(self, inner: Comm, state: HeartbeatState) -> None:
        self.inner = inner
        self.state = state

    # -- delegation ---------------------------------------------------- #
    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def bytes_by_tag(self):
        return self.inner.bytes_by_tag

    @property
    def calls_by_tag(self):
        return self.inner.calls_by_tag

    def world_rank(self, rank: int) -> int:
        return self.inner.world_rank(rank)

    def world_ranks(self, ranks) -> tuple[int, ...]:
        return self.inner.world_ranks(ranks)

    # -- observed collectives ------------------------------------------ #
    def _enter(self, verb: str, tag: str) -> None:
        s = self.state
        s.calls += 1
        s.verb = verb
        s.tag = tag
        s.entered_ns = time.perf_counter_ns()
        s.in_collective = True
        s.updated_ns = s.entered_ns

    def _exit(self) -> None:
        s = self.state
        s.in_collective = False
        s.updated_ns = time.perf_counter_ns()

    def bcast(self, obj: Any, root: int = 0, tag: str = "generic") -> Any:
        self._enter("bcast", tag)
        try:
            return self.inner.bcast(obj, root, tag)
        finally:
            self._exit()

    def reduce(self, obj: Any, op: ReduceOp = ReduceOp.SUM, root: int = 0,
               tag: str = "generic") -> Any:
        self._enter("reduce", tag)
        try:
            return self.inner.reduce(obj, op, root, tag)
        finally:
            self._exit()

    def allreduce(self, obj: Any, op: ReduceOp = ReduceOp.SUM,
                  tag: str = "generic") -> Any:
        self._enter("allreduce", tag)
        try:
            return self.inner.allreduce(obj, op, tag)
        finally:
            self._exit()

    def barrier(self, tag: str = "generic") -> None:
        self._enter("barrier", tag)
        try:
            return self.inner.barrier(tag)
        finally:
            self._exit()

    def gather(self, obj: Any, root: int = 0, tag: str = "generic"):
        self._enter("gather", tag)
        try:
            return self.inner.gather(obj, root, tag)
        finally:
            self._exit()

    def scatter(self, objs: list[Any] | None, root: int = 0,
                tag: str = "generic") -> Any:
        self._enter("scatter", tag)
        try:
            return self.inner.scatter(objs, root, tag)
        finally:
            self._exit()

    def send(self, obj: Any, dest: int, tag: str = "generic") -> None:
        self._enter("send", tag)
        try:
            return self.inner.send(obj, dest, tag)
        finally:
            self._exit()

    def recv(self, source: int, tag: str = "generic") -> Any:
        self._enter("recv", tag)
        try:
            return self.inner.recv(source, tag)
        finally:
            self._exit()

    # -- recovery (delegated; monitoring continues across the shrink) -- #
    def agree(self, failed) -> frozenset[int]:
        self.state.update(phase="recover", in_collective=False)
        return self.inner.agree(failed)

    def shrink(self, failed) -> "MonitoredComm":
        """Shrink the wrapped communicator; the same state (and call
        numbering) carries across, so the monitor sees one continuous
        life per rank through the failure."""
        shrunk = self.inner.shrink(failed)
        self.state.update(
            failed_ranks=tuple(sorted(
                set(self.state.failed_ranks)
                | set(self.inner.world_ranks(failed))
            )),
        )
        return MonitoredComm(shrunk, self.state)
