"""Performance regression gating over ``BENCH_*.json`` records.

Every bench-producing command (``repro profile --bench-out``, ``repro
scale --bench-out``) emits a JSON record whose ``metrics`` section is a
flat ``name → number`` dict of gateable quantities (wall seconds, wait
shares, imbalance indices).  The gate loads any number of *prior*
records of the same kind, takes the per-metric **median** across them
(medians shrug off one noisy baseline run), and fails when the current
value exceeds the median by more than a noise-tolerant threshold:

    regressed  ⇔  current > median · threshold  AND
                  current − median > abs_floor

Both guards matter on CI-sized runs: the relative threshold tolerates
machine-to-machine speed differences, the absolute floor keeps
microsecond-scale metrics from flapping the gate.

With fewer than ``min_baselines`` baselines the gate runs in
**report-only** mode (it prints the comparison but never fails) — so
the CI wiring can land before any history exists and the perf
trajectory starts accumulating from the first green build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Any, Iterable

__all__ = [
    "DEFAULT_THRESHOLD",
    "DEFAULT_ABS_FLOOR",
    "DEFAULT_MIN_BASELINES",
    "GateRow",
    "GateReport",
    "bench_metrics",
    "load_baselines",
    "compare_to_baselines",
]

#: Current value may exceed the baseline median by 30 % before failing.
DEFAULT_THRESHOLD = 1.3
#: ... and must also be at least this much larger in absolute terms
#: (seconds for ``*_s`` metrics; shares/indices are already O(1)).
DEFAULT_ABS_FLOOR = 0.05
#: Below this many baselines the gate reports but never fails.
DEFAULT_MIN_BASELINES = 2


def bench_metrics(doc: dict[str, Any]) -> dict[str, float]:
    """Gateable metrics of one bench record.

    Prefers the record's explicit ``metrics`` section; falls back to
    flattening numeric leaves whose key ends in ``_s`` (wall/compute
    seconds) so pre-existing records like ``BENCH_obs_smoke.json``
    remain gateable without rewriting.
    """
    metrics = doc.get("metrics")
    if isinstance(metrics, dict) and metrics:
        return {
            k: float(v) for k, v in metrics.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
    out: dict[str, float] = {}

    def walk(node: Any, prefix: str) -> None:
        if isinstance(node, dict):
            for k, v in node.items():
                walk(v, f"{prefix}.{k}" if prefix else str(k))
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            if prefix.endswith("_s"):
                out[prefix] = float(node)

    walk(doc, "")
    return out


def load_baselines(paths: Iterable[str | Path]) -> list[dict[str, Any]]:
    """Read baseline records; unreadable/non-JSON files are skipped with
    a note in the returned docs' place (never a hard failure — a corrupt
    baseline must not block the build it is supposed to protect)."""
    docs: list[dict[str, Any]] = []
    for path in paths:
        try:
            docs.append(json.loads(Path(path).read_text()))
        except (OSError, json.JSONDecodeError):
            continue
    return docs


@dataclass(frozen=True)
class GateRow:
    """One metric's comparison against the baseline median."""

    metric: str
    current: float
    baseline_median: float | None
    n_baselines: int
    status: str  # ok | regressed | improved | new

    @property
    def ratio(self) -> float | None:
        if self.baseline_median in (None, 0.0):
            return None
        return self.current / self.baseline_median


@dataclass
class GateReport:
    """Outcome of gating one record against its baselines."""

    rows: list[GateRow]
    threshold: float
    abs_floor: float
    enforced: bool
    n_baselines: int
    #: Metrics present in baselines but missing from the current record
    #: (a silently vanished metric is suspicious, reported not fatal).
    missing: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[GateRow]:
        return [r for r in self.rows if r.status == "regressed"]

    @property
    def failed(self) -> bool:
        return self.enforced and bool(self.regressions)

    @property
    def exit_code(self) -> int:
        return 1 if self.failed else 0

    def format_table(self) -> str:
        header = (f"{'metric':<48}{'current':>12}{'median':>12}"
                  f"{'ratio':>8}  status")
        lines = [
            f"regression gate — {self.n_baselines} baseline(s), "
            f"threshold ×{self.threshold:g}, floor {self.abs_floor:g}"
            + ("" if self.enforced
               else "  [report-only: not enough baselines]"),
            header, "-" * len(header),
        ]
        for row in sorted(self.rows, key=lambda r: r.metric):
            med = ("-" if row.baseline_median is None
                   else f"{row.baseline_median:.4g}")
            ratio = "-" if row.ratio is None else f"{row.ratio:.3f}"
            lines.append(
                f"{row.metric:<48}{row.current:>12.4g}{med:>12}"
                f"{ratio:>8}  {row.status}"
            )
        for name in self.missing:
            lines.append(f"{name:<48}{'(missing from current record)':>34}")
        lines.append("-" * len(header))
        verdict = ("FAIL" if self.failed else
                   ("regressions (report-only)" if self.regressions
                    else "OK"))
        lines.append(f"{len(self.regressions)} regression(s) -> {verdict}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "threshold": self.threshold,
            "abs_floor": self.abs_floor,
            "enforced": self.enforced,
            "n_baselines": self.n_baselines,
            "failed": self.failed,
            "missing": list(self.missing),
            "rows": [
                {
                    "metric": r.metric,
                    "current": r.current,
                    "baseline_median": r.baseline_median,
                    "ratio": r.ratio,
                    "status": r.status,
                }
                for r in self.rows
            ],
        }


def compare_to_baselines(
    current: dict[str, Any],
    baselines: list[dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
    abs_floor: float = DEFAULT_ABS_FLOOR,
    min_baselines: int = DEFAULT_MIN_BASELINES,
) -> GateReport:
    """Gate ``current`` against the per-metric medians of ``baselines``.

    Metrics are higher-is-worse (seconds, wait shares, imbalance — the
    convention of every ``metrics`` section this repo emits).  A metric
    new in the current record passes as ``new``; one that disappeared is
    listed under ``missing``.
    """
    cur = bench_metrics(current)
    base = [bench_metrics(doc) for doc in baselines]
    enforced = len(base) >= min_baselines
    rows: list[GateRow] = []
    for name, value in sorted(cur.items()):
        history = [b[name] for b in base if name in b]
        if not history:
            rows.append(GateRow(name, value, None, 0, "new"))
            continue
        med = float(median(history))
        if value > med * threshold and value - med > abs_floor:
            status = "regressed"
        elif value < med / threshold and med - value > abs_floor:
            status = "improved"
        else:
            status = "ok"
        rows.append(GateRow(name, value, med, len(history), status))
    seen = set(cur)
    missing = sorted({name for b in base for name in b} - seen)
    return GateReport(
        rows=rows,
        threshold=threshold,
        abs_floor=abs_floor,
        enforced=enforced,
        n_baselines=len(base),
        missing=missing,
    )
