"""Offline service-level analytics from registry manifests alone.

``repro slo`` answers "how did the service actually behave?" without
the daemon: every job's manifest carries the queue stamps the daemon
wrote (``submitted_s/ns``, ``granted_s/ns``, ``launched_s/ns``,
``finished_s/ns``), so queue-wait and turnaround distributions,
pool utilization, and per-tenant fairness are all reconstructible from
disk after the fact — the same numbers the live ``/metrics`` histograms
observed, recomputed from the durable record.

Monotonic ``*_ns`` stamps are preferred for intervals (they share the
per-rank tracers' timebase and never jump); wall ``*_s`` stamps anchor
the report's window and are the fallback for manifests predating the
ns stamps.  Percentiles are nearest-rank — deterministic, exact on
small samples, and reproducible across runs.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.registry import RunRegistry

__all__ = [
    "JobStats",
    "SloReport",
    "collect_job_stats",
    "compute_slo",
    "percentile",
    "write_report",
]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``values``.

    Deterministic and exact for small samples: the returned value is
    always one of the inputs.  Empty input returns 0.0.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[min(len(ordered), max(1, rank)) - 1]


def _interval(queue: dict[str, Any], start: str, end: str) -> float | None:
    """Seconds between two queue stamps, ns-first with wall fallback."""
    t0_ns, t1_ns = queue.get(f"{start}_ns"), queue.get(f"{end}_ns")
    if t0_ns is not None and t1_ns is not None:
        return max(0.0, (int(t1_ns) - int(t0_ns)) / 1e9)
    t0_s, t1_s = queue.get(f"{start}_s"), queue.get(f"{end}_s")
    if t0_s is not None and t1_s is not None:
        return max(0.0, float(t1_s) - float(t0_s))
    return None


@dataclass(frozen=True)
class JobStats:
    """One job's lifecycle intervals as read back from its manifest."""

    job_id: str
    tenant: str
    status: str
    ranks: int
    submitted_s: float | None = None
    finished_s: float | None = None
    queue_wait_s: float | None = None    # submit -> grant
    sched_latency_s: float | None = None  # grant -> launch
    run_s: float | None = None           # launch -> reap
    turnaround_s: float | None = None    # submit -> reap
    pool_ranks: int | None = None
    #: Cancelled while still queued — never granted ranks.
    abandoned: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {k: v for k, v in sorted(self.__dict__.items())
                if v is not None}


def collect_job_stats(root: str | Path | None = None) -> list[JobStats]:
    """Every job's :class:`JobStats` under a registry root, oldest first."""
    registry = RunRegistry(root)
    out = []
    for manifest in registry.list_runs():
        if manifest.get("job") is None:
            continue
        queue = manifest.get("queue") or {}
        status = str(manifest.get("status") or "unknown")
        granted = ("granted_ranks" in queue or "granted_s" in queue
                   or "granted_ns" in queue)
        out.append(JobStats(
            job_id=str(manifest.get("run_id")),
            tenant=str(queue.get("tenant", "default")),
            status=status,
            ranks=int(queue.get("granted_ranks", queue.get("ranks", 1))),
            submitted_s=queue.get("submitted_s"),
            finished_s=queue.get("finished_s"),
            queue_wait_s=_interval(queue, "submitted", "granted"),
            sched_latency_s=_interval(queue, "granted", "launched"),
            run_s=_interval(queue, "launched", "finished"),
            turnaround_s=_interval(queue, "submitted", "finished"),
            pool_ranks=queue.get("pool_ranks"),
            abandoned=(status == "cancelled" and not granted),
        ))
    return out


def _dist(values: list[float]) -> dict[str, float]:
    if not values:
        return {"count": 0}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50.0),
        "p90": percentile(values, 90.0),
        "p99": percentile(values, 99.0),
        "max": max(values),
    }


@dataclass(frozen=True)
class SloReport:
    """Service-level summary over one registry root's job history."""

    jobs_total: int
    by_status: dict[str, int]
    queue_wait: dict[str, float]
    sched_latency: dict[str, float]
    run_duration: dict[str, float]
    turnaround: dict[str, float]
    #: rank-seconds delivered / (pool_ranks × observed window)
    utilization: float | None
    window_s: float | None
    pool_ranks: int | None
    #: tenant -> {jobs, rank_s, rank_s_share, queue_wait_p50} — the
    #: fairness view: is any tenant hogging the pool or starving?
    tenants: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Jobs cancelled before ever being granted ranks.
    abandoned: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "jobs_total": self.jobs_total,
            "by_status": dict(sorted(self.by_status.items())),
            "queue_wait_s": self.queue_wait,
            "sched_latency_s": self.sched_latency,
            "run_duration_s": self.run_duration,
            "turnaround_s": self.turnaround,
            "utilization": self.utilization,
            "window_s": self.window_s,
            "pool_ranks": self.pool_ranks,
            "tenants": {t: dict(sorted(v.items()))
                        for t, v in sorted(self.tenants.items())},
            "abandoned": self.abandoned,
        }

    def to_bench(self) -> dict[str, Any]:
        """A BENCH record (``repro regress`` input): flat metrics where
        larger = worse, so a queue-wait regression trips the gate."""
        metrics: dict[str, float] = {}
        for name, dist in (("queue_wait", self.queue_wait),
                           ("turnaround", self.turnaround),
                           ("sched_latency", self.sched_latency)):
            for stat in ("p50", "p99"):
                if stat in dist:
                    metrics[f"slo.{name}_{stat}_s"] = float(dist[stat])
        if self.utilization is not None:
            metrics["slo.idle_fraction"] = max(0.0, 1.0 - self.utilization)
        if self.jobs_total:
            failed = self.by_status.get("failed", 0)
            metrics["slo.failure_rate"] = failed / self.jobs_total
            metrics["slo.abandonment_rate"] = (
                self.abandoned / self.jobs_total)
        return {"kind": "serve_slo", "metrics": metrics}

    def format_markdown(self) -> str:
        lines = ["# Service-level report", ""]
        statuses = ", ".join(f"{k} {v}"
                             for k, v in sorted(self.by_status.items()))
        lines.append(f"- jobs: **{self.jobs_total}** "
                     f"({statuses or 'none'})")
        if self.abandoned:
            lines.append(f"- abandoned before grant: {self.abandoned}")
        if self.utilization is not None:
            lines.append(f"- pool utilization: {self.utilization:.1%} "
                         f"({self.pool_ranks} rank(s) over "
                         f"{self.window_s:.1f}s window)")
        lines.append("")
        lines.append("| interval | count | mean | p50 | p90 | p99 | max |")
        lines.append("|---|---|---|---|---|---|---|")
        for name, dist in (("queue wait", self.queue_wait),
                           ("sched latency", self.sched_latency),
                           ("run duration", self.run_duration),
                           ("turnaround", self.turnaround)):
            if dist.get("count"):
                lines.append(
                    f"| {name} | {dist['count']:.0f} "
                    f"| {dist['mean']:.3f}s | {dist['p50']:.3f}s "
                    f"| {dist['p90']:.3f}s | {dist['p99']:.3f}s "
                    f"| {dist['max']:.3f}s |")
            else:
                lines.append(f"| {name} | 0 | - | - | - | - | - |")
        if self.tenants:
            lines.append("")
            lines.append("| tenant | jobs | rank·s | share "
                         "| queue wait p50 |")
            lines.append("|---|---|---|---|---|")
            for tenant in sorted(self.tenants):
                row = self.tenants[tenant]
                lines.append(
                    f"| {tenant} | {row['jobs']:.0f} "
                    f"| {row['rank_s']:.2f} | {row['rank_s_share']:.1%} "
                    f"| {row['queue_wait_p50']:.3f}s |")
        return "\n".join(lines) + "\n"


def compute_slo(stats: list[JobStats]) -> SloReport:
    """Aggregate per-job lifecycle stats into one :class:`SloReport`."""
    by_status: dict[str, int] = {}
    for s in stats:
        by_status[s.status] = by_status.get(s.status, 0) + 1
    waits = [s.queue_wait_s for s in stats if s.queue_wait_s is not None]
    lat = [s.sched_latency_s for s in stats
           if s.sched_latency_s is not None]
    runs = [s.run_s for s in stats if s.run_s is not None]
    turns = [s.turnaround_s for s in stats if s.turnaround_s is not None]

    pool_ranks = max((s.pool_ranks for s in stats
                      if s.pool_ranks is not None), default=None)
    submits = [s.submitted_s for s in stats if s.submitted_s is not None]
    finishes = [s.finished_s for s in stats if s.finished_s is not None]
    window_s = (max(finishes) - min(submits)
                if submits and finishes else None)
    rank_s_total = sum(s.run_s * s.ranks for s in stats
                       if s.run_s is not None)
    utilization = None
    if pool_ranks and window_s and window_s > 0:
        utilization = min(1.0, rank_s_total / (pool_ranks * window_s))

    tenants: dict[str, dict[str, float]] = {}
    tenant_names = sorted({s.tenant for s in stats})
    for tenant in tenant_names:
        mine = [s for s in stats if s.tenant == tenant]
        mine_rank_s = sum(s.run_s * s.ranks for s in mine
                          if s.run_s is not None)
        tenants[tenant] = {
            "jobs": float(len(mine)),
            "rank_s": mine_rank_s,
            "rank_s_share": (mine_rank_s / rank_s_total
                             if rank_s_total > 0 else 0.0),
            "queue_wait_p50": percentile(
                [s.queue_wait_s for s in mine
                 if s.queue_wait_s is not None], 50.0),
        }

    return SloReport(
        jobs_total=len(stats),
        by_status=by_status,
        queue_wait=_dist(waits),
        sched_latency=_dist(lat),
        run_duration=_dist(runs),
        turnaround=_dist(turns),
        utilization=utilization,
        window_s=window_s,
        pool_ranks=pool_ranks,
        tenants=tenants,
        abandoned=sum(1 for s in stats if s.abandoned),
    )


def write_report(
    report: SloReport,
    json_path: str | Path | None = None,
    md_path: str | Path | None = None,
    bench_path: str | Path | None = None,
) -> None:
    """Emit the report in its machine and human formats."""
    if json_path:
        Path(json_path).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
    if md_path:
        Path(md_path).write_text(report.format_markdown())
    if bench_path:
        Path(bench_path).write_text(
            json.dumps(report.to_bench(), indent=2, sort_keys=True) + "\n")
