"""Parent-process stall diagnosis over the heartbeat channel.

The heartbeat files (:mod:`repro.obs.heartbeat`) give the parent an
out-of-band view of every rank.  :func:`diagnose` folds one poll of
those records into a :class:`Diagnosis` that distinguishes

* **hung rank** — one rank's state is frozen *outside* any collective
  while its peers are frozen *inside* one: the classic injected-hang /
  wedged-compute signature.  The culprit's last completed call is
  ``calls``; the call it never entered — the one its peers are stuck
  waiting in — is ``calls + 1``, which the diagnosis names together
  with the peers' collective verb and Table-I tag;
* **slow straggler** — the same asymmetry (one rank computing, peers
  blocked waiting) but younger than ``stall_after``: the run is
  healthy, just imbalanced, and must *not* be reported as a stall;
* **global stall** — every active rank frozen inside a collective
  (a deadlock: mismatched call streams, e.g. a replica-divergence bug);
* **dead rank** — the beats themselves stopped: the process is gone
  (heartbeats come from a daemon thread, so only process death — not a
  wedged mesh — silences them).  This is the fail-stop case the
  bounded-recv detector also catches;
* **recovering** — ranks report the PR-1 ``agree → shrink →
  redistribute`` pipeline in flight; the monitor stands down rather
  than double-reporting the failure it already diagnosed.

Two clocks, two meanings: ``beat_ns`` (fresh ⇒ process alive) and
``updated_ns`` (fresh ⇒ rank making progress).  Both are
``perf_counter_ns`` — monotonic and system-wide on Linux — so the
parent compares them against its own clock directly.

The division of labour with fault tolerance: the bounded-recv timeout
*detects* that recovery is needed (and triggers it); this monitor
*diagnoses* which rank stalled, where, and why — earlier (its
thresholds are tighter than the detection timeout) and more precisely
(rank + collective call index, not just "recv timed out").
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, TextIO

from repro.obs.heartbeat import read_heartbeats

__all__ = [
    "RankHealth",
    "Diagnosis",
    "diagnose",
    "Monitor",
    "MonitorThread",
    "format_watch_table",
    "watch_loop",
    "DEFAULT_STRAGGLER_AFTER",
    "DEFAULT_STALL_AFTER",
    "DEFAULT_BEAT_TIMEOUT",
    "DIAGNOSIS_FILENAME",
]

#: A rank whose state is frozen this long is a straggler suspect.
DEFAULT_STRAGGLER_AFTER = 1.0
#: ... and this long, a stall.  Keep well under the bounded-recv
#: detection timeout (default 60 s): diagnosis must precede detection.
DEFAULT_STALL_AFTER = 3.0
#: Missing beats for this long mean the process itself is dead.
DEFAULT_BEAT_TIMEOUT = 5.0

#: Where :class:`MonitorThread` drops the first stall diagnosis.
DIAGNOSIS_FILENAME = "diagnosis.json"

_TERMINAL_PHASES = frozenset({"done", "failed"})
#: Diagnosis statuses that indicate the run is wedged.
_STALL_STATUSES = frozenset({"hung_rank", "global_stall", "dead_rank"})


@dataclass(frozen=True)
class RankHealth:
    """One rank's classified health at a poll instant."""

    rank: int
    state: str  # healthy|straggler|stalled|dead|recovering|done
    phase: str
    iteration: int
    logl: float | None
    calls: int
    verb: str
    tag: str
    in_collective: bool
    beat_age_s: float
    stale_s: float
    recoveries: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "rank": self.rank, "state": self.state, "phase": self.phase,
            "iteration": self.iteration, "logl": self.logl,
            "calls": self.calls, "verb": self.verb, "tag": self.tag,
            "in_collective": self.in_collective,
            "beat_age_s": round(self.beat_age_s, 3),
            "stale_s": round(self.stale_s, 3),
            "recoveries": self.recoveries,
        }


@dataclass
class Diagnosis:
    """One poll's verdict over the whole mesh."""

    status: str  # no_data|ok|straggler|hung_rank|global_stall|dead_rank|recovering|done
    message: str
    culprit: int | None = None
    #: Collective call index the mesh is wedged at (the call the hung
    #: rank never entered; its peers are waiting inside it).
    call_index: int | None = None
    verb: str = ""
    tag: str = ""
    stalled_for_s: float = 0.0
    stragglers: tuple[int, ...] = ()
    waiting: tuple[int, ...] = ()
    dead: tuple[int, ...] = ()
    recovering: tuple[int, ...] = ()
    ranks: list[RankHealth] = field(default_factory=list)
    t_ns: int = 0

    @property
    def is_stall(self) -> bool:
        return self.status in _STALL_STATUSES

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "message": self.message,
            "culprit": self.culprit,
            "call_index": self.call_index,
            "verb": self.verb,
            "tag": self.tag,
            "stalled_for_s": round(self.stalled_for_s, 3),
            "stragglers": list(self.stragglers),
            "waiting": list(self.waiting),
            "dead": list(self.dead),
            "recovering": list(self.recovering),
            "t_ns": self.t_ns,
            "ranks": [h.to_dict() for h in self.ranks],
        }


def _classify(record: dict[str, Any], now_ns: int, straggler_after: float,
              stall_after: float, beat_timeout: float) -> RankHealth:
    beat_age = (now_ns - int(record.get("beat_ns", 0))) / 1e9
    stale = (now_ns - int(record.get("updated_ns", 0))) / 1e9
    phase = str(record.get("phase", ""))
    if phase in _TERMINAL_PHASES:
        state = "done"
    elif beat_age > beat_timeout:
        state = "dead"
    elif phase == "recover":
        state = "recovering"
    elif stale >= stall_after:
        state = "stalled"
    elif stale >= straggler_after:
        state = "straggler"
    else:
        state = "healthy"
    return RankHealth(
        rank=int(record.get("world_rank", record.get("rank", -1))),
        state=state,
        phase=phase,
        iteration=int(record.get("iteration", 0)),
        logl=record.get("logl"),
        calls=int(record.get("calls", 0)),
        verb=str(record.get("verb", "")),
        tag=str(record.get("tag", "")),
        in_collective=bool(record.get("in_collective", False)),
        beat_age_s=beat_age,
        stale_s=stale,
        recoveries=int(record.get("recoveries", 0)),
    )


def diagnose(
    records: dict[int, dict[str, Any]],
    now_ns: int | None = None,
    straggler_after: float = DEFAULT_STRAGGLER_AFTER,
    stall_after: float = DEFAULT_STALL_AFTER,
    beat_timeout: float = DEFAULT_BEAT_TIMEOUT,
) -> Diagnosis:
    """Fold one poll of heartbeat records into a mesh diagnosis."""
    if now_ns is None:
        now_ns = time.perf_counter_ns()
    if not records:
        return Diagnosis("no_data", "no heartbeat records yet", t_ns=now_ns)
    health = [
        _classify(records[r], now_ns, straggler_after, stall_after,
                  beat_timeout)
        for r in sorted(records)
    ]
    active = [h for h in health if h.state != "done"]
    if not active:
        return Diagnosis("done", "all ranks finished", ranks=health,
                         t_ns=now_ns)

    recovering = tuple(h.rank for h in active if h.state == "recovering")
    if recovering:
        return Diagnosis(
            "recovering",
            f"rank(s) {list(recovering)} in the agree/shrink/redistribute "
            f"recovery pipeline",
            recovering=recovering, ranks=health, t_ns=now_ns,
        )

    dead = tuple(h.rank for h in active if h.state == "dead")
    if dead:
        worst = max((h for h in active if h.state == "dead"),
                    key=lambda h: h.beat_age_s)
        return Diagnosis(
            "dead_rank",
            f"rank {worst.rank} stopped heartbeating "
            f"{worst.beat_age_s:.1f}s ago (process death; last seen in "
            f"phase {worst.phase!r} after collective call {worst.calls})",
            culprit=worst.rank, stalled_for_s=worst.beat_age_s, dead=dead,
            ranks=health, t_ns=now_ns,
        )

    stalled = [h for h in active if h.state == "stalled"]
    if stalled:
        culprits = [h for h in stalled if not h.in_collective]
        waiting = tuple(h.rank for h in active
                        if h.in_collective and h.state in
                        ("stalled", "straggler"))
        if culprits:
            # The asymmetry: the hung rank froze *between* collectives
            # (it never entered call K); everyone else entered K and is
            # blocked inside it.  Name K and the collective the peers
            # report from inside it.
            culprit = min(culprits, key=lambda h: (h.calls, h.rank))
            peer = next((h for h in active if h.rank in waiting), None)
            verb = peer.verb if peer else ""
            tag = peer.tag if peer else ""
            inside = (f" ({verb}/{tag})") if verb else ""
            return Diagnosis(
                "hung_rank",
                f"hung rank {culprit.rank}: no progress for "
                f"{culprit.stale_s:.1f}s in phase {culprit.phase!r}; last "
                f"completed collective call {culprit.calls}, never entered "
                f"call {culprit.calls + 1}{inside} where "
                f"{len(waiting)} peer(s) {sorted(waiting)} are waiting",
                culprit=culprit.rank, call_index=culprit.calls + 1,
                verb=verb, tag=tag, stalled_for_s=culprit.stale_s,
                waiting=waiting, ranks=health, t_ns=now_ns,
            )
        if len(stalled) == len(active):
            calls = sorted({h.calls for h in stalled})
            return Diagnosis(
                "global_stall",
                f"all {len(active)} active rank(s) frozen inside "
                f"collective call(s) {calls} for "
                f"{min(h.stale_s for h in stalled):.1f}s (deadlock: "
                f"mismatched call streams?)",
                call_index=calls[-1],
                stalled_for_s=min(h.stale_s for h in stalled),
                waiting=tuple(h.rank for h in stalled), ranks=health,
                t_ns=now_ns,
            )
        # Some ranks frozen in a collective past stall_after while others
        # still make progress: the progressing-but-slowest ranks (the
        # ones *not* in a collective) are holding everyone up.
        slow = tuple(h.rank for h in active if not h.in_collective)
        return Diagnosis(
            "straggler",
            f"slow straggler(s) {list(slow)}: still progressing while "
            f"{len(waiting)} peer(s) wait in a collective",
            stragglers=slow, waiting=waiting, ranks=health, t_ns=now_ns,
        )

    frozen = [h for h in active if h.state == "straggler"]
    if frozen:
        slow = [h for h in frozen if not h.in_collective] or frozen
        names = tuple(h.rank for h in slow)
        waiting = tuple(h.rank for h in frozen if h.in_collective)
        worst = max(slow, key=lambda h: h.stale_s)
        return Diagnosis(
            "straggler",
            f"slow straggler rank(s) {list(names)}: no state change for "
            f"{worst.stale_s:.1f}s (under the stall threshold; "
            f"run continues)",
            stragglers=names, waiting=waiting,
            stalled_for_s=worst.stale_s, ranks=health, t_ns=now_ns,
        )

    return Diagnosis("ok", f"{len(active)} rank(s) healthy", ranks=health,
                     t_ns=now_ns)


class Monitor:
    """Poll-on-demand aggregator over one run's monitor directory."""

    def __init__(
        self,
        monitor_dir: str | Path,
        straggler_after: float = DEFAULT_STRAGGLER_AFTER,
        stall_after: float = DEFAULT_STALL_AFTER,
        beat_timeout: float = DEFAULT_BEAT_TIMEOUT,
    ) -> None:
        if not straggler_after < stall_after:
            raise ValueError("straggler_after must be < stall_after")
        self.monitor_dir = Path(monitor_dir)
        self.straggler_after = straggler_after
        self.stall_after = stall_after
        self.beat_timeout = beat_timeout

    def poll(self) -> Diagnosis:
        return diagnose(
            read_heartbeats(self.monitor_dir),
            straggler_after=self.straggler_after,
            stall_after=self.stall_after,
            beat_timeout=self.beat_timeout,
        )


class MonitorThread:
    """Background monitor for the launching (parent) process.

    Started before the ranks fork, stopped after they join: polls every
    ``interval`` seconds, records the first stall-class diagnosis
    (``first_stall``) and every status transition, and writes the first
    stall to ``diagnosis.json`` in the monitor directory so an outage
    leaves a durable, precise report even if the parent later dies.
    """

    def __init__(
        self,
        monitor_dir: str | Path,
        interval: float = 0.25,
        diagnosis_path: str | Path | None = None,
        on_diagnosis: Callable[[Diagnosis], None] | None = None,
        on_stall: Callable[[Diagnosis], None] | None = None,
        **thresholds: float,
    ) -> None:
        self.monitor = Monitor(monitor_dir, **thresholds)
        self.interval = interval
        self.diagnosis_path = Path(
            diagnosis_path if diagnosis_path is not None
            else Path(monitor_dir) / DIAGNOSIS_FILENAME
        )
        self.on_diagnosis = on_diagnosis
        #: Verdict → supervisor signal: called exactly once, with the
        #: first stall-class diagnosis (``hung_rank``/``global_stall``/
        #: ``dead_rank``).  A supervising layer hooks this to classify
        #: the attempt (e.g. escalate a hung run to a tier-1 restart)
        #: without polling the monitor itself.
        self.on_stall = on_stall
        self.first_stall: Diagnosis | None = None
        self.latest: Diagnosis | None = None
        #: Status transitions in order (first diagnosis of each streak).
        self.transitions: list[Diagnosis] = []
        self.polls = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "MonitorThread":
        self._thread = threading.Thread(
            target=self._loop, name="run-monitor", daemon=True)
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.poll_once()

    def poll_once(self) -> Diagnosis:
        diag = self.monitor.poll()
        self.polls += 1
        prev = self.latest
        self.latest = diag
        if prev is None or prev.status != diag.status:
            self.transitions.append(diag)
            if self.on_diagnosis is not None:
                self.on_diagnosis(diag)
        if diag.is_stall and self.first_stall is None:
            self.first_stall = diag
            try:
                self.diagnosis_path.parent.mkdir(parents=True, exist_ok=True)
                # tmp + fsync + rename: the supervisor reads this file to
                # pick an escalation tier, so it must never see a torn
                # half-written diagnosis.
                tmp = self.diagnosis_path.with_name(
                    self.diagnosis_path.name + ".tmp")
                with open(tmp, "w") as fh:
                    fh.write(json.dumps(diag.to_dict(), indent=2) + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.diagnosis_path)
            except OSError:  # pragma: no cover
                pass
            if self.on_stall is not None:
                self.on_stall(diag)
        return diag

    def stop(self) -> Diagnosis | None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return self.first_stall


def _fmt_logl(logl: Any) -> str:
    return f"{logl:.4f}" if isinstance(logl, (int, float)) else "-"


def format_watch_table(diag: Diagnosis) -> str:
    """Render one diagnosis as the `repro watch` per-rank table."""
    header = (f"{'rank':>4} {'state':<10} {'phase':<16} {'iter':>4} "
              f"{'logL':>14} {'calls':>7} {'collective':<26} "
              f"{'beat':>6} {'stale':>6}")
    lines = [header, "-" * len(header)]
    for h in diag.ranks:
        coll = (f"{h.verb}/{h.tag}" if h.verb else "-")
        if h.in_collective:
            coll = "in " + coll
        lines.append(
            f"{h.rank:>4} {h.state:<10} {h.phase:<16} {h.iteration:>4} "
            f"{_fmt_logl(h.logl):>14} {h.calls:>7} {coll:<26} "
            f"{h.beat_age_s:>5.1f}s {h.stale_s:>5.1f}s"
        )
    lines.append("-" * len(header))
    lines.append(f"[{diag.status}] {diag.message}")
    return "\n".join(lines)


def watch_loop(
    monitor_dir: str | Path,
    interval: float = 1.0,
    once: bool = False,
    out: TextIO | None = None,
    max_polls: int | None = None,
    clear: bool | None = None,
    straggler_after: float = DEFAULT_STRAGGLER_AFTER,
    stall_after: float = DEFAULT_STALL_AFTER,
    beat_timeout: float = DEFAULT_BEAT_TIMEOUT,
) -> Diagnosis:
    """The `repro watch` driver: refresh the table until the run ends.

    Returns the last diagnosis.  With ``once`` (or when ``max_polls``
    runs out) it prints a single snapshot and returns — the form the
    tests and scripts use; interactively it redraws in place (ANSI
    clear) on a TTY and appends otherwise.
    """
    monitor = Monitor(monitor_dir, straggler_after=straggler_after,
                      stall_after=stall_after, beat_timeout=beat_timeout)
    stream = out if out is not None else sys.stdout
    if clear is None:
        clear = (not once) and stream.isatty()
    polls = 0
    while True:
        diag = monitor.poll()
        polls += 1
        text = format_watch_table(diag)
        if clear:
            stream.write("\x1b[2J\x1b[H")
        stream.write(text + "\n")
        stream.flush()
        if once or diag.status == "done":
            return diag
        if max_polls is not None and polls >= max_polls:
            return diag
        time.sleep(interval)


def resolve_monitor_dir(token: str, root: str | Path | None = None) -> Path:
    """Turn a `repro watch` argument into a monitor directory: a
    directory path is used as-is; anything else is resolved as a run id
    — or a *served job id* — via the run registry's resolve machinery
    (full id, unique prefix, or ``latest``).  ``root`` points at an
    explicit registry root (e.g. a serve daemon's ``--root``); default
    is ``$REPRO_RUNS_DIR`` / ``./.repro_runs``."""
    path = Path(token)
    if path.is_dir() and not (path / "manifest.json").exists():
        return path
    from repro.obs.registry import RunRegistry

    registry = RunRegistry(root)
    if path.is_dir():  # a run directory itself
        registry = RunRegistry(path.parent)
        token = path.name
    manifest = registry.load(registry.resolve(token))
    mdir = manifest.get("monitor_dir")
    if not mdir:
        raise FileNotFoundError(
            f"run {manifest.get('run_id', token)!r} was not launched with "
            f"--monitor (no monitor_dir in its manifest)")
    if not os.path.isdir(mdir):
        raise FileNotFoundError(f"monitor directory {mdir!r} is gone")
    return Path(mdir)
