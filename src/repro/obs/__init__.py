"""Live observability: span tracing, metrics, trace export, reconciliation.

The analytic layers (:mod:`repro.perf`, the engine comm models) *predict*
where time and bytes go; this subsystem *measures* it on real
multiprocess runs and closes the loop:

* :mod:`repro.obs.tracer` — per-rank span tracing with a ring buffer and
  a zero-cost null tracer;
* :mod:`repro.obs.metrics` — counters/gauges/histograms for collective
  calls, payload bytes, kernel ops, failures and recoveries;
* :mod:`repro.obs.instrument` — :class:`TracingComm` /
  :class:`TracedExecutor` wrappers that instrument any communicator and
  the lock-step worker kernel without touching semantics;
* :mod:`repro.obs.export` — per-rank JSONL streams, cross-rank merging,
  Chrome-trace/Perfetto JSON, Prometheus text exposition;
* :mod:`repro.obs.reconcile` — measured-vs-modeled byte reconciliation
  per Table-I category;
* :mod:`repro.obs.analyze` — wait-time attribution, critical-path and
  load-imbalance analysis over merged traces;
* :mod:`repro.obs.scaling` — the measured scaling harness behind
  ``repro scale``;
* :mod:`repro.obs.regress` — performance regression gating over
  ``BENCH_*.json`` records;
* :mod:`repro.obs.heartbeat` — per-rank heartbeat side channel (status
  files rewritten by a background thread, decoupled from the
  collective path) plus the :class:`MonitoredComm` wrapper;
* :mod:`repro.obs.progress` — structured in-run progress events
  streamed as JSONL while the search executes;
* :mod:`repro.obs.monitor` — parent-side stall diagnosis (hung rank vs
  slow straggler vs global stall) and the ``repro watch`` table;
* :mod:`repro.obs.registry` — the persistent ``.repro_runs/`` run
  registry behind ``repro runs list|show|compare``;
* :mod:`repro.obs.context` — end-to-end trace context: the serve
  daemon mints a ``trace_id`` per submission, records scheduler spans
  under it, and propagates it into the job's per-rank tracers so one
  merged Chrome trace covers submit → queue → launch → iterations;
* :mod:`repro.obs.slo` — offline service-level analytics (queue-wait /
  turnaround percentiles, utilization, per-tenant fairness) from
  registry manifests alone, behind ``repro slo``;
* :mod:`repro.obs.hotspots` — kernel-level compute observability: the
  per-op :class:`OpProfiler` (wall time, invocations, work units and
  CLV memory per kernel op × partition), analytic FLOP/byte accounting
  and roofline placement, behind ``repro hotspots``.

See ``docs/OBSERVABILITY.md`` for the workflow, and ``repro profile`` /
``repro scale`` / ``repro regress`` on the CLI for the one-command
versions.
"""

from repro.obs.analyze import (
    CriticalPath,
    CriticalPathStep,
    RankBreakdown,
    TraceAnalysis,
    analyze_trace,
    attribute_wait,
    critical_path,
    load_imbalance,
    match_collectives,
)
from repro.obs.context import (
    current_trace_id,
    new_trace_id,
    record_service_spans,
    service_instant,
    service_span,
)
from repro.obs.export import (
    chrome_trace,
    merge_job_trace,
    merge_rank_streams,
    rank_trace_path,
    read_jsonl,
    snapshot_to_prom,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.heartbeat import (
    DEFAULT_BEAT_INTERVAL,
    HeartbeatState,
    HeartbeatWriter,
    MonitoredComm,
    heartbeat_path,
    read_heartbeat,
    read_heartbeats,
)
from repro.obs.hotspots import (
    CLV_MEMORY_SPAN,
    CLV_RATIO_MAX,
    CLV_RATIO_MIN,
    KERNEL_OP_SPAN,
    NULL_OP_PROFILER,
    HotspotReport,
    NullOpProfiler,
    OpProfiler,
    OpStat,
    build_hotspot_report,
    emit_kernel_profile,
)
from repro.obs.instrument import TracedExecutor, TracingComm
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.monitor import (
    DEFAULT_BEAT_TIMEOUT,
    DEFAULT_STALL_AFTER,
    DEFAULT_STRAGGLER_AFTER,
    Diagnosis,
    Monitor,
    MonitorThread,
    RankHealth,
    diagnose,
    format_watch_table,
    watch_loop,
)
from repro.obs.metrics import histogram_quantile
from repro.obs.progress import (
    NULL_PROGRESS,
    NullProgress,
    ProgressReporter,
    ProgressStream,
    progress_path,
    read_progress,
    read_progress_since,
)
from repro.obs.slo import (
    JobStats,
    SloReport,
    collect_job_stats,
    compute_slo,
    percentile,
)
from repro.obs.reconcile import (
    DECENTRALIZED_REL_TOL,
    FORKJOIN_REL_TOL,
    CategoryDelta,
    ReconcileReport,
    modeled_byte_totals,
    reconcile,
    reconcile_live_run,
)
from repro.obs.registry import (
    RunRegistry,
    compare_runs,
    format_compare_table,
    runs_root,
)
from repro.obs.regress import (
    GateReport,
    GateRow,
    bench_metrics,
    compare_to_baselines,
    load_baselines,
)
from repro.obs.scaling import ScalePoint, ScalingResult, run_scaling
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "TraceAnalysis",
    "RankBreakdown",
    "CriticalPath",
    "CriticalPathStep",
    "analyze_trace",
    "attribute_wait",
    "critical_path",
    "load_imbalance",
    "match_collectives",
    "snapshot_to_prom",
    "GateReport",
    "GateRow",
    "bench_metrics",
    "compare_to_baselines",
    "load_baselines",
    "ScalePoint",
    "ScalingResult",
    "run_scaling",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "histogram_quantile",
    "TracingComm",
    "TracedExecutor",
    "KERNEL_OP_SPAN",
    "CLV_MEMORY_SPAN",
    "CLV_RATIO_MIN",
    "CLV_RATIO_MAX",
    "OpProfiler",
    "NullOpProfiler",
    "NULL_OP_PROFILER",
    "OpStat",
    "HotspotReport",
    "build_hotspot_report",
    "emit_kernel_profile",
    "chrome_trace",
    "merge_job_trace",
    "merge_rank_streams",
    "rank_trace_path",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "CategoryDelta",
    "ReconcileReport",
    "modeled_byte_totals",
    "reconcile",
    "reconcile_live_run",
    "DECENTRALIZED_REL_TOL",
    "FORKJOIN_REL_TOL",
    "DEFAULT_BEAT_INTERVAL",
    "HeartbeatState",
    "HeartbeatWriter",
    "MonitoredComm",
    "heartbeat_path",
    "read_heartbeat",
    "read_heartbeats",
    "NULL_PROGRESS",
    "NullProgress",
    "ProgressReporter",
    "ProgressStream",
    "progress_path",
    "read_progress",
    "read_progress_since",
    "current_trace_id",
    "new_trace_id",
    "record_service_spans",
    "service_instant",
    "service_span",
    "JobStats",
    "SloReport",
    "collect_job_stats",
    "compute_slo",
    "percentile",
    "DEFAULT_BEAT_TIMEOUT",
    "DEFAULT_STALL_AFTER",
    "DEFAULT_STRAGGLER_AFTER",
    "Diagnosis",
    "Monitor",
    "MonitorThread",
    "RankHealth",
    "diagnose",
    "format_watch_table",
    "watch_loop",
    "RunRegistry",
    "compare_runs",
    "format_compare_table",
    "runs_root",
]
