"""Live observability: span tracing, metrics, trace export, reconciliation.

The analytic layers (:mod:`repro.perf`, the engine comm models) *predict*
where time and bytes go; this subsystem *measures* it on real
multiprocess runs and closes the loop:

* :mod:`repro.obs.tracer` — per-rank span tracing with a ring buffer and
  a zero-cost null tracer;
* :mod:`repro.obs.metrics` — counters/gauges/histograms for collective
  calls, payload bytes, kernel ops, failures and recoveries;
* :mod:`repro.obs.instrument` — :class:`TracingComm` /
  :class:`TracedExecutor` wrappers that instrument any communicator and
  the lock-step worker kernel without touching semantics;
* :mod:`repro.obs.export` — per-rank JSONL streams, cross-rank merging,
  Chrome-trace/Perfetto JSON, Prometheus text exposition;
* :mod:`repro.obs.reconcile` — measured-vs-modeled byte reconciliation
  per Table-I category;
* :mod:`repro.obs.analyze` — wait-time attribution, critical-path and
  load-imbalance analysis over merged traces;
* :mod:`repro.obs.scaling` — the measured scaling harness behind
  ``repro scale``;
* :mod:`repro.obs.regress` — performance regression gating over
  ``BENCH_*.json`` records.

See ``docs/OBSERVABILITY.md`` for the workflow, and ``repro profile`` /
``repro scale`` / ``repro regress`` on the CLI for the one-command
versions.
"""

from repro.obs.analyze import (
    CriticalPath,
    CriticalPathStep,
    RankBreakdown,
    TraceAnalysis,
    analyze_trace,
    attribute_wait,
    critical_path,
    load_imbalance,
    match_collectives,
)
from repro.obs.export import (
    chrome_trace,
    merge_rank_streams,
    rank_trace_path,
    read_jsonl,
    snapshot_to_prom,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.instrument import TracedExecutor, TracingComm
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.reconcile import (
    DECENTRALIZED_REL_TOL,
    FORKJOIN_REL_TOL,
    CategoryDelta,
    ReconcileReport,
    modeled_byte_totals,
    reconcile,
    reconcile_live_run,
)
from repro.obs.regress import (
    GateReport,
    GateRow,
    bench_metrics,
    compare_to_baselines,
    load_baselines,
)
from repro.obs.scaling import ScalePoint, ScalingResult, run_scaling
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "TraceAnalysis",
    "RankBreakdown",
    "CriticalPath",
    "CriticalPathStep",
    "analyze_trace",
    "attribute_wait",
    "critical_path",
    "load_imbalance",
    "match_collectives",
    "snapshot_to_prom",
    "GateReport",
    "GateRow",
    "bench_metrics",
    "compare_to_baselines",
    "load_baselines",
    "ScalePoint",
    "ScalingResult",
    "run_scaling",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "TracingComm",
    "TracedExecutor",
    "chrome_trace",
    "merge_rank_streams",
    "rank_trace_path",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "CategoryDelta",
    "ReconcileReport",
    "modeled_byte_totals",
    "reconcile",
    "reconcile_live_run",
    "DECENTRALIZED_REL_TOL",
    "FORKJOIN_REL_TOL",
]
