"""Persistent run registry: every launch leaves a durable manifest.

``.repro_runs/`` (or ``$REPRO_RUNS_DIR``) accumulates one directory per
launch::

    .repro_runs/
      20260806-141503-12345/
        manifest.json     # config, seed, engine, dist, result, paths
        bench.json        # optional bench record (regress-compatible)

The manifest is written at launch (``status: running``) and finalized at
exit (``completed`` / ``failed`` plus the result), so a crashed or hung
run is visible as such in ``repro runs list``.  Bench records stored via
:meth:`RunRegistry.record_bench` use the same schema as ``BENCH_*.json``
files, which makes the registry a rolling baseline pool: ``repro
regress`` folds :meth:`RunRegistry.bench_paths` into its defaults, so
the perf gate finds history without any CI bookkeeping.

Wall-clock reads (run ids, created timestamps) are fine here: this is
driver-side observability code, never executed inside a replica.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import time
from pathlib import Path
from typing import Any, Iterator

try:  # advisory locking is POSIX-only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "RunRegistry",
    "runs_root",
    "compare_runs",
    "format_compare_table",
    "format_attempt_chain",
    "DEFAULT_ROOT_NAME",
    "MANIFEST_FILENAME",
    "BENCH_FILENAME",
    "LOCK_FILENAME",
    "TERMINAL_STATUSES",
]

DEFAULT_ROOT_NAME = ".repro_runs"
MANIFEST_FILENAME = "manifest.json"
BENCH_FILENAME = "bench.json"
LOCK_FILENAME = ".manifest.lock"

#: Statuses after which a run will never be written again — the only
#: runs ``gc`` may prune and the ones a restarted daemon need not adopt.
TERMINAL_STATUSES = frozenset({"completed", "failed", "cancelled"})


def runs_root(root: str | Path | None = None) -> Path:
    """Resolve the registry root: explicit arg > $REPRO_RUNS_DIR > cwd."""
    if root is not None:
        return Path(root)
    env = os.environ.get("REPRO_RUNS_DIR")
    if env:
        return Path(env)
    return Path.cwd() / DEFAULT_ROOT_NAME


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


@contextlib.contextmanager
def _manifest_lock(run_dir: Path) -> Iterator[None]:
    """Advisory exclusive lock serializing one run's manifest writers.

    Concurrent read-modify-write cycles (a job process finalizing its
    result while the serve daemon stamps queue fields) would otherwise
    lose updates: both load, both merge, last ``os.replace`` wins.  The
    lock lives in a sidecar file so the manifest itself stays a plain
    atomically-replaced JSON document that readers can load lock-free.
    """
    run_dir.mkdir(parents=True, exist_ok=True)
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    fd = os.open(run_dir / LOCK_FILENAME, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        # closing drops the flock; no explicit LOCK_UN needed
        os.close(fd)


class RunRegistry:
    """Filesystem-backed registry of runs under one root directory."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = runs_root(root)

    # -- writing ------------------------------------------------------- #
    def new_run_id(self) -> str:
        """Timestamped, collision-proof id (sortable by creation time).

        The id is *reserved* by creating its directory (``mkdir`` is
        atomic on every filesystem we care about), so two writers in the
        same process and second — e.g. two HTTP handler threads of the
        serve daemon — can never be handed the same id.  A mere
        ``exists()`` probe would race between the check and the write.
        """
        stamp = time.strftime("%Y%m%d-%H%M%S")
        base = f"{stamp}-{os.getpid()}"
        self.root.mkdir(parents=True, exist_ok=True)
        run_id, n = base, 1
        while True:
            try:
                (self.root / run_id).mkdir()
                return run_id
            except FileExistsError:
                run_id = f"{base}-{n}"
                n += 1

    def register(self, manifest: dict[str, Any]) -> str:
        """Create a run directory and write the initial manifest."""
        run_id = manifest.get("run_id") or self.new_run_id()
        manifest = dict(manifest)
        manifest["run_id"] = run_id
        manifest.setdefault("created", time.strftime("%Y-%m-%dT%H:%M:%S"))
        manifest.setdefault("status", "running")
        # under the sidecar lock like every other writer: a pre-reserved
        # run_id means another process may already be attaching fields to
        # this manifest, and an unlocked register could clobber them.
        with _manifest_lock(self.root / run_id):
            self._write_manifest(run_id, manifest)
        return run_id

    def update(self, run_id: str, **fields: Any) -> dict[str, Any]:
        """Merge fields into an existing manifest and rewrite it."""
        with _manifest_lock(self.root / run_id):
            manifest = self.load(run_id)
            manifest.update(fields)
            self._write_manifest(run_id, manifest)
        return manifest

    def attach(self, run_id: str, **fields: Any) -> dict[str, Any]:
        """Merge fields into ``run_id``'s manifest, creating it if new.

        The serve daemon pre-registers a job manifest and then launches
        ``repro infer --run-id <id>``: the job process *attaches* to the
        existing manifest (adding engine config, then later the result)
        instead of minting a second run.  Also usable standalone to pin
        a deterministic run id.
        """
        with _manifest_lock(self.root / run_id):
            try:
                manifest = self.load(run_id)
            except FileNotFoundError:
                manifest = {"run_id": run_id,
                            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
                            "status": "running"}
            manifest.update(fields)
            manifest["run_id"] = run_id
            self._write_manifest(run_id, manifest)
        return manifest

    def record_attempt(self, run_id: str, attempt: dict[str, Any]) -> dict[str, Any]:
        """Append one supervised attempt to the run's attempt chain.

        The supervisor records every launch it makes — tier, engine,
        ranks, distribution, verdict, backoff — so a failed run's
        manifest tells the whole escalation story, not just the final
        status.  ``repro runs show`` renders the chain as a table.
        """
        with _manifest_lock(self.root / run_id):
            manifest = self.load(run_id)
            chain = list(manifest.get("attempts") or [])
            attempt = dict(attempt)
            attempt.setdefault("attempt", len(chain))
            chain.append(attempt)
            manifest["attempts"] = chain
            self._write_manifest(run_id, manifest)
        return manifest

    def progress_paths(self, run_id: str) -> list[Path]:
        """Every progress stream below a run's directory, sorted.

        Plain monitored runs keep ``progress-rank<N>.jsonl`` under
        ``<run>/monitor/``; supervised runs under per-attempt
        ``supervise/attempt<K>/monitor/`` dirs.  A recursive glob finds
        both (and whatever future layouts), so live followers like the
        serve layer's job event stream need no layout knowledge.
        """
        run_dir = self.root / run_id
        if not run_dir.is_dir():
            return []
        return sorted(run_dir.rglob("progress-rank*.jsonl"))

    def record_bench(self, run_id: str, bench: dict[str, Any]) -> Path:
        """Store a regress-compatible bench record alongside the run."""
        path = self.root / run_id / BENCH_FILENAME
        _atomic_write(path, json.dumps(bench, indent=2) + "\n")
        self.update(run_id, bench_path=str(path),
                    bench_metrics=bench.get("metrics", {}))
        return path

    def _write_manifest(self, run_id: str, manifest: dict[str, Any]) -> None:
        run_dir = self.root / run_id
        run_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write(run_dir / MANIFEST_FILENAME,
                      json.dumps(manifest, indent=2, default=str) + "\n")

    # -- reading ------------------------------------------------------- #
    def run_ids(self) -> list[str]:
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        return [n for n in names
                if (self.root / n / MANIFEST_FILENAME).is_file()]

    def load(self, run_id: str) -> dict[str, Any]:
        path = self.root / run_id / MANIFEST_FILENAME
        try:
            return json.loads(path.read_text())
        except OSError as exc:
            raise FileNotFoundError(
                f"no run {run_id!r} under {self.root}") from exc

    def list_runs(self) -> list[dict[str, Any]]:
        """All manifests, oldest first (ids sort by creation time)."""
        out = []
        for run_id in self.run_ids():
            try:
                out.append(self.load(run_id))
            except (FileNotFoundError, json.JSONDecodeError):
                continue
        return out

    def resolve(self, token: str) -> str:
        """Resolve a full id, a unique prefix, or ``latest``."""
        ids = self.run_ids()
        if token == "latest":
            if not ids:
                raise FileNotFoundError(f"no runs under {self.root}")
            return ids[-1]
        if token in ids:
            return token
        hits = [i for i in ids if i.startswith(token)]
        if len(hits) == 1:
            return hits[0]
        if not hits:
            raise FileNotFoundError(
                f"no run matching {token!r} under {self.root}")
        raise FileNotFoundError(
            f"ambiguous run prefix {token!r}: matches {hits}")

    def gc(
        self,
        keep_days: float | None = None,
        keep_last: int | None = None,
        now: float | None = None,
        dry_run: bool = False,
    ) -> list[str]:
        """Prune terminal run directories; returns the pruned run ids.

        Only runs whose status is in :data:`TERMINAL_STATUSES` are ever
        candidates — running or queued runs are untouchable regardless
        of age (the serve daemon's queue lives in these manifests).  Of
        the candidates, the ``keep_last`` most recent are always kept;
        the rest are pruned if they are older than ``keep_days`` (or
        unconditionally when ``keep_days`` is not given).  With neither
        bound set, nothing is pruned.
        """
        if keep_days is None and keep_last is None:
            return []
        if now is None:
            now = time.time()
        candidates: list[str] = []
        for run_id in self.run_ids():  # sorted => oldest first
            try:
                manifest = self.load(run_id)
            except (FileNotFoundError, json.JSONDecodeError):
                continue  # unreadable: never delete what we can't judge
            if manifest.get("status") not in TERMINAL_STATUSES:
                continue
            candidates.append(run_id)
        if keep_last is not None and keep_last > 0:
            candidates = candidates[:-keep_last] or []
        pruned: list[str] = []
        for run_id in candidates:
            if keep_days is not None:
                created = self.load(run_id).get("created")
                try:
                    age_s = now - time.mktime(
                        time.strptime(str(created), "%Y-%m-%dT%H:%M:%S"))
                except (ValueError, TypeError, OverflowError):
                    continue  # unparseable timestamp: keep it
                if age_s < keep_days * 86400.0:
                    continue
            if not dry_run:
                shutil.rmtree(self.root / run_id, ignore_errors=True)
            pruned.append(run_id)
        return pruned

    def bench_paths(self) -> list[Path]:
        """Every stored bench record, oldest first — the rolling baseline
        pool ``repro regress`` folds into its defaults."""
        return [
            self.root / run_id / BENCH_FILENAME
            for run_id in self.run_ids()
            if (self.root / run_id / BENCH_FILENAME).is_file()
        ]


def _run_bench_metrics(registry: RunRegistry,
                       manifest: dict[str, Any]) -> dict[str, float]:
    from repro.obs.regress import bench_metrics

    metrics = manifest.get("bench_metrics")
    if isinstance(metrics, dict) and metrics:
        return {k: float(v) for k, v in metrics.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)}
    bench_path = registry.root / manifest["run_id"] / BENCH_FILENAME
    try:
        return bench_metrics(json.loads(bench_path.read_text()))
    except (OSError, json.JSONDecodeError):
        return {}


def compare_runs(
    registry: RunRegistry, token_a: str, token_b: str
) -> dict[str, Any]:
    """Bench-metric delta between two registered runs (b relative to a)."""
    a = registry.load(registry.resolve(token_a))
    b = registry.load(registry.resolve(token_b))
    ma, mb = _run_bench_metrics(registry, a), _run_bench_metrics(registry, b)
    rows = []
    for name in sorted(set(ma) | set(mb)):
        va, vb = ma.get(name), mb.get(name)
        delta = (vb - va) if va is not None and vb is not None else None
        ratio = (vb / va) if va not in (None, 0.0) and vb is not None else None
        rows.append({"metric": name, "a": va, "b": vb,
                     "delta": delta, "ratio": ratio})
    return {
        "a": {"run_id": a["run_id"], "status": a.get("status"),
              "logl": (a.get("result") or {}).get("logl")},
        "b": {"run_id": b["run_id"], "status": b.get("status"),
              "logl": (b.get("result") or {}).get("logl")},
        "rows": rows,
    }


def format_compare_table(comparison: dict[str, Any]) -> str:
    a, b = comparison["a"], comparison["b"]
    header = (f"{'metric':<44}{'a':>12}{'b':>12}{'delta':>12}{'ratio':>8}")
    lines = [
        f"a = {a['run_id']} ({a.get('status')})",
        f"b = {b['run_id']} ({b.get('status')})",
        header, "-" * len(header),
    ]

    def fmt(v: Any) -> str:
        return "-" if v is None else f"{v:.4g}"

    for row in comparison["rows"]:
        ratio = "-" if row["ratio"] is None else f"{row['ratio']:.3f}"
        lines.append(f"{row['metric']:<44}{fmt(row['a']):>12}"
                     f"{fmt(row['b']):>12}{fmt(row['delta']):>12}"
                     f"{ratio:>8}")
    if not comparison["rows"]:
        lines.append("(no bench metrics recorded for either run)")
    return "\n".join(lines)


def format_attempt_chain(manifest: dict[str, Any]) -> str:
    """Render a supervised run's attempt chain as a table.

    Empty string when the run was not supervised (no ``attempts`` key),
    so callers can unconditionally append the result.
    """
    chain = manifest.get("attempts") or []
    if not chain:
        return ""
    header = (f"{'#':>2} {'tier':>4} {'engine':<14}{'ranks':>6} "
              f"{'dist':<8}{'backoff':>9}  verdict")
    lines = ["attempt chain:", header, "-" * len(header)]
    for att in chain:
        backoff = att.get("backoff_s")
        backoff_s = "-" if backoff in (None, 0, 0.0) else f"{backoff:.2f}s"
        verdict = att.get("verdict", "?")
        detail = att.get("detail")
        if detail:
            verdict = f"{verdict}: {detail}"
        lines.append(
            f"{att.get('attempt', '?'):>2} {att.get('tier', '?'):>4} "
            f"{str(att.get('engine', '-')):<14}{str(att.get('ranks', '-')):>6} "
            f"{str(att.get('dist', '-')):<8}{backoff_s:>9}  {verdict}"
        )
    return "\n".join(lines)
