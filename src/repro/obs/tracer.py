"""Low-overhead span tracing for live distributed runs.

A :class:`Span` is one timed region on one rank: a communicator
collective, a kernel batch, a search phase, or a recovery step.  Spans
are recorded into a process-local ring buffer (bounded memory, oldest
spans dropped first) and exported after the run by :mod:`repro.obs.export`.

Timestamps come from :func:`time.perf_counter_ns`, which reads
``CLOCK_MONOTONIC`` — a *system-wide* clock on Linux, so spans recorded
by forked ranks of one :func:`repro.par.mpcomm.run_mpi` mesh share a
timebase and can be merged into a single cross-rank timeline without any
clock synchronization.

When tracing is off the engines use :data:`NULL_TRACER`, whose
``span()`` hands back one shared no-op context manager — no allocation,
no timestamp read, no branch in the buffer — so the hot path costs
essentially nothing.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]

#: Default ring-buffer capacity (spans per rank).
DEFAULT_CAPACITY = 65536

#: Span kinds (the ``tid`` axis of the Chrome-trace export).
KIND_COMM = "comm"
KIND_KERNEL = "kernel"
KIND_SEARCH = "search"
KIND_RECOVERY = "recovery"


@dataclass
class Span:
    """One timed (or instantaneous) event on one rank.

    ``t1_ns < 0`` marks a span that is still open; committed spans always
    have ``t1_ns >= t0_ns``.  ``error`` is set when the span was closed by
    an exception unwinding through it (e.g. a
    :class:`~repro.errors.RankFailureError` aborting a collective).
    """

    name: str
    kind: str
    rank: int
    t0_ns: int
    t1_ns: int = -1
    category: str = ""
    nbytes: int = 0
    error: bool = False
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return max(0, self.t1_ns - self.t0_ns)

    @property
    def is_instant(self) -> bool:
        return self.t1_ns == self.t0_ns


class _SpanContext:
    """Context manager that times one span and commits it on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.t1_ns = time.perf_counter_ns()
        if exc_type is not None:
            span.error = True
        self._tracer._commit(span)
        return False  # never swallow exceptions


class Tracer:
    """Process-local span recorder with a bounded ring buffer.

    ``trace_id`` (optional) tags the stream with an end-to-end lifecycle
    identity minted by whoever started the run — e.g. the serve daemon
    at HTTP submission time (see :mod:`repro.obs.context`).  The
    exporter stamps it onto every flushed record so daemon-side service
    spans and rank-side spans of one job merge under a single id.
    """

    enabled = True

    def __init__(self, rank: int = 0, capacity: int = DEFAULT_CAPACITY,
                 trace_id: str = "") -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.rank = rank
        self.capacity = capacity
        self.trace_id = trace_id
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.dropped = 0

    def _commit(self, span: Span) -> None:
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)

    def span(
        self,
        name: str,
        kind: str = KIND_SEARCH,
        category: str = "",
        nbytes: int = 0,
        **attrs: Any,
    ) -> _SpanContext:
        """Open a timed span; use as ``with tracer.span(...) as s:``.

        The span is committed (with its end timestamp, and ``error=True``
        if an exception unwound through it) when the ``with`` block exits.
        """
        return _SpanContext(
            self,
            Span(
                name=name,
                kind=kind,
                rank=self.rank,
                t0_ns=time.perf_counter_ns(),
                category=category,
                nbytes=nbytes,
                attrs=attrs,
            ),
        )

    def instant(
        self,
        name: str,
        kind: str = KIND_RECOVERY,
        category: str = "",
        **attrs: Any,
    ) -> None:
        """Record a zero-duration marker event (e.g. ``rank_failure``)."""
        now = time.perf_counter_ns()
        self._commit(
            Span(
                name=name,
                kind=kind,
                rank=self.rank,
                t0_ns=now,
                t1_ns=now,
                category=category,
                attrs=attrs,
            )
        )

    def spans(self) -> list[Span]:
        """Committed spans, oldest first."""
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)


class _NullContext:
    """Shared no-op context manager handed out by :class:`NullTracer`."""

    __slots__ = ()
    span = None

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Tracing disabled: every call is a no-op.

    ``span()`` returns one shared context manager instance, so entering a
    disabled span performs no allocation and reads no clock — the engines
    can keep their instrumentation unconditional.
    """

    enabled = False
    rank = -1
    dropped = 0
    trace_id = ""

    def span(self, name: str, kind: str = "", category: str = "",
             nbytes: int = 0, **attrs: Any) -> _NullContext:
        return _NULL_CONTEXT

    def instant(self, name: str, kind: str = "", category: str = "",
                **attrs: Any) -> None:
        return None

    def spans(self) -> list[Span]:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: The shared disabled tracer.
NULL_TRACER = NullTracer()
