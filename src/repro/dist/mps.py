"""Monolithic per-partition scheduling (the ``-Q`` option).

Assigning whole partitions to processors so that the per-processor load is
balanced is the NP-hard *multiprocessor scheduling problem* (paper,
Section II, citing Zhang & Stamatakis 2011).  We provide the classic LPT
(Longest Processing Time first) heuristic — 4/3-approximate — plus an
optional local-search refinement that moves/swaps partitions while the
makespan improves.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DistributionError

__all__ = ["lpt_schedule", "refine_schedule", "schedule_makespan"]


def lpt_schedule(loads: np.ndarray, n_ranks: int) -> np.ndarray:
    """LPT assignment: returns ``assignment[i] = rank`` per partition.

    Ties (equal loads, equal rank fill) break deterministically by index so
    every replica computes the same schedule.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.ndim != 1 or loads.size == 0:
        raise DistributionError("loads must be a non-empty vector")
    if np.any(loads < 0):
        raise DistributionError("loads must be non-negative")
    if n_ranks < 1:
        raise DistributionError("need at least one rank")
    order = np.argsort(-loads, kind="stable")
    assignment = np.empty(loads.size, dtype=np.intp)
    rank_load = np.zeros(n_ranks)
    for i in order:
        r = int(np.argmin(rank_load))  # argmin breaks ties toward rank 0
        assignment[i] = r
        rank_load[r] += loads[i]
    return assignment


def schedule_makespan(loads: np.ndarray, assignment: np.ndarray, n_ranks: int) -> float:
    """Maximum per-rank load under an assignment."""
    loads = np.asarray(loads, dtype=np.float64)
    per_rank = np.bincount(assignment, weights=loads, minlength=n_ranks)
    return float(per_rank.max())


def refine_schedule(
    loads: np.ndarray, assignment: np.ndarray, n_ranks: int, max_moves: int = 1000
) -> np.ndarray:
    """Greedy single-move refinement of a schedule.

    Repeatedly moves one partition from the most-loaded rank to the
    least-loaded rank while that strictly shrinks the makespan.
    """
    loads = np.asarray(loads, dtype=np.float64)
    assignment = np.asarray(assignment, dtype=np.intp).copy()
    per_rank = np.bincount(assignment, weights=loads, minlength=n_ranks)
    for _ in range(max_moves):
        hi = int(np.argmax(per_rank))
        lo = int(np.argmin(per_rank))
        if hi == lo:
            break
        candidates = np.nonzero(assignment == hi)[0]
        if candidates.size == 0:
            break
        best_i = -1
        best_new_max = per_rank[hi]
        for i in candidates:
            new_hi = per_rank[hi] - loads[i]
            new_lo = per_rank[lo] + loads[i]
            new_max = max(new_hi, new_lo)
            if new_max < best_new_max:
                best_new_max = new_max
                best_i = int(i)
        if best_i < 0:
            break
        assignment[best_i] = lo
        per_rank[hi] -= loads[best_i]
        per_rank[lo] += loads[best_i]
    return assignment
