"""Data distribution: how site patterns are assigned to ranks."""

from repro.dist.distributions import (
    DataDistribution,
    cyclic_distribution,
    mps_distribution,
    auto_distribution,
    split_local_data,
)
from repro.dist.mps import lpt_schedule, schedule_makespan

__all__ = [
    "DataDistribution",
    "cyclic_distribution",
    "mps_distribution",
    "auto_distribution",
    "split_local_data",
    "lpt_schedule",
    "schedule_makespan",
]
