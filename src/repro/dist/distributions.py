"""Rank ↔ site-pattern assignment.

Two strategies, exactly the two the paper's codes offer:

* **cyclic** — every partition's patterns are spread evenly over all
  ranks (fine-grained, perfectly balanced per partition, but a rank
  touches *every* partition: per-partition model work does not shrink
  with rank count, and per-partition vectors are short);
* **MPS** (``-Q``) — whole partitions are assigned monolithically to
  ranks via the LPT heuristic for the NP-hard multiprocessor-scheduling
  problem.  For ``p ≫ ranks`` this wins by up to an order of magnitude
  (paper, Section II) because each rank runs long contiguous kernels over
  few partitions.

The ``owned`` matrix (ranks × partitions, in virtual patterns) is what
the performance model replays compute against, and
:func:`split_local_data` materializes real per-rank
:class:`~repro.likelihood.partitioned.PartitionData` shares for the
genuinely distributed backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dist.mps import lpt_schedule, refine_schedule
from repro.errors import DistributionError

__all__ = [
    "DataDistribution",
    "cyclic_distribution",
    "mps_distribution",
    "auto_distribution",
    "split_local_data",
]


@dataclass(frozen=True)
class DataDistribution:
    """An assignment of (virtual) patterns to ranks.

    Attributes
    ----------
    kind:
        ``"cyclic"`` or ``"mps"``.
    owned:
        ``(n_ranks, n_partitions)`` virtual pattern counts.
    assignment:
        For MPS: ``(n_partitions,)`` owning rank per partition, else ``None``.
    """

    kind: str
    owned: np.ndarray
    assignment: np.ndarray | None = None

    @property
    def n_ranks(self) -> int:
        return int(self.owned.shape[0])

    @property
    def n_partitions(self) -> int:
        return int(self.owned.shape[1])

    def max_rank_patterns(self) -> float:
        return float(self.owned.sum(axis=1).max())

    def balance(self) -> float:
        """Mean rank load over max rank load (1.0 = perfect)."""
        per_rank = self.owned.sum(axis=1)
        mx = per_rank.max()
        return float(per_rank.mean() / mx) if mx > 0 else 1.0


def cyclic_distribution(cost_patterns: np.ndarray, n_ranks: int) -> DataDistribution:
    """Spread every partition's patterns round-robin over all ranks."""
    cost_patterns = np.asarray(cost_patterns, dtype=np.float64)
    if n_ranks < 1:
        raise DistributionError("need at least one rank")
    if np.any(cost_patterns <= 0):
        raise DistributionError("partitions must have positive pattern counts")
    owned = np.empty((n_ranks, cost_patterns.size))
    for j, total in enumerate(cost_patterns):
        base = np.floor(total / n_ranks)
        rem = total - base * n_ranks
        col = np.full(n_ranks, base)
        # distribute the remainder one (virtual) pattern at a time
        extra = int(np.floor(rem))
        col[:extra] += 1.0
        col[extra] += rem - extra
        owned[:, j] = col
    return DataDistribution(kind="cyclic", owned=owned)


def mps_distribution(
    cost_patterns: np.ndarray, n_ranks: int, refine: bool = True
) -> DataDistribution:
    """Assign whole partitions to ranks (LPT + optional refinement)."""
    cost_patterns = np.asarray(cost_patterns, dtype=np.float64)
    if cost_patterns.size < n_ranks:
        raise DistributionError(
            f"MPS needs at least as many partitions ({cost_patterns.size}) "
            f"as ranks ({n_ranks}); use cyclic distribution instead"
        )
    assignment = lpt_schedule(cost_patterns, n_ranks)
    if refine:
        assignment = refine_schedule(cost_patterns, assignment, n_ranks)
    owned = np.zeros((n_ranks, cost_patterns.size))
    owned[assignment, np.arange(cost_patterns.size)] = cost_patterns
    return DataDistribution(kind="mps", owned=owned, assignment=assignment)


def auto_distribution(
    cost_patterns: np.ndarray, n_ranks: int, use_mps: bool | None = None
) -> DataDistribution:
    """Pick MPS when requested (or when clearly beneficial), else cyclic.

    Mirrors the papers' practice: the ``-Q`` switch was enabled for the
    ≥500-partition runs, i.e. when partitions substantially outnumber
    ranks.
    """
    cost_patterns = np.asarray(cost_patterns, dtype=np.float64)
    if use_mps is None:
        use_mps = cost_patterns.size >= 2 * n_ranks
    if use_mps:
        return mps_distribution(cost_patterns, n_ranks)
    return cyclic_distribution(cost_patterns, n_ranks)


def split_local_data(parts, rank: int, n_ranks: int, kind: str = "cyclic"):
    """Materialize one rank's real data share from full partition data.

    Cyclic: pattern ``i`` of each partition goes to rank ``i % n_ranks``
    (a rank may end up with zero patterns of some partition — it then
    contributes 0 to that partition's reductions, handled by keeping at
    least one pattern with ~zero weight).

    MPS: whole partitions per rank; ranks keep a 1-pattern epsilon stub
    for partitions they do not own so every rank's per-partition vectors
    align for the collectives.
    """
    out = []
    if kind == "cyclic":
        for part in parts:
            idx = np.arange(rank, part.n_patterns, n_ranks, dtype=np.intp)
            local = _subset_or_stub(part, idx)
            out.append(local)
    elif kind == "mps":
        loads = np.array([p.cost_patterns for p in parts])
        assignment = lpt_schedule(loads, n_ranks)
        for j, part in enumerate(parts):
            if assignment[j] == rank:
                out.append(part.subset(np.arange(part.n_patterns)))
            else:
                out.append(_subset_or_stub(part, np.array([], dtype=np.intp)))
    else:
        raise DistributionError(f"unknown distribution kind {kind!r}")
    return out


def _subset_or_stub(part, idx: np.ndarray):
    """Subset a partition; an empty selection becomes a weight-ε stub so
    per-partition vector shapes stay aligned across ranks."""
    if idx.size > 0:
        return part.subset(idx)
    stub = part.subset(np.array([0], dtype=np.intp))
    stub.weights = np.array([1.0e-12])
    return stub
