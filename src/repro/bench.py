"""Benchmark harness support: recorded runs and paper-artifact synthesis.

Every figure/table benchmark follows the same recipe:

1. generate the paper's workload (:mod:`repro.datasets`);
2. run the *real* search once under the instrumented backend, producing
   the engine-neutral region stream (both engines execute the identical
   algorithm, so one recording serves both — the paper's premise);
3. synthesize per-engine runtimes / byte breakdowns for the machine
   configurations the paper reports.

Recordings are cached per-process because several benchmarks share
workloads.  Set ``REPRO_BENCH_FULL=1`` for longer searches (more SPR
rounds and larger per-partition samples); defaults are sized so the whole
benchmark suite completes in minutes on a laptop while preserving the
region-stream *structure* the results depend on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.datasets import (
    PaperWorkload,
    large_unpartitioned_workload,
    partitioned_workload,
)
from repro.dist.distributions import DataDistribution, auto_distribution
from repro.engines.decentral import DecentralizedCommModel
from repro.engines.events import EventLog
from repro.engines.forkjoin import ForkJoinCommModel
from repro.engines.recording import RecordingBackend
from repro.likelihood.uniform import UniformPartitionedLikelihood
from repro.par.machine import HITS_CLUSTER, MachineSpec
from repro.perf.costmodel import WorkloadMeta
from repro.perf.runtime_sim import RuntimeReport, simulate_runtime
from repro.search.search import SearchConfig, SearchResult, hill_climb

__all__ = [
    "FULL",
    "RecordedRun",
    "record_partitioned",
    "record_large_unpartitioned",
    "engine_pair",
    "EXAML",
    "RAXML_LIGHT",
]

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

EXAML = DecentralizedCommModel()
RAXML_LIGHT = ForkJoinCommModel()

_CACHE: dict[tuple, "RecordedRun"] = {}


@dataclass
class RecordedRun:
    """One instrumented search: workload + region stream + outcome."""

    workload: PaperWorkload
    log: EventLog
    meta: WorkloadMeta
    result: SearchResult
    rate_mode: str
    per_partition_branches: bool

    def distribution(self, n_ranks: int, use_mps: bool | None = None) -> DataDistribution:
        return auto_distribution(self.meta.cost_patterns, n_ranks, use_mps)

    def runtime(
        self,
        comm_model,
        n_ranks: int,
        machine: MachineSpec = HITS_CLUSTER,
        use_mps: bool | None = None,
    ) -> RuntimeReport:
        dist = self.distribution(n_ranks, use_mps)
        return simulate_runtime(self.log, comm_model, self.meta, machine, dist)


def _search_config(rate_mode: str) -> SearchConfig:
    if FULL:
        return SearchConfig(
            max_iterations=4,
            radius_max=4,
            alpha_iterations=16,
            psr_candidates=12,
        )
    return SearchConfig(
        max_iterations=2,
        radius_max=2,
        alpha_iterations=10,
        psr_candidates=8,
        lazy_newton_iters=6,
    )


def record_partitioned(
    n_partitions: int,
    rate_mode: str,
    per_partition_branches: bool = False,
) -> RecordedRun:
    """Instrumented search on one of the Figure 4 / Table I datasets."""
    key = ("part", n_partitions, rate_mode, per_partition_branches, FULL)
    if key in _CACHE:
        return _CACHE[key]
    sites = 40 if FULL else 24
    workload = partitioned_workload(n_partitions, sites_per_partition=sites)
    tree = workload.tree.copy()
    lik = UniformPartitionedLikelihood.build_uniform(
        workload.alignment,
        tree,
        scheme=workload.scheme,
        rate_mode=rate_mode,
        per_partition_branches=per_partition_branches,
        pattern_scale=workload.pattern_scale,
    )
    backend = RecordingBackend(lik)
    result = hill_climb(backend, _search_config(rate_mode))
    run = RecordedRun(
        workload=workload,
        log=backend.log,
        meta=WorkloadMeta.from_likelihood(lik),
        result=result,
        rate_mode=rate_mode,
        per_partition_branches=per_partition_branches,
    )
    _CACHE[key] = run
    return run


def record_large_unpartitioned(rate_mode: str) -> RecordedRun:
    """Instrumented search on the Figure 3 dataset (150 × 20M bp virtual)."""
    key = ("large", rate_mode, FULL)
    if key in _CACHE:
        return _CACHE[key]
    workload = large_unpartitioned_workload(
        real_sites=800 if FULL else 400
    )
    tree = workload.tree.copy()
    lik = UniformPartitionedLikelihood.build_uniform(
        workload.alignment,
        tree,
        scheme=workload.scheme,
        rate_mode=rate_mode,
        pattern_scale=workload.pattern_scale,
    )
    backend = RecordingBackend(lik)
    config = SearchConfig(
        max_iterations=2 if FULL else 1,
        radius_max=2,
        alpha_iterations=10,
        psr_candidates=8,
        lazy_newton_iters=6,
    )
    result = hill_climb(backend, config)
    run = RecordedRun(
        workload=workload,
        log=backend.log,
        meta=WorkloadMeta.from_likelihood(lik),
        result=result,
        rate_mode=rate_mode,
        per_partition_branches=False,
    )
    _CACHE[key] = run
    return run


def engine_pair(
    run: RecordedRun,
    n_ranks: int,
    machine: MachineSpec = HITS_CLUSTER,
    use_mps: bool | None = None,
) -> tuple[RuntimeReport, RuntimeReport]:
    """(ExaML report, RAxML-Light report) for one configuration."""
    examl = run.runtime(EXAML, n_ranks, machine, use_mps)
    light = run.runtime(RAXML_LIGHT, n_ranks, machine, use_mps)
    return examl, light
