"""Newick tree parsing and writing.

The parser accepts standard Newick with branch lengths, inner labels
(ignored), quoted labels and bracket comments.  Rooted inputs (a degree-2
root) are automatically *unrooted* by merging the root's two child edges,
since the likelihood code operates on unrooted trees.

The writer produces a deterministic representation rooted at an arbitrary
inner node, with children ordered by the smallest taxon label in their
subtree so that topologically identical trees serialize identically — a
property the decentralized engine's consistency tests rely on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NewickError
from repro.tree.topology import Node, Tree

__all__ = ["parse_newick", "write_newick"]


class _Lexer:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def _skip_ws_and_comments(self) -> None:
        while self.pos < len(self.text):
            c = self.text[self.pos]
            if c.isspace():
                self.pos += 1
            elif c == "[":
                end = self.text.find("]", self.pos)
                if end == -1:
                    raise NewickError("unterminated [comment]")
                self.pos = end + 1
            else:
                return

    def peek(self) -> str:
        self._skip_ws_and_comments()
        if self.pos >= len(self.text):
            raise NewickError("unexpected end of Newick input")
        return self.text[self.pos]

    def take(self) -> str:
        c = self.peek()
        self.pos += 1
        return c

    def expect(self, c: str) -> None:
        got = self.take()
        if got != c:
            raise NewickError(f"expected {c!r} at position {self.pos - 1}, got {got!r}")

    def label(self) -> str:
        self._skip_ws_and_comments()
        if self.pos < len(self.text) and self.text[self.pos] == "'":
            end = self.pos + 1
            out = []
            while True:
                nxt = self.text.find("'", end)
                if nxt == -1:
                    raise NewickError("unterminated quoted label")
                if nxt + 1 < len(self.text) and self.text[nxt + 1] == "'":
                    out.append(self.text[end : nxt + 1])
                    end = nxt + 2
                else:
                    out.append(self.text[end:nxt])
                    self.pos = nxt + 1
                    return "".join(out)
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in "(),:;[":
            self.pos += 1
        return self.text[start : self.pos].strip()

    def number(self) -> float:
        self._skip_ws_and_comments()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isdigit() or self.text[self.pos] in "+-.eE"
        ):
            self.pos += 1
        token = self.text[start : self.pos]
        try:
            return float(token)
        except ValueError as exc:
            raise NewickError(f"bad branch length {token!r}") from exc


def parse_newick(text: str, n_branch_sets: int = 1) -> Tree:
    """Parse a Newick string into an unrooted :class:`Tree`.

    Branch lengths default to :attr:`Tree.DEFAULT_LENGTH` when omitted; a
    scalar input length is replicated across all ``n_branch_sets``.
    """
    tree = Tree(n_branch_sets)
    lex = _Lexer(text)

    def parse_clade(parent: Node | None) -> tuple[Node, float | None]:
        if lex.peek() == "(":
            lex.expect("(")
            node = tree.add_node()
            children: list[tuple[Node, float | None]] = [parse_clade(node)]
            while lex.peek() == ",":
                lex.take()
                children.append(parse_clade(node))
            lex.expect(")")
            lex.label()  # inner label / support value: parsed, ignored
            for child, length in children:
                tree.connect(node, child, length)
        else:
            label = lex.label()
            if not label:
                raise NewickError(f"empty leaf label near position {lex.pos}")
            node = tree.add_node(label=label)
        length: float | None = None
        lex._skip_ws_and_comments()
        if lex.pos < len(lex.text) and lex.text[lex.pos] == ":":
            lex.take()
            length = lex.number()
            if length < 0:
                raise NewickError("negative branch length")
        return node, length

    root, root_len = parse_clade(None)
    lex._skip_ws_and_comments()
    if lex.pos >= len(lex.text) or lex.text[lex.pos] != ";":
        raise NewickError("missing terminating ';'")
    if root_len is not None:
        raise NewickError("branch length on the root clade")

    if root.is_leaf:
        raise NewickError("tree must contain at least one clade")
    # Unroot: a rooted tree yields a degree-2 top node; merge its edges.
    if root.degree == 2:
        tree.contract_node(root)

    labels = [n.label for n in tree.leaves()]
    if len(labels) != len(set(labels)):
        raise NewickError("duplicate taxon labels")
    tree.validate()
    return tree


def _subtree_min_label(tree: Tree, node: Node, parent: Node) -> str:
    if node.is_leaf:
        return node.label  # type: ignore[return-value]
    return min(
        _subtree_min_label(tree, child, node)
        for child in tree.other_neighbors(node, parent)
    )


def _format_length(length: np.ndarray, branch_set: int, digits: int) -> str:
    return f"{float(length[branch_set]):.{digits}f}"


def write_newick(
    tree: Tree,
    lengths: bool = True,
    branch_set: int = 0,
    digits: int = 8,
) -> str:
    """Serialize a tree to canonical Newick.

    For trees with several branch-length sets, ``branch_set`` selects which
    set is written (per-partition mode has no single Newick representation).
    """
    tree.validate()

    # Root the output at the inner node adjacent to the alphabetically
    # smallest taxon, making the string canonical for a given topology.
    anchor = min(tree.leaves(), key=lambda n: n.label)  # type: ignore[arg-type]
    root = anchor.neighbors[0]

    def render(node: Node, parent: Node) -> str:
        if node.is_leaf:
            body = node.label or ""
        else:
            children = tree.other_neighbors(node, parent)
            children.sort(key=lambda c: _subtree_min_label(tree, c, node))
            body = "(" + ",".join(render(c, node) for c in children) + ")"
        if lengths:
            body += ":" + _format_length(tree.edge_length(node, parent), branch_set, digits)
        return body

    children = sorted(
        root.neighbors, key=lambda c: _subtree_min_label(tree, c, root) if not c.is_leaf else c.label  # type: ignore[arg-type]
    )
    parts = [render(c, root) for c in children]
    return "(" + ",".join(parts) + ");"
