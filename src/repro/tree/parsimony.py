"""Parsimony: Fitch scoring and randomized stepwise-addition starting trees.

RAxML (and hence RAxML-Light/ExaML production runs) start their ML
searches from *randomized maximum-parsimony* trees rather than uniformly
random topologies: stepwise addition inserts taxa in random order at the
position minimizing the Fitch parsimony score.  Such trees start hundreds
of log-likelihood units closer to the optimum, which shortens the ML
search — part of the system, not an optimization nicety.

The Fitch pass is fully vectorized over sites using the same bit-mask
state encoding the likelihood kernels use: intersection = ``AND``,
union = ``OR``, and a site's score increments where the intersection is
empty.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TreeError
from repro.rng import ensure_rng
from repro.seq.alignment import PatternAlignment
from repro.tree.topology import Node, Tree

__all__ = ["fitch_score", "parsimony_tree"]


def _fitch_up(tree: Tree, node: Node, parent: Node, masks, weights) -> tuple[np.ndarray, float]:
    """Post-order Fitch: returns (state-set masks, weighted score) of the
    subtree hanging off ``node``."""
    if node.is_leaf:
        return masks[node.label], 0.0
    children = tree.other_neighbors(node, parent)
    sets = []
    score = 0.0
    for child in children:
        s, sc = _fitch_up(tree, child, node, masks, weights)
        sets.append(s)
        score += sc
    acc = sets[0]
    for s in sets[1:]:
        inter = acc & s
        empty = inter == 0
        score += float(weights[empty].sum())
        acc = np.where(empty, acc | s, inter)
    return acc, score


def fitch_score(tree: Tree, patterns: PatternAlignment) -> float:
    """Weighted Fitch parsimony score of ``tree`` on compressed patterns."""
    tree.validate()
    masks = {
        taxon: patterns.patterns[row]
        for row, taxon in enumerate(patterns.taxa)
    }
    for leaf in tree.leaves():
        if leaf.label not in masks:
            raise TreeError(f"taxon {leaf.label!r} missing from alignment")
    root = tree.inner_nodes()[0]
    children = root.neighbors
    sets = []
    score = 0.0
    for child in children:
        s, sc = _fitch_up(tree, child, root, masks, patterns.weights)
        sets.append(s)
        score += sc
    acc = sets[0]
    for s in sets[1:]:
        inter = acc & s
        empty = inter == 0
        score += float(patterns.weights[empty].sum())
        acc = np.where(empty, acc | s, inter)
    return score


def parsimony_tree(
    patterns: PatternAlignment,
    rng: np.random.Generator | int | None = None,
    default_length: float = 0.1,
    n_branch_sets: int = 1,
) -> Tree:
    """Randomized stepwise-addition maximum-parsimony starting tree.

    Taxa are inserted in random order; each insertion point is the edge
    minimizing the resulting Fitch score (ties broken deterministically
    by edge id, so a seed fully determines the tree — a requirement for
    the decentralized engine, whose replicas must build identical
    starting trees).
    """
    taxa = list(patterns.taxa)
    if len(taxa) < 3:
        raise TreeError("need at least 3 taxa")
    rng = ensure_rng(rng)
    order = [taxa[i] for i in rng.permutation(len(taxa))]

    tree = Tree(n_branch_sets)
    center = tree.add_node()
    for label in order[:3]:
        tree.connect(center, tree.add_node(label), default_length)

    for label in order[3:]:
        best_key = None
        best_score = np.inf
        for u, v in tree.edges():
            w = tree.split_edge(u, v)
            leaf = tree.add_node(label)
            tree.connect(w, leaf, default_length)
            score = fitch_score(tree, patterns)
            if score < best_score:
                best_score = score
                best_key = (u.id, v.id)
            # undo
            tree.disconnect(w, leaf)
            tree.remove_node(leaf)
            tree.contract_node(w)
        assert best_key is not None
        u, v = tree.node(best_key[0]), tree.node(best_key[1])
        w = tree.split_edge(u, v)
        tree.connect(w, tree.add_node(label), default_length)
    tree.validate()
    return tree
