"""Post-order traversals and traversal descriptors.

A conditional likelihood vector (CLV) belongs to a *directed* edge
``u -> v``: it summarizes the subtree that hangs off ``u`` when the edge
``{u, v}`` is cut.  Computing the likelihood at a virtual root edge
``{a, b}`` requires ``clv(a -> b)`` and ``clv(b -> a)``, each of which
recursively requires the CLVs of the child edges behind it.

The *traversal descriptor* is the flat, ordered list of CLV update
operations that the fork-join scheme (RAxML-Light) must broadcast to its
workers before every parallel region — the very data structure whose
communication cost the paper eliminates (Table I attributes 30–97% of all
fork-join bytes to it).  Its serialized size is modeled by
:meth:`TraversalDescriptor.nbytes`, mirroring the on-wire layout described
in the RAxML-Light supplement: per operation three node indices plus the
two child branch-length vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TreeError
from repro.tree.topology import Node, Tree

__all__ = [
    "TraversalOp",
    "TraversalDescriptor",
    "traversal_for_edge",
    "full_traversal",
    "directed_clv_keys",
]


@dataclass(frozen=True)
class TraversalOp:
    """One CLV update: compute ``clv(node -> toward)`` from the two child
    edges ``(child_a -> node)`` and ``(child_b -> node)``."""

    node: int
    toward: int
    child_a: int
    child_b: int


@dataclass
class TraversalDescriptor:
    """An ordered batch of CLV updates plus the byte-size model.

    ``ops`` are dependency-ordered: children precede parents.
    """

    ops: list[TraversalOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def nbytes(self, n_branch_sets: int = 1) -> int:
        """Serialized size of the descriptor when broadcast by fork-join.

        Per operation: 4 × int32 node indices + 2 child branch-length
        vectors of ``n_branch_sets`` doubles, plus an int32 op count.
        """
        per_op = 4 * 4 + 2 * 8 * n_branch_sets
        return 4 + per_op * len(self.ops)


def directed_clv_keys(tree: Tree) -> list[tuple[int, int]]:
    """All directed edges ``u -> v`` with inner ``u`` (CLVs that can exist)."""
    keys = []
    for u, v in tree.iter_directed_edges():
        if not u.is_leaf:
            keys.append((u.id, v.id))
    return keys


def _collect(
    tree: Tree,
    node: Node,
    toward: Node,
    is_valid,
    ops: list[TraversalOp],
    on_stack: set[tuple[int, int]],
) -> None:
    """Append the ops needed to make ``clv(node -> toward)`` valid."""
    if node.is_leaf:
        return
    key = (node.id, toward.id)
    if is_valid(key):
        return
    if key in on_stack:  # pragma: no cover - cycle guard
        raise TreeError(f"traversal cycle at clv{key}")
    on_stack.add(key)
    children = tree.other_neighbors(node, toward)
    if len(children) != 2:
        raise TreeError(
            f"inner node {node.id} has {len(children) + 1} neighbors; "
            "tree is not binary"
        )
    a, b = children
    _collect(tree, a, node, is_valid, ops, on_stack)
    _collect(tree, b, node, is_valid, ops, on_stack)
    ops.append(TraversalOp(node=node.id, toward=toward.id, child_a=a.id, child_b=b.id))
    on_stack.discard(key)


def traversal_for_edge(
    tree: Tree,
    u: Node,
    v: Node,
    is_valid=lambda key: False,
) -> TraversalDescriptor:
    """Descriptor of CLV updates required to evaluate at edge ``{u, v}``.

    ``is_valid(key)`` reports whether ``clv(key[0] -> key[1])`` is already
    up to date; valid subtrees are skipped, which is how the incremental
    search re-uses work after local tree changes (and why real runs have
    short average descriptors: the paper cites 4–5 ops).
    """
    if not tree.has_edge(u, v):
        raise TreeError(f"cannot evaluate at missing edge ({u.id},{v.id})")
    ops: list[TraversalOp] = []
    _collect(tree, u, v, is_valid, ops, set())
    _collect(tree, v, u, is_valid, ops, set())
    return TraversalDescriptor(ops)


def full_traversal(tree: Tree, u: Node, v: Node) -> TraversalDescriptor:
    """A complete post-order traversal toward edge ``{u, v}`` (all CLVs)."""
    return traversal_for_edge(tree, u, v, is_valid=lambda key: False)
