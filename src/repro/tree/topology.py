"""Unrooted binary phylogenetic trees.

The likelihood machinery works on *unrooted* trees: every leaf has degree 1,
every inner node degree 3, and the likelihood is evaluated at a *virtual
root* placed on an arbitrary edge (Felsenstein's pulley principle makes the
choice irrelevant under reversible models).

Branch lengths are stored per edge as small NumPy arrays of shape
``(n_branch_sets,)``: ``n_branch_sets == 1`` for the default joint
branch-length estimate, or ``n_branch_sets == p`` for the paper's
per-partition branch-length mode (the ``-M`` option), where each partition
carries its own length for every branch.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import TreeError

__all__ = ["Node", "Tree", "edge_key"]


def edge_key(u: "Node", v: "Node") -> tuple[int, int]:
    """Canonical dictionary key for the undirected edge ``{u, v}``."""
    return (u.id, v.id) if u.id < v.id else (v.id, u.id)


class Node:
    """A tree node.

    Attributes
    ----------
    id:
        Stable integer identity, unique within its tree; survives
        rearrangements (SPR moves never renumber nodes).
    label:
        Taxon name for leaves, ``None`` for inner nodes.
    neighbors:
        Adjacent nodes.  Order is an implementation detail; traversal code
        sorts where determinism matters.
    """

    __slots__ = ("id", "label", "neighbors")

    def __init__(self, node_id: int, label: str | None = None) -> None:
        self.id = node_id
        self.label = label
        self.neighbors: list[Node] = []

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    @property
    def is_leaf(self) -> bool:
        return self.label is not None

    def __repr__(self) -> str:
        tag = self.label if self.label is not None else f"inner{self.id}"
        return f"Node({self.id}, {tag}, deg={self.degree})"


class Tree:
    """A mutable unrooted tree with per-edge branch-length vectors.

    Parameters
    ----------
    n_branch_sets:
        Number of independent branch-length sets per edge: 1 for joint
        branch lengths, the partition count for per-partition mode.
    """

    DEFAULT_LENGTH = 0.1

    def __init__(self, n_branch_sets: int = 1) -> None:
        if n_branch_sets < 1:
            raise TreeError("n_branch_sets must be >= 1")
        self.n_branch_sets = int(n_branch_sets)
        self._nodes: dict[int, Node] = {}
        self._lengths: dict[tuple[int, int], np.ndarray] = {}
        self._next_id = 0
        # Version stamps let CLV caches detect stale entries cheaply: every
        # structural change bumps ``topology_version``; every length change
        # bumps the edge's own stamp.
        self._version_counter = 0
        self._edge_versions: dict[tuple[int, int], int] = {}
        self.topology_version = 0

    def _next_version(self) -> int:
        self._version_counter += 1
        return self._version_counter

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, label: str | None = None) -> Node:
        """Create a new, initially disconnected node."""
        node = Node(self._next_id, label)
        self._nodes[node.id] = node
        self._next_id += 1
        return node

    def connect(self, u: Node, v: Node, length: float | np.ndarray | None = None) -> None:
        """Add the edge ``{u, v}`` with the given branch length(s)."""
        if u is v:
            raise TreeError("self-loops are not allowed")
        key = edge_key(u, v)
        if key in self._lengths:
            raise TreeError(f"edge {key} already exists")
        u.neighbors.append(v)
        v.neighbors.append(u)
        self._lengths[key] = self._coerce_length(length)
        self._edge_versions[key] = self._next_version()
        self.topology_version = self._next_version()

    def disconnect(self, u: Node, v: Node) -> np.ndarray:
        """Remove the edge ``{u, v}``; returns its branch-length vector."""
        key = edge_key(u, v)
        try:
            length = self._lengths.pop(key)
        except KeyError as exc:
            raise TreeError(f"no edge {key}") from exc
        u.neighbors.remove(v)
        v.neighbors.remove(u)
        self._edge_versions.pop(key, None)
        self.topology_version = self._next_version()
        return length

    def _coerce_length(self, length: float | np.ndarray | None) -> np.ndarray:
        if length is None:
            out = np.full(self.n_branch_sets, self.DEFAULT_LENGTH)
        else:
            out = np.asarray(length, dtype=np.float64)
            if out.ndim == 0:
                out = np.full(self.n_branch_sets, float(out))
            elif out.shape != (self.n_branch_sets,):
                raise TreeError(
                    f"branch-length vector shape {out.shape} != ({self.n_branch_sets},)"
                )
            else:
                out = out.copy()
        if np.any(out < 0):
            raise TreeError("branch lengths must be non-negative")
        return out

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise TreeError(f"no node {node_id}") from exc

    @property
    def nodes(self) -> list[Node]:
        """All nodes, ordered by id (deterministic)."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def leaves(self) -> list[Node]:
        return [n for n in self.nodes if n.is_leaf]

    def inner_nodes(self) -> list[Node]:
        return [n for n in self.nodes if not n.is_leaf]

    @property
    def n_taxa(self) -> int:
        return sum(1 for n in self._nodes.values() if n.is_leaf)

    def edges(self) -> list[tuple[Node, Node]]:
        """All edges as ``(u, v)`` with ``u.id < v.id``, sorted (deterministic)."""
        return [
            (self._nodes[a], self._nodes[b]) for a, b in sorted(self._lengths)
        ]

    @property
    def n_edges(self) -> int:
        return len(self._lengths)

    def has_edge(self, u: Node, v: Node) -> bool:
        return edge_key(u, v) in self._lengths

    def edge_length(self, u: Node, v: Node) -> np.ndarray:
        """Branch-length vector of edge ``{u, v}`` (a live view; copy to keep)."""
        try:
            return self._lengths[edge_key(u, v)]
        except KeyError as exc:
            raise TreeError(f"no edge between {u.id} and {v.id}") from exc

    def set_edge_length(self, u: Node, v: Node, length: float | np.ndarray) -> None:
        key = edge_key(u, v)
        if key not in self._lengths:
            raise TreeError(f"no edge between {u.id} and {v.id}")
        self._lengths[key] = self._coerce_length(length)
        self._edge_versions[key] = self._next_version()

    def edge_version(self, u: Node, v: Node) -> int:
        """Monotone stamp of the edge's current length (and existence)."""
        try:
            return self._edge_versions[edge_key(u, v)]
        except KeyError as exc:
            raise TreeError(f"no edge between {u.id} and {v.id}") from exc

    def other_neighbors(self, u: Node, exclude: Node) -> list[Node]:
        """Neighbors of ``u`` except ``exclude``, sorted by id."""
        out = [n for n in u.neighbors if n is not exclude]
        out.sort(key=lambda n: n.id)
        return out

    def taxon_labels(self) -> list[str]:
        """Leaf labels sorted alphabetically."""
        return sorted(n.label for n in self.leaves())  # type: ignore[arg-type]

    def find_leaf(self, label: str) -> Node:
        for n in self.nodes:
            if n.label == label:
                return n
        raise TreeError(f"no leaf labelled {label!r}")

    def total_length(self) -> np.ndarray:
        """Sum of branch lengths per branch set."""
        if not self._lengths:
            return np.zeros(self.n_branch_sets)
        return np.sum(list(self._lengths.values()), axis=0)

    # ------------------------------------------------------------------ #
    # structural edits used by rearrangements
    # ------------------------------------------------------------------ #
    def split_edge(self, u: Node, v: Node) -> Node:
        """Insert a new degree-2 node ``w`` in the middle of edge ``{u, v}``.

        The old length is halved onto the two new edges.  The caller is
        expected to immediately attach a third neighbor to ``w`` (SPR
        regraft); a degree-2 node is invalid in a finished tree.
        """
        length = self.disconnect(u, v)
        w = self.add_node()
        self.connect(u, w, length / 2.0)
        self.connect(w, v, length / 2.0)
        return w

    def contract_node(self, w: Node) -> tuple[Node, Node]:
        """Remove a degree-2 node ``w``, merging its two edges (sum lengths)."""
        if w.degree != 2:
            raise TreeError(f"node {w.id} has degree {w.degree}, cannot contract")
        u, v = w.neighbors[0], w.neighbors[1]
        lu = self.disconnect(u, w)
        lv = self.disconnect(w, v)
        del self._nodes[w.id]
        self.connect(u, v, lu + lv)
        return u, v

    def remove_node(self, w: Node) -> None:
        """Delete an isolated node."""
        if w.degree != 0:
            raise TreeError(f"node {w.id} is still connected")
        del self._nodes[w.id]

    # ------------------------------------------------------------------ #
    # whole-tree operations
    # ------------------------------------------------------------------ #
    def copy(self) -> "Tree":
        """Deep copy preserving node ids and branch lengths."""
        out = Tree(self.n_branch_sets)
        out._next_id = self._next_id
        for node in self._nodes.values():
            clone = Node(node.id, node.label)
            out._nodes[node.id] = clone
        for node in self._nodes.values():
            out._nodes[node.id].neighbors = [
                out._nodes[n.id] for n in node.neighbors
            ]
        out._lengths = {k: v.copy() for k, v in self._lengths.items()}
        out._version_counter = self._version_counter
        out._edge_versions = dict(self._edge_versions)
        out.topology_version = self.topology_version
        return out

    def set_n_branch_sets(self, n: int) -> None:
        """Re-shape all branch-length vectors (replicating joint lengths)."""
        if n < 1:
            raise TreeError("n_branch_sets must be >= 1")
        for key, val in self._lengths.items():
            if val.shape[0] == n:
                continue
            if val.shape[0] == 1:
                self._lengths[key] = np.full(n, float(val[0]))
            else:
                # collapse to the mean, then replicate
                self._lengths[key] = np.full(n, float(val.mean()))
        self.n_branch_sets = n

    def validate(self) -> None:
        """Check binary unrooted invariants; raises :class:`TreeError`."""
        nodes = self.nodes
        if not nodes:
            raise TreeError("empty tree")
        for n in nodes:
            if n.is_leaf and n.degree != 1:
                raise TreeError(f"leaf {n.label!r} has degree {n.degree}")
            if not n.is_leaf and n.degree != 3:
                raise TreeError(f"inner node {n.id} has degree {n.degree}")
        n_taxa = self.n_taxa
        if n_taxa < 3:
            raise TreeError("an unrooted tree needs >= 3 taxa")
        expected_nodes = 2 * n_taxa - 2
        expected_edges = 2 * n_taxa - 3
        if len(nodes) != expected_nodes:
            raise TreeError(f"{len(nodes)} nodes, expected {expected_nodes}")
        if self.n_edges != expected_edges:
            raise TreeError(f"{self.n_edges} edges, expected {expected_edges}")
        # connectivity
        seen: set[int] = set()
        stack = [nodes[0]]
        while stack:
            cur = stack.pop()
            if cur.id in seen:
                continue
            seen.add(cur.id)
            stack.extend(cur.neighbors)
        if len(seen) != len(nodes):
            raise TreeError("tree is disconnected")
        # edge map consistency
        for u, v in self.edges():
            if v not in u.neighbors or u not in v.neighbors:
                raise TreeError(f"edge map inconsistent at ({u.id},{v.id})")

    def iter_directed_edges(self) -> Iterator[tuple[Node, Node]]:
        """Both orientations of every edge, deterministically ordered."""
        for u, v in self.edges():
            yield u, v
            yield v, u

    def __repr__(self) -> str:
        return f"Tree({self.n_taxa} taxa, {self.n_edges} edges)"
