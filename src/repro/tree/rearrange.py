"""Topological rearrangements: NNI and SPR with cheap undo.

The RAxML search algorithm that both ExaML and RAxML-Light implement is a
lazy-SPR hill climber: it prunes every candidate subtree, re-inserts it
into all branches within a *rearrangement radius* of the pruning point,
scores each insertion quickly, and keeps the best.  To make the
try/score/undo loop cheap and id-stable (the likelihood layer caches CLVs
by node id), the pruned junction node is *recycled* as the re-insertion
junction, exactly like RAxML's node-record recycling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TreeError
from repro.tree.topology import Node, Tree, edge_key

__all__ = ["SPRContext", "nni_swap", "edges_within_radius"]


def nni_swap(tree: Tree, u: Node, v: Node, variant: int) -> "callable":
    """Apply one of the two NNI rearrangements around inner edge ``{u, v}``.

    ``variant`` 0 swaps the first child of ``u`` with the first child of
    ``v``; variant 1 swaps with the second child of ``v``.  Returns a
    zero-argument undo callable.
    """
    if u.is_leaf or v.is_leaf:
        raise TreeError("NNI requires an inner edge")
    if variant not in (0, 1):
        raise TreeError("NNI variant must be 0 or 1")
    a = tree.other_neighbors(u, v)[0]
    b = tree.other_neighbors(v, u)[variant]
    la = tree.disconnect(u, a)
    lb = tree.disconnect(v, b)
    tree.connect(u, b, lb)
    tree.connect(v, a, la)

    def undo() -> None:
        tree.disconnect(u, b)
        tree.disconnect(v, a)
        tree.connect(u, a, la)
        tree.connect(v, b, lb)

    return undo


@dataclass
class _PruneState:
    x: Node
    y: Node
    lx: np.ndarray
    ly: np.ndarray


@dataclass
class _GraftState:
    e1: Node
    e2: Node
    original_length: np.ndarray


class SPRContext:
    """Prune-once / regraft-many helper for lazy SPR.

    Usage::

        ctx = SPRContext(tree, junction, subtree_root)
        for e1, e2 in candidate_edges:
            ctx.regraft(e1, e2)
            score = evaluate(...)
            ctx.undo_regraft()
        ctx.restore()            # put the subtree back where it was
        # or: ctx.regraft(best); ctx.commit()

    ``junction`` is the inner node connecting the subtree to the rest of
    the tree; ``subtree_root`` is its neighbor inside the subtree.  After
    :meth:`__init__` the junction keeps only its edge to the subtree and
    the tree proper is healed with a merged edge.
    """

    def __init__(self, tree: Tree, junction: Node, subtree_root: Node) -> None:
        if junction.is_leaf:
            raise TreeError("junction must be an inner node")
        if subtree_root not in junction.neighbors:
            raise TreeError("subtree_root must neighbor the junction")
        rest = tree.other_neighbors(junction, subtree_root)
        if len(rest) != 2:
            raise TreeError("junction must have degree 3")
        x, y = rest
        if tree.has_edge(x, y):
            # Pruning would create a parallel edge (happens only on 4-taxon
            # trees where x and y are already adjacent).
            raise TreeError("cannot prune: junction neighbors already adjacent")
        self.tree = tree
        self.junction = junction
        self.subtree_root = subtree_root
        lx = tree.disconnect(junction, x)
        ly = tree.disconnect(junction, y)
        tree.connect(x, y, lx + ly)
        self._prune = _PruneState(x=x, y=y, lx=lx, ly=ly)
        self._graft: _GraftState | None = None
        self._done = False

    @property
    def healed_edge(self) -> tuple[Node, Node]:
        """The edge created where the subtree was removed."""
        return self._prune.x, self._prune.y

    def regraft(self, e1: Node, e2: Node) -> None:
        """Insert the pruned subtree into the middle of edge ``{e1, e2}``."""
        self._check_open()
        if self._graft is not None:
            raise TreeError("already regrafted; undo first")
        if not self.tree.has_edge(e1, e2):
            raise TreeError(f"no target edge ({e1.id},{e2.id})")
        if e1 is self.junction or e2 is self.junction:
            raise TreeError("cannot regraft onto the pruned junction")
        length = self.tree.disconnect(e1, e2)
        self.tree.connect(self.junction, e1, length / 2.0)
        self.tree.connect(self.junction, e2, length / 2.0)
        self._graft = _GraftState(e1=e1, e2=e2, original_length=length)

    def undo_regraft(self) -> None:
        """Remove the subtree from its trial position."""
        self._check_open()
        if self._graft is None:
            raise TreeError("nothing to undo")
        g = self._graft
        self.tree.disconnect(self.junction, g.e1)
        self.tree.disconnect(self.junction, g.e2)
        self.tree.connect(g.e1, g.e2, g.original_length)
        self._graft = None

    def restore(self) -> None:
        """Put the subtree back exactly where it was pruned from."""
        self._check_open()
        if self._graft is not None:
            self.undo_regraft()
        p = self._prune
        self.tree.disconnect(p.x, p.y)
        self.tree.connect(self.junction, p.x, p.lx)
        self.tree.connect(self.junction, p.y, p.ly)
        self._done = True

    def commit(self) -> None:
        """Accept the current regraft as the new topology."""
        self._check_open()
        if self._graft is None:
            raise TreeError("no regraft to commit")
        self._done = True

    def _check_open(self) -> None:
        if self._done:
            raise TreeError("SPRContext already closed")


def edges_within_radius(
    tree: Tree, start: tuple[Node, Node], radius: int, exclude: Node | None = None
) -> list[tuple[Node, Node]]:
    """Edges reachable within ``radius`` node-hops of the ``start`` edge.

    Used to bound the lazy-SPR candidate set.  ``exclude`` (the pruned
    junction) and its incident edges are never returned.  The start edge
    itself is included at distance 0.  Results are deterministically
    ordered by edge key.
    """
    if radius < 0:
        raise TreeError("radius must be non-negative")
    seen_edges: set[tuple[int, int]] = set()
    frontier: list[tuple[Node, int]] = [(start[0], 0), (start[1], 0)]
    seen_nodes: set[int] = set()
    seen_edges.add(edge_key(*start))
    while frontier:
        node, dist = frontier.pop()
        if node.id in seen_nodes or node is exclude:
            continue
        seen_nodes.add(node.id)
        if dist >= radius:
            continue
        for nbr in node.neighbors:
            if nbr is exclude:
                continue
            seen_edges.add(edge_key(node, nbr))
            frontier.append((nbr, dist + 1))
    out = []
    for a, b in sorted(seen_edges):
        out.append((tree.node(a), tree.node(b)))
    return out
