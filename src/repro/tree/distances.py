"""Tree comparison: bipartitions and the Robinson–Foulds distance.

Used by the tests to assert that the fork-join and decentralized engines
produce *identical* final topologies (the paper's engines implement exactly
the same search algorithm, so their outputs must agree).
"""

from __future__ import annotations

from repro.errors import TreeError
from repro.tree.topology import Node, Tree

__all__ = ["bipartitions", "rf_distance", "same_topology"]


def bipartitions(tree: Tree) -> set[frozenset[str]]:
    """Non-trivial bipartitions of the tree, each as the smaller side's
    frozen taxon-label set (canonicalized against the full label set)."""
    tree.validate()
    all_labels = frozenset(n.label for n in tree.leaves())  # type: ignore[arg-type]

    def side_labels(node: Node, parent: Node) -> frozenset[str]:
        if node.is_leaf:
            return frozenset([node.label])  # type: ignore[list-item]
        out: set[str] = set()
        for child in tree.other_neighbors(node, parent):
            out |= side_labels(child, node)
        return frozenset(out)

    splits: set[frozenset[str]] = set()
    for u, v in tree.edges():
        if u.is_leaf or v.is_leaf:
            continue  # trivial split
        side = side_labels(u, v)
        other = all_labels - side
        splits.add(min(side, other, key=lambda s: (len(s), sorted(s))))
    return splits


def rf_distance(a: Tree, b: Tree) -> int:
    """Robinson–Foulds distance (symmetric-difference of bipartitions)."""
    if set(a.taxon_labels()) != set(b.taxon_labels()):
        raise TreeError("trees are over different taxon sets")
    sa, sb = bipartitions(a), bipartitions(b)
    return len(sa ^ sb)


def same_topology(a: Tree, b: Tree) -> bool:
    """True iff the two trees share every bipartition."""
    return rf_distance(a, b) == 0
