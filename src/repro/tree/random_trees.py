"""Random starting trees.

Two generators:

* :func:`random_topology` — stepwise random addition, the classical way to
  draw a uniform-ish random unrooted binary topology (RAxML's random
  starting trees work the same way);
* :func:`yule_tree` — a Yule (pure-birth) tree with exponential branch
  lengths, used by the sequence simulator to create realistic datasets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TreeError
from repro.rng import ensure_rng
from repro.tree.topology import Tree

__all__ = ["random_topology", "yule_tree"]


def random_topology(
    taxa: list[str],
    rng: np.random.Generator | int | None = None,
    default_length: float = 0.1,
    n_branch_sets: int = 1,
) -> Tree:
    """Random unrooted binary topology over ``taxa`` via stepwise addition."""
    if len(taxa) < 3:
        raise TreeError("need at least 3 taxa")
    if len(set(taxa)) != len(taxa):
        raise TreeError("taxa must be unique")
    rng = ensure_rng(rng)

    tree = Tree(n_branch_sets)
    order = list(taxa)
    # permute addition order deterministically under the given rng
    perm = rng.permutation(len(order))
    order = [order[i] for i in perm]

    a = tree.add_node(order[0])
    b = tree.add_node(order[1])
    c = tree.add_node(order[2])
    center = tree.add_node()
    for leaf in (a, b, c):
        tree.connect(center, leaf, default_length)

    for label in order[3:]:
        edges = tree.edges()
        u, v = edges[rng.integers(len(edges))]
        w = tree.split_edge(u, v)
        leaf = tree.add_node(label)
        tree.connect(w, leaf, default_length)
    tree.validate()
    return tree


def yule_tree(
    taxa: list[str],
    rng: np.random.Generator | int | None = None,
    mean_branch_length: float = 0.08,
    n_branch_sets: int = 1,
) -> Tree:
    """Yule-process tree shape with iid exponential branch lengths.

    Branch lengths are drawn exponentially with the given mean, which
    yields datasets with realistic rate spread for the simulator.
    """
    if mean_branch_length <= 0:
        raise TreeError("mean_branch_length must be positive")
    rng = ensure_rng(rng)
    tree = random_topology(taxa, rng, default_length=mean_branch_length,
                           n_branch_sets=n_branch_sets)
    for u, v in tree.edges():
        length = float(rng.exponential(mean_branch_length))
        # avoid degenerate zero-length branches
        tree.set_edge_length(u, v, max(length, 1e-4))
    return tree
