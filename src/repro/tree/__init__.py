"""Tree substrate: unrooted binary topologies, Newick I/O, traversals,
random starting trees, NNI/SPR rearrangements and tree distances."""

from repro.tree.topology import Node, Tree
from repro.tree.newick import parse_newick, write_newick
from repro.tree.traversal import TraversalDescriptor, traversal_for_edge, full_traversal

__all__ = [
    "Node",
    "Tree",
    "parse_newick",
    "write_newick",
    "TraversalDescriptor",
    "traversal_for_edge",
    "full_traversal",
]
