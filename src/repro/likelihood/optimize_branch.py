"""Newton–Raphson branch-length optimization.

This mirrors RAxML's ``makenewz``: one traversal builds the eigen-basis
sumtables for the branch, then each Newton iteration only re-evaluates the
cheap exponential sums — and, in a distributed run, costs exactly one
parallel region exchanging the first/second derivatives (2 doubles under
joint branch lengths, 2·p under per-partition lengths, the ``-M`` mode).

The iteration is safeguarded: where the second derivative is not negative
(no local curvature toward a maximum) the step falls back to a doubling
walk in the uphill direction, and all steps are clamped to
``[BL_MIN, BL_MAX]`` — the same guards RAxML employs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LikelihoodError

__all__ = ["BL_MIN", "BL_MAX", "optimize_branch", "smooth_all_branches"]

#: RAxML's branch-length bounds (substitutions per site).
BL_MIN = 1.0e-6
BL_MAX = 60.0


def _aggregate_by_set(
    values: np.ndarray, branch_sets: np.ndarray, n_sets: int
) -> np.ndarray:
    """Sum per-partition derivative contributions into branch-set totals."""
    return np.bincount(branch_sets, weights=values, minlength=n_sets)


def optimize_branch(
    backend,
    u,
    v,
    tol: float = 1.0e-8,
    max_iter: int = 32,
) -> np.ndarray:
    """Optimize the branch ``{u, v}``; returns the new length vector.

    Runs a single synchronized Newton iteration across all branch sets —
    partitions converge (and freeze) individually, matching the paper's
    requirement that parameter changes are proposed *simultaneously for
    all partitions* so that each iteration is one parallel region.
    """
    if tol <= 0 or max_iter < 1:
        raise LikelihoodError("invalid Newton parameters")
    tree = backend.tree
    n_sets = backend.n_branch_sets
    branch_sets = np.array(
        [info.branch_set for info in backend.partition_info()], dtype=np.intp
    )
    handle = backend.begin_branch(u, v)
    t = tree.edge_length(u, v).copy()
    t = np.clip(t, BL_MIN, BL_MAX)
    active = np.ones(n_sets, dtype=bool)
    step_cap = np.full(n_sets, 1.0)  # doubling-walk step for non-concave spots
    iters_run = 0

    for _ in range(max_iter):
        iters_run += 1
        d1p, d2p = backend.derivatives(handle, t)
        d1 = _aggregate_by_set(d1p, branch_sets, n_sets)
        d2 = _aggregate_by_set(d2p, branch_sets, n_sets)

        new_t = t.copy()
        concave = d2 < 0.0
        # Newton step where curvature is right
        with np.errstate(divide="ignore", invalid="ignore"):
            newton = t - d1 / d2
        use = active & concave & np.isfinite(newton)
        new_t[use] = newton[use]
        # doubling walk uphill elsewhere
        walk = active & ~use
        if np.any(walk):
            direction = np.sign(d1[walk])
            new_t[walk] = t[walk] + direction * step_cap[walk]
            step_cap[walk] *= 2.0
        new_t = np.clip(new_t, BL_MIN, BL_MAX)

        moved = np.abs(new_t - t)
        t = np.where(active, new_t, t)
        active = active & (moved > tol) & ~(
            (np.abs(d1) < 1e-10) & concave
        )
        if not np.any(active):
            break

    backend.set_branch_length(u, v, t)
    # Live telemetry: each Newton iteration is one parallel region, so
    # the per-rank iteration count is a direct progress signal (see
    # repro.obs.progress).  Unmonitored backends skip this entirely.
    progress = getattr(backend, "progress", None)
    if progress is not None and progress.enabled:
        progress.add_newton(iters_run)
    return t


def smooth_all_branches(
    backend,
    passes: int = 2,
    tol: float = 1.0e-8,
    max_iter: int = 32,
) -> None:
    """Optimize every branch of the tree, ``passes`` times.

    Edges are visited in the deterministic order :meth:`Tree.edges`
    provides, which keeps the decentralized replicas in lock step.
    """
    if passes < 1:
        raise LikelihoodError("need at least one smoothing pass")
    for _ in range(passes):
        for u, v in backend.tree.edges():
            optimize_branch(backend, u, v, tol=tol, max_iter=max_iter)
