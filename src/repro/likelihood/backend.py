"""The likelihood-backend protocol and its sequential reference.

The tree search and the parameter optimizers are written against this
small protocol.  **Each method call corresponds to exactly one parallel
region** (or to a purely local action), which is what lets the two engines
implement the paper's two communication schemes without touching the
search logic:

==================  =========================   =========================
method              fork-join (RAxML-Light)     de-centralized (ExaML)
==================  =========================   =========================
``evaluate``        bcast descriptor+params,    local traversal,
                    workers compute, reduce     allreduce p doubles
``begin_branch``    bcast descriptor, barrier   local traversal
``derivatives``     bcast t, reduce 2/2p dbl    allreduce 2/2p doubles
``set_*`` params    bcast parameter arrays      local (replicas replay the
                                                same deterministic update)
``optimize_psr``    bcast candidates, workers   local scan, allreduce the
                    scan+choose locally         normalization sums
==================  =========================   =========================

:class:`SequentialBackend` is the single-rank reference implementation all
engines are tested against: every engine must produce *numerically
identical* likelihoods, parameters and trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

import numpy as np

from repro.likelihood.partitioned import BranchWorkspace, PartitionedLikelihood
from repro.model.rates import DiscreteGamma, PerSiteRates
from repro.tree.topology import Node, Tree

__all__ = ["PartitionInfo", "LikelihoodBackend", "SequentialBackend", "psr_scan_table"]


@dataclass(frozen=True)
class PartitionInfo:
    """Static facts about a partition the optimizers need."""

    index: int
    name: str
    branch_set: int
    n_cats: int
    site_specific: bool
    has_gamma: bool
    cost_patterns: float


class LikelihoodBackend(Protocol):
    """What the search and the optimizers require of an engine."""

    tree: Tree

    @property
    def n_partitions(self) -> int: ...

    @property
    def n_branch_sets(self) -> int: ...

    def partition_info(self) -> list[PartitionInfo]: ...

    def evaluate(self, u: Node, v: Node) -> tuple[float, np.ndarray]: ...

    def begin_branch(self, u: Node, v: Node) -> Any: ...

    def derivatives(
        self, handle: Any, t: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]: ...

    def set_branch_length(self, u: Node, v: Node, t: np.ndarray) -> None: ...

    def set_alphas(self, alphas: dict[int, float]) -> None: ...

    def set_gtr_rates(self, rates: dict[int, np.ndarray]) -> None: ...

    def get_alpha(self, p: int) -> float: ...

    def get_gtr_rates(self, p: int) -> np.ndarray: ...

    def optimize_psr(self, u: Node, v: Node, candidates: np.ndarray) -> None: ...

    def finish(self) -> None: ...


def _partition_info_from(lik: PartitionedLikelihood) -> list[PartitionInfo]:
    out = []
    for i, part in enumerate(lik.parts):
        out.append(
            PartitionInfo(
                index=i,
                name=part.name,
                branch_set=part.branch_set,
                n_cats=part.n_cats,
                site_specific=part.site_specific,
                has_gamma=isinstance(part.rate_het, DiscreteGamma),
                cost_patterns=part.cost_patterns,
            )
        )
    return out


def psr_scan_table(
    lik: PartitionedLikelihood, u: Node, v: Node, candidates: np.ndarray
) -> dict[int, np.ndarray]:
    """Per-site log likelihood under each constant candidate rate.

    For every PSR partition returns an array ``(len(candidates),
    n_patterns)``.  This is the compute-heavy half of PSR optimization
    (one full traversal per candidate); choosing the argmax per site and
    normalizing is cheap and is done by the caller.
    """
    psr_parts = [
        i for i, part in enumerate(lik.parts) if isinstance(part.rate_het, PerSiteRates)
    ]
    tables: dict[int, list[np.ndarray]] = {i: [] for i in psr_parts}
    saved = {i: lik.parts[i].rate_het.rates.copy() for i in psr_parts}
    for rate in candidates:
        for i in psr_parts:
            lik.set_psr_rates(i, np.full(lik.parts[i].n_patterns, float(rate)))
        site_lhs = lik.site_log_likelihoods(u, v)
        for i in psr_parts:
            tables[i].append(site_lhs[i])
    for i in psr_parts:  # restore so a failed caller leaves state intact
        lik.set_psr_rates(i, saved[i])
    return {i: np.vstack(rows) for i, rows in tables.items()}


def choose_psr_rates(
    candidates: np.ndarray, table: np.ndarray
) -> np.ndarray:
    """Argmax per site over the candidate scan table."""
    best = np.asarray(candidates, dtype=np.float64)[np.argmax(table, axis=0)]
    return best


class SequentialBackend:
    """Single-rank backend: drives a full-data :class:`PartitionedLikelihood`.

    This is both the correctness oracle for the engines and the
    ``size == 1`` execution path of the library.
    """

    def __init__(self, lik: PartitionedLikelihood) -> None:
        self.lik = lik
        self.tree = lik.tree

    @property
    def n_partitions(self) -> int:
        return self.lik.n_partitions

    @property
    def n_branch_sets(self) -> int:
        return self.lik.n_branch_sets

    def partition_info(self) -> list[PartitionInfo]:
        return _partition_info_from(self.lik)

    def evaluate(self, u: Node, v: Node) -> tuple[float, np.ndarray]:
        total, per_part, _ = self.lik.evaluate(u, v)
        return total, per_part

    def begin_branch(self, u: Node, v: Node) -> BranchWorkspace:
        return self.lik.prepare_branch(u, v)

    def derivatives(
        self, handle: BranchWorkspace, t: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.lik.branch_derivatives(handle, t)

    def set_branch_length(self, u: Node, v: Node, t: np.ndarray) -> None:
        self.tree.set_edge_length(u, v, t)

    def set_alphas(self, alphas: dict[int, float]) -> None:
        for p, alpha in sorted(alphas.items()):
            self.lik.set_alpha(p, alpha)

    def set_gtr_rates(self, rates: dict[int, np.ndarray]) -> None:
        for p, r in sorted(rates.items()):
            self.lik.set_gtr_rates(p, r)

    def get_alpha(self, p: int) -> float:
        return self.lik.get_alpha(p)

    def get_gtr_rates(self, p: int) -> np.ndarray:
        return self.lik.parts[p].model.rates.copy()

    def optimize_psr(self, u: Node, v: Node, candidates: np.ndarray) -> None:
        tables = psr_scan_table(self.lik, u, v, candidates)
        for p, table in sorted(tables.items()):
            rates = choose_psr_rates(candidates, table)
            part = self.lik.parts[p]
            rate_het = part.rate_het
            assert isinstance(rate_het, PerSiteRates)
            rate_het.set_rates(rates)
            rate_het.normalize(part.weights)
            self.lik.invalidate_partition(p)

    def finish(self) -> None:  # nothing to tear down
        return None
