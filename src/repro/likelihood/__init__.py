"""Likelihood core: CLV kernels, partitioned likelihood orchestration,
Newton–Raphson branch optimization and model-parameter optimization."""

from repro.likelihood.partitioned import PartitionedLikelihood, PartitionData
from repro.likelihood.kernel import (
    newview,
    evaluate_edge,
    sumtable,
    derivatives_from_sumtable,
    SCALE_THRESHOLD,
)

__all__ = [
    "PartitionedLikelihood",
    "PartitionData",
    "newview",
    "evaluate_edge",
    "sumtable",
    "derivatives_from_sumtable",
    "SCALE_THRESHOLD",
]
