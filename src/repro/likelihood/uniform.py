"""Stacked-partition likelihood: vectorized across partitions.

The reference :class:`PartitionedLikelihood` loops over partitions in
Python — perfectly fine for tens of partitions, hopeless for the paper's
1000-partition workloads.  When every partition has the same pattern count
and rate-heterogeneity flavor (true by construction for the generated
benchmark datasets), all per-partition state can be *stacked* along a
leading axis and every kernel becomes a single einsum over
``(p, n_patterns, …)`` arrays: the classic "vectorize the Python loop"
optimization, worth 1–2 orders of magnitude here.

Numerically this is the same computation in a different evaluation order
per partition-stack; results agree with the reference implementation to
tight float64 tolerance (asserted by the equivalence tests).
"""

from __future__ import annotations

import numpy as np

from repro.errors import LikelihoodError
from repro.likelihood.partitioned import (
    BranchWorkspace,
    PartitionData,
    PartitionedLikelihood,
)
from repro.model.rates import DiscreteGamma
from repro.par.ledger import ComputeItem, OpKind
from repro.tree.topology import Node, Tree
from repro.tree.traversal import TraversalDescriptor, traversal_for_edge

__all__ = ["UniformPartitionedLikelihood"]

_SCALE_THRESHOLD = 1e-100
_LH_FLOOR = 1e-300

#: Cache entries beyond which invalid CLVs are garbage collected.
_GC_HIGH_WATER_FACTOR = 2


class UniformPartitionedLikelihood(PartitionedLikelihood):
    """Drop-in replacement for uniform partition stacks.

    Requirements: every partition has the same ``n_patterns``, the same
    rate-heterogeneity class (all Γ with equal category count, all PSR, or
    all uniform-rate) and four states.  Model parameters may differ freely
    per partition.
    """

    def __init__(self, tree: Tree, parts: list[PartitionData], taxa: list[str],
                 ledger=None) -> None:
        super().__init__(tree, parts, taxa, ledger)
        n = parts[0].n_patterns
        kinds = {type(p.rate_het) for p in parts}
        if len(kinds) != 1:
            raise LikelihoodError("uniform stack needs one rate-het flavor")
        if any(p.n_patterns != n for p in parts):
            raise LikelihoodError("uniform stack needs equal pattern counts")
        if any(p.model.n_states != 4 for p in parts):
            raise LikelihoodError("uniform stack is DNA-only")
        if any(p.n_cats != parts[0].n_cats for p in parts):
            raise LikelihoodError("uniform stack needs equal category counts")
        self._n = n
        self._site_specific = parts[0].site_specific
        self._cats = parts[0].n_cats
        # stacked constants
        self._weights = np.stack([p.weights for p in parts])  # (p, n)
        self._stack_valid = False
        self._stack: dict[str, np.ndarray] = {}
        # single CLV cache keyed by directed edge (all partitions together)
        self._ucache: dict[tuple[int, int], tuple] = {}
        self._umemo: dict[tuple[int, int], bool] = {}
        self._umemo_counter = -1
        self._stack_model_version = -1
        # tip stacks built lazily per taxon row
        self._utips: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # stacked model state
    # ------------------------------------------------------------------ #
    def _model_fingerprint(self) -> int:
        return sum(p.model_version for p in self.parts) + 1000003 * len(self.parts)

    def _ensure_stack(self) -> None:
        fp = self._model_fingerprint()
        if self._stack_valid and fp == self._stack_model_version:
            return
        lam = np.empty((self.n_partitions, 4))
        left = np.empty((self.n_partitions, 4, 4))
        right = np.empty((self.n_partitions, 4, 4))
        freqs = np.empty((self.n_partitions, 4))
        for i, part in enumerate(self.parts):
            eigen = part.model.eigen()
            lam[i] = eigen.eigenvalues
            left[i] = eigen.left
            right[i] = eigen.right
            freqs[i] = part.model.frequencies
        stack = {"lam": lam, "left": left, "right": right, "freqs": freqs}
        if self._site_specific:
            stack["rates"] = np.stack(
                [p.rate_het.rates for p in self.parts]  # type: ignore[attr-defined]
            )  # (p, n)
        else:
            rates = np.empty((self.n_partitions, self._cats))
            for i, part in enumerate(self.parts):
                r, _ = part.category_rates()
                rates[i] = r
            stack["rates"] = rates  # (p, cats)
            stack["cat_w"] = np.full(self._cats, 1.0 / self._cats) if isinstance(
                self.parts[0].rate_het, DiscreteGamma
            ) else np.ones(1)
        self._stack = stack
        self._stack_valid = True
        self._stack_model_version = fp

    def _tip(self, row: int) -> np.ndarray:
        """Stacked tip vectors for one taxon row: ``(p, n, 4)``."""
        tip = self._utips.get(row)
        if tip is None:
            masks = np.stack([p.patterns[row] for p in self.parts])  # (p, n)
            bits = (masks[..., None] >> np.arange(4)) & 1
            tip = bits.astype(np.float64)
            self._utips[row] = tip
        return tip

    # ------------------------------------------------------------------ #
    # stacked kernels
    # ------------------------------------------------------------------ #
    def _pmats(self, t_per_part: np.ndarray) -> np.ndarray:
        """P matrices for one branch: (p, cats, 4, 4) or (p, n, 4, 4)."""
        s = self._stack
        if self._site_specific:
            arg = s["rates"] * t_per_part[:, None]  # (p, n)
            expo = np.exp(arg[..., None] * s["lam"][:, None, :])  # (p, n, 4)
            return np.einsum("pik,pnk,pkj->pnij", s["left"], expo, s["right"])
        arg = s["rates"] * t_per_part[:, None]  # (p, cats)
        expo = np.exp(arg[..., None] * s["lam"][:, None, :])  # (p, cats, 4)
        return np.einsum("pik,pck,pkj->pcij", s["left"], expo, s["right"])

    def _apply(self, pmat: np.ndarray, child) -> np.ndarray:
        """Propagate a child (tip or CLV) through stacked P matrices.

        Tips are ``(p, n, 4)``, CLVs ``(p, n, cats, 4)``; the result is
        always ``(p, n, cats, 4)``.
        """
        if self._site_specific:
            if child.ndim == 3:  # tip
                out = np.einsum("pnxy,pny->pnx", pmat, child)
                return out[:, :, None, :]
            return np.einsum("pnxy,pncy->pncx", pmat, child)
        if child.ndim == 3:  # tip
            return np.einsum("pcxy,pny->pncx", pmat, child)
        return np.einsum("pcxy,pncy->pncx", pmat, child)

    def _uside(self, node: Node, toward: Node):
        if node.is_leaf:
            return self._tip(self.taxon_row[node.label]), None
        entry = self._ucache.get((node.id, toward.id))
        if entry is None:  # pragma: no cover - traversal guarantees order
            raise LikelihoodError(f"missing stacked CLV ({node.id}->{toward.id})")
        return entry[0], entry[1]

    def _branch_vector(self, u: Node, v: Node) -> np.ndarray:
        """Per-partition branch lengths for edge {u, v}: shape (p,)."""
        lengths = self.tree.edge_length(u, v)
        bs = np.array([p.branch_set for p in self.parts])
        return lengths[bs]

    # ------------------------------------------------------------------ #
    # validity (single global cache; any model change invalidates all)
    # ------------------------------------------------------------------ #
    def _ufresh(self) -> None:
        if self._umemo_counter != self.tree._version_counter:
            self._umemo.clear()
            self._umemo_counter = self.tree._version_counter

    def _uvalid(self, key: tuple[int, int]) -> bool:
        memo = self._umemo.get(key)
        if memo is not None:
            return memo
        ok = self._ucheck(key)
        self._umemo[key] = ok
        return ok

    def _ucheck(self, key: tuple[int, int]) -> bool:
        entry = self._ucache.get(key)
        if entry is None or entry[2] != self._model_fingerprint():
            return False
        tree = self.tree
        try:
            node = tree.node(key[0])
            toward = tree.node(key[1])
        except Exception:
            return False
        if node not in toward.neighbors:
            return False
        children = tree.other_neighbors(node, toward)
        if len(children) != 2:
            return False
        a, b = children
        if (a.id, b.id) != entry[3]:
            return False
        if tree.edge_version(node, a) != entry[4] or tree.edge_version(node, b) != entry[5]:
            return False
        for child in (a, b):
            if not child.is_leaf and not self._uvalid((child.id, node.id)):
                return False
        return True

    def _maybe_gc(self) -> None:
        if len(self._ucache) > _GC_HIGH_WATER_FACTOR * max(1, 2 * self.tree.n_edges):
            self._ufresh()
            dead = [k for k in self._ucache if not self._uvalid(k)]
            for k in dead:
                del self._ucache[k]

    # ------------------------------------------------------------------ #
    # overridden public API
    # ------------------------------------------------------------------ #
    def ensure_clvs(self, u: Node, v: Node) -> list[TraversalDescriptor]:
        self._ensure_stack()
        self._ufresh()
        desc = traversal_for_edge(self.tree, u, v, is_valid=self._uvalid)
        fp = self._model_fingerprint()
        tree = self.tree
        for op in desc.ops:
            node = tree.node(op.node)
            a = tree.node(op.child_a)
            b = tree.node(op.child_b)
            p_a = self._pmats(self._branch_vector(node, a))
            p_b = self._pmats(self._branch_vector(node, b))
            clv_a, scale_a = self._uside(a, node)
            clv_b, scale_b = self._uside(b, node)
            clv = self._apply(p_a, clv_a) * self._apply(p_b, clv_b)
            scale = np.zeros((self.n_partitions, self._n))
            if scale_a is not None:
                scale += scale_a
            if scale_b is not None:
                scale += scale_b
            m = clv.reshape(self.n_partitions, self._n, -1).max(axis=2)
            tiny = (m < _SCALE_THRESHOLD) & (m > 0)
            if np.any(tiny):
                clv[tiny] /= m[tiny][:, None, None]
                scale[tiny] += np.log(m[tiny])
            if np.any(m == 0):
                raise LikelihoodError("stacked CLV underflowed to zero")
            lo, hi = min(op.child_a, op.child_b), max(op.child_a, op.child_b)
            self._ucache[(op.node, op.toward)] = (
                clv,
                scale,
                fp,
                (lo, hi),
                tree.edge_version(node, tree.node(lo)),
                tree.edge_version(node, tree.node(hi)),
            )
            self._umemo[(op.node, op.toward)] = True
        if desc.ops:
            for i, part in enumerate(self.parts):
                self.ledger.charge(
                    ComputeItem(
                        op=OpKind.NEWVIEW,
                        partition=i,
                        n_patterns=part.cost_patterns,
                        n_cats=part.n_cats,
                        count=len(desc.ops),
                        site_specific=part.site_specific,
                    )
                )
        self._maybe_gc()
        return [desc] * self.n_partitions

    def _evaluate_stacked(self, u: Node, v: Node) -> tuple[np.ndarray, np.ndarray]:
        """Per-partition totals and per-site log likelihoods (stacked)."""
        s = self._stack
        p_root = self._pmats(self._branch_vector(u, v))
        clv_i, scale_i = self._uside(u, v)
        clv_j, scale_j = self._uside(v, u)
        right = self._apply(p_root, clv_j)
        if clv_i.ndim == 3:  # tip
            clv_i = clv_i[:, :, None, :]
        per_cat = np.einsum("pncx,pncx,px->pnc", clv_i, right, s["freqs"])
        if self._site_specific:
            site = per_cat[:, :, 0]
        else:
            site = per_cat @ s["cat_w"]
        site = np.maximum(site, _LH_FLOOR)
        log_site = np.log(site)
        if scale_i is not None:
            log_site = log_site + scale_i
        if scale_j is not None:
            log_site = log_site + scale_j
        totals = np.einsum("pn,pn->p", self._weights, log_site)
        if not np.all(np.isfinite(totals)):
            raise LikelihoodError("non-finite stacked likelihood")
        for i, part in enumerate(self.parts):
            self.ledger.charge(
                ComputeItem(
                    op=OpKind.EVALUATE,
                    partition=i,
                    n_patterns=part.cost_patterns,
                    n_cats=part.n_cats,
                    site_specific=part.site_specific,
                )
            )
        return totals, log_site

    def evaluate(self, u: Node, v: Node, ensure: bool = True):
        descriptors = self.ensure_clvs(u, v) if ensure else []
        totals, _ = self._evaluate_stacked(u, v)
        return float(totals.sum()), totals, descriptors

    def _evaluate_partition(self, p: int, u: Node, v: Node):
        totals, log_site = self._evaluate_stacked(u, v)
        return float(totals[p]), log_site[p]

    def site_log_likelihoods(self, u: Node, v: Node) -> list[np.ndarray]:
        self.ensure_clvs(u, v)
        _, log_site = self._evaluate_stacked(u, v)
        return [log_site[i] for i in range(self.n_partitions)]

    def prepare_branch(self, u: Node, v: Node) -> BranchWorkspace:
        self.ensure_clvs(u, v)
        s = self._stack
        clv_i, _ = self._uside(u, v)
        clv_j, _ = self._uside(v, u)
        if clv_i.ndim == 3:
            clv_i = clv_i[:, :, None, :]
        if clv_j.ndim == 3:
            clv_j = clv_j[:, :, None, :]
        zi = np.einsum("pncy,pky->pnck", clv_i, s["right"])
        zj = np.einsum("pncy,pky->pnck", clv_j, s["right"])
        st = zi * zj  # (p, n, cats, 4)
        for i, part in enumerate(self.parts):
            self.ledger.charge(
                ComputeItem(
                    op=OpKind.SUMTABLE,
                    partition=i,
                    n_patterns=part.cost_patterns,
                    n_cats=part.n_cats,
                    site_specific=part.site_specific,
                )
            )
        return BranchWorkspace(
            u=u, v=v, sumtables=[st], edge_version=self.tree.edge_version(u, v)
        )

    def branch_derivatives(self, ws: BranchWorkspace, t: np.ndarray):
        t = np.asarray(t, dtype=np.float64)
        if t.shape != (self.n_branch_sets,):
            raise LikelihoodError(f"t shape {t.shape} != ({self.n_branch_sets},)")
        s = self._stack
        st = ws.sumtables[0]
        bs = np.array([p.branch_set for p in self.parts])
        t_p = t[bs]  # (p,)
        if self._site_specific:
            lr = s["rates"][..., None] * s["lam"][:, None, :]  # (p, n, 4)
            e = np.exp(lr * t_p[:, None, None])
            stp = st[:, :, 0, :]
            site = np.einsum("pnk,pnk->pn", stp, e)
            site1 = np.einsum("pnk,pnk,pnk->pn", stp, e, lr)
            site2 = np.einsum("pnk,pnk,pnk,pnk->pn", stp, e, lr, lr)
        else:
            lr = s["rates"][..., None] * s["lam"][:, None, :]  # (p, cats, 4)
            e = np.exp(lr * t_p[:, None, None])
            f = np.einsum("pnck,pck->pnc", st, e)
            f1 = np.einsum("pnck,pck,pck->pnc", st, e, lr)
            f2 = np.einsum("pnck,pck,pck,pck->pnc", st, e, lr, lr)
            site = f @ s["cat_w"]
            site1 = f1 @ s["cat_w"]
            site2 = f2 @ s["cat_w"]
        site = np.maximum(site, _LH_FLOOR)
        r1 = site1 / site
        r2 = site2 / site
        d1 = np.einsum("pn,pn->p", self._weights, r1)
        d2 = np.einsum("pn,pn->p", self._weights, r2 - r1 * r1)
        for i, part in enumerate(self.parts):
            self.ledger.charge(
                ComputeItem(
                    op=OpKind.DERIVATIVE,
                    partition=i,
                    n_patterns=part.cost_patterns,
                    n_cats=part.n_cats,
                    site_specific=part.site_specific,
                )
            )
        return d1, d2

    # model updates must also refresh the stacked arrays / tip caches
    def invalidate_partition(self, p: int) -> None:
        super().invalidate_partition(p)
        self._stack_valid = False
        # the single stacked cache cannot keep other partitions' CLVs
        self._ucache.clear()
        self._umemo.clear()

    def set_psr_rates(self, p: int, rates: np.ndarray) -> None:
        super().set_psr_rates(p, rates)
        self._stack_valid = False

    @classmethod
    def build_uniform(cls, alignment, tree, scheme=None, **kwargs):
        """Like :meth:`PartitionedLikelihood.build`, forcing *uncompressed*
        per-partition patterns so every partition has the same count.

        (The generated benchmark datasets use equal-length partitions, so
        skipping compression — each site is its own pattern of weight
        ``pattern_scale`` — keeps the stack rectangular.)
        """
        from repro.seq.partitions import PartitionScheme
        from repro.model.frequencies import smooth_frequencies
        from repro.model.substitution import SubstitutionModel
        from repro.model.rates import DiscreteGamma as DG, PerSiteRates as PSR
        from repro.model.rates import NoRateHeterogeneity as NRH

        rate_mode = kwargs.pop("rate_mode", "gamma")
        n_cats = kwargs.pop("n_cats", 4)
        alpha = kwargs.pop("alpha", 1.0)
        per_partition_branches = kwargs.pop("per_partition_branches", False)
        pattern_scale = kwargs.pop("pattern_scale", 1.0)
        models = kwargs.pop("models", None)
        ledger = kwargs.pop("ledger", None)
        if kwargs:
            raise TypeError(f"unknown arguments {sorted(kwargs)}")

        if scheme is None:
            scheme = PartitionScheme.single(alignment.n_sites)
        scheme.validate_cover(alignment.n_sites)
        if per_partition_branches:
            tree.set_n_branch_sets(len(scheme))
        parts = []
        for i, partition in enumerate(scheme):
            sub = alignment.slice_sites(partition.sites)
            patterns = sub.data  # no compression: rectangular stack
            weights = np.full(patterns.shape[1], float(pattern_scale))
            if models is not None:
                model = models[i]
            else:
                freqs = smooth_frequencies(sub.empirical_frequencies())
                model = SubstitutionModel(np.ones(6), freqs)
            if rate_mode == "gamma":
                rate_het = DG(alpha=alpha, n_cats=n_cats)
            elif rate_mode == "psr":
                rate_het = PSR(n_patterns=patterns.shape[1])
            elif rate_mode == "none":
                rate_het = NRH()
            else:
                raise LikelihoodError(f"unknown rate_mode {rate_mode!r}")
            parts.append(
                PartitionData(
                    name=partition.name,
                    patterns=patterns,
                    weights=weights,
                    model=model,
                    rate_het=rate_het,
                    branch_set=i if per_partition_branches else 0,
                    pattern_scale=pattern_scale,
                    alphabet=alignment.alphabet,
                )
            )
        return cls(tree, parts, alignment.taxa, ledger)
