"""Model-parameter optimization: α shapes, GTR exchangeabilities, PSR rates.

Everything here follows the *simultaneous proposal* principle the paper
inherits from [Stamatakis & Ott, ICPP 2009]: a parameter-optimization
iteration proposes **one new value for every partition at once** and
evaluates them all in a single parallel region.  Optimizing partitions one
after another would multiply the number of parallel regions by ``p`` and
destroy parallel efficiency — the exact failure mode the paper's Section II
discusses.

The scalar searches use a vectorized golden-section bracket per partition
(:class:`VectorGolden`): robust, derivative-free, and — crucially for the
decentralized engine — *bitwise deterministic*, so every replica reaches
the same parameter values from the same reduced likelihoods.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LikelihoodError, ModelError
from repro.model.rates import ALPHA_MAX, ALPHA_MIN

__all__ = [
    "VectorGolden",
    "optimize_alphas",
    "optimize_gtr",
    "optimize_psr",
    "optimize_model",
    "default_psr_candidates",
]

_INV_PHI = (np.sqrt(5.0) - 1.0) / 2.0  # 0.618...

#: Bounds for GTR exchangeabilities during optimization (the reference
#: rate GT stays fixed at 1).
GTR_RATE_MIN = 0.02
GTR_RATE_MAX = 50.0


class VectorGolden:
    """Golden-section maximization of ``m`` independent scalar functions
    that can only be evaluated *together* (one candidate per function per
    step — one parallel region per step).

    Works in a transformed coordinate (callers pass log-space bounds for
    scale parameters).  After :meth:`step` iterations, :meth:`best` returns
    the incumbent per function.
    """

    def __init__(self, lo: np.ndarray, hi: np.ndarray) -> None:
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise LikelihoodError("bounds must be matching vectors")
        if np.any(hi <= lo):
            raise LikelihoodError("need lo < hi")
        self.a = lo.copy()
        self.b = hi.copy()
        self.x1 = self.b - _INV_PHI * (self.b - self.a)
        self.x2 = self.a + _INV_PHI * (self.b - self.a)
        self.f1 = np.full(lo.shape, np.nan)
        self.f2 = np.full(lo.shape, np.nan)
        self._phase = 0  # 0: need f(x1); 1: need f(x2); 2: steady state
        self._pending: np.ndarray | None = None

    def next_candidates(self) -> np.ndarray:
        """Coordinates to evaluate next (one per function)."""
        if self._phase == 0:
            self._pending = self.x1.copy()
        elif self._phase == 1:
            self._pending = self.x2.copy()
        else:
            # steady state: exactly one of f1/f2 is stale (NaN)
            self._pending = np.where(np.isnan(self.f1), self.x1, self.x2)
        return self._pending.copy()

    def update(self, values: np.ndarray) -> None:
        """Feed back the function values at the last candidates."""
        values = np.asarray(values, dtype=np.float64)
        if self._pending is None or values.shape != self._pending.shape:
            raise LikelihoodError("update does not match pending candidates")
        if self._phase == 0:
            self.f1 = values.copy()
            self._phase = 1
            self._pending = None
            return
        if self._phase == 1:
            self.f2 = values.copy()
            self._phase = 2
        else:
            stale1 = np.isnan(self.f1)
            self.f1 = np.where(stale1, values, self.f1)
            self.f2 = np.where(~stale1, values, self.f2)
        # shrink: keep the half containing the larger value
        keep_left = self.f1 >= self.f2  # maximizing
        # left: [a, x2] with interior x1 -> new x2' = x1, f2' = f1, f1 stale
        new_a = np.where(keep_left, self.a, self.x1)
        new_b = np.where(keep_left, self.x2, self.b)
        self.a, self.b = new_a, new_b
        old_x1, old_x2 = self.x1, self.x2
        old_f1, old_f2 = self.f1, self.f2
        self.x1 = self.b - _INV_PHI * (self.b - self.a)
        self.x2 = self.a + _INV_PHI * (self.b - self.a)
        self.f1 = np.where(keep_left, np.nan, old_f2)
        self.f2 = np.where(keep_left, old_f1, np.nan)
        self._pending = None

    def best(self) -> np.ndarray:
        """Incumbent coordinate per function."""
        f1 = np.where(np.isnan(self.f1), -np.inf, self.f1)
        f2 = np.where(np.isnan(self.f2), -np.inf, self.f2)
        return np.where(f1 >= f2, self.x1, self.x2)

    def width(self) -> np.ndarray:
        return self.b - self.a


def optimize_alphas(
    backend, u, v, iterations: int = 24, improve_guard: bool = True
) -> float:
    """Optimize the Γ shape α of every Γ partition simultaneously.

    Each golden-section step is one ``set_alphas`` region (broadcast of
    ``p`` doubles under fork-join) plus one ``evaluate`` region.  Returns
    the final total log likelihood.
    """
    infos = backend.partition_info()
    gamma_parts = [info.index for info in infos if info.has_gamma]
    base_total, base_per_part = backend.evaluate(u, v)
    if not gamma_parts:
        return base_total

    idx = np.array(gamma_parts, dtype=np.intp)
    base_alphas = {int(p): backend.get_alpha(int(p)) for p in idx}
    golden = VectorGolden(
        np.full(len(idx), np.log(ALPHA_MIN)),
        np.full(len(idx), np.log(ALPHA_MAX)),
    )
    for _ in range(iterations):
        cands = np.exp(golden.next_candidates())
        backend.set_alphas({int(p): float(a) for p, a in zip(idx, cands)})
        _, per_part = backend.evaluate(u, v)
        golden.update(per_part[idx])
    best_alphas = np.exp(golden.best())
    # per-partition guard: keep a partition's previous alpha when the
    # bracketed optimum is not actually better (flat or multimodal surface)
    backend.set_alphas({int(p): float(a) for p, a in zip(idx, best_alphas)})
    total, per_part = backend.evaluate(u, v)
    if improve_guard:
        worse = per_part[idx] < base_per_part[idx]
        if np.any(worse):
            revert = {
                int(p): base_alphas[int(p)] for p, w in zip(idx, worse) if w
            }
            backend.set_alphas(revert)
            total, per_part = backend.evaluate(u, v)
    return total


def optimize_gtr(backend, u, v, iterations: int = 16) -> float:
    """Optimize the five free GTR exchangeabilities, one coordinate at a
    time, for all partitions simultaneously (coordinate descent with a
    golden-section line search per coordinate)."""
    n = backend.n_partitions
    # current rates per partition (copy; the reference rate stays 1)
    current = [backend.get_gtr_rates(p).copy() for p in range(n)]
    total, per_part = backend.evaluate(u, v)
    for coord in range(5):
        before = per_part.copy()
        saved = [r.copy() for r in current]
        golden = VectorGolden(
            np.full(n, np.log(GTR_RATE_MIN)), np.full(n, np.log(GTR_RATE_MAX))
        )
        for _ in range(iterations):
            cands = np.exp(golden.next_candidates())
            proposal = {}
            for p in range(n):
                r = current[p].copy()
                r[coord] = cands[p]
                proposal[p] = r
            backend.set_gtr_rates(proposal)
            _, trial = backend.evaluate(u, v)
            golden.update(trial)
        best = np.exp(golden.best())
        for p in range(n):
            current[p][coord] = best[p]
        backend.set_gtr_rates({p: current[p] for p in range(n)})
        total, per_part = backend.evaluate(u, v)
        worse = per_part < before
        if np.any(worse):
            for p in np.nonzero(worse)[0]:
                current[p] = saved[p]
            backend.set_gtr_rates({int(p): current[p] for p in np.nonzero(worse)[0]})
            total, per_part = backend.evaluate(u, v)
    return total


def default_psr_candidates(n: int = 20) -> np.ndarray:
    """Log-spaced candidate rates for the PSR scan, always including 1."""
    if n < 3:
        raise ModelError("need at least 3 PSR candidates")
    grid = np.geomspace(0.05, 15.0, n - 1)
    return np.sort(np.append(grid, 1.0))


def optimize_psr(backend, u, v, n_candidates: int = 20) -> float:
    """Optimize the per-site rates of every PSR partition.

    The scan (one full traversal per candidate rate) happens inside the
    backend because site data is rank-local; see
    :meth:`LikelihoodBackend.optimize_psr`.  Returns the total log
    likelihood after the update.
    """
    infos = backend.partition_info()
    if not any(info.site_specific for info in infos):
        total, _ = backend.evaluate(u, v)
        return total
    backend.optimize_psr(u, v, default_psr_candidates(n_candidates))
    total, _ = backend.evaluate(u, v)
    return total


def optimize_model(
    backend,
    u,
    v,
    alpha_iterations: int = 24,
    gtr_iterations: int = 16,
    psr_candidates: int = 20,
    optimize_rates: bool = True,
) -> float:
    """One full model-optimization round: GTR rates, then α / PSR rates.

    Returns the total log likelihood afterwards.
    """
    total, _ = backend.evaluate(u, v)
    if optimize_rates:
        total = optimize_gtr(backend, u, v, iterations=gtr_iterations)
    infos = backend.partition_info()
    if any(info.has_gamma for info in infos):
        total = optimize_alphas(backend, u, v, iterations=alpha_iterations)
    if any(info.site_specific for info in infos):
        total = optimize_psr(backend, u, v, n_candidates=psr_candidates)
    return total
