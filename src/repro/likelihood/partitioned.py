"""Partitioned likelihood orchestration.

:class:`PartitionedLikelihood` owns, per partition: the compressed site
patterns, tip vectors, substitution model, rate-heterogeneity model and a
cache of conditional likelihood vectors keyed by directed edge.  It is the
*computational* engine that both parallelization schemes drive — in a real
distributed run every rank holds one over its local data; in lock-step
simulation a single instance holds the full data.

Cache invalidation is dependency-tracked: every cached CLV records the
identity of its two children and the version stamps of the connecting
edges and of the partition's model.  A CLV is valid iff those stamps still
match and its children are (recursively) valid, so branch-length changes,
SPR moves and model updates invalidate exactly the right CLVs without any
explicit notification — the same effect as RAxML's orientation bookkeeping,
but robust against arbitrary topology edits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LikelihoodError, ModelError
from repro.likelihood import kernel
from repro.model.frequencies import smooth_frequencies
from repro.model.rates import (
    DiscreteGamma,
    NoRateHeterogeneity,
    PerSiteRates,
    RateHeterogeneity,
)
from repro.model.substitution import SubstitutionModel
from repro.par.ledger import ComputeItem, OpKind, WorkLedger
from repro.seq.alignment import Alignment
from repro.seq.partitions import PartitionScheme
from repro.tree.topology import Node, Tree
from repro.tree.traversal import TraversalDescriptor, traversal_for_edge

__all__ = ["PartitionData", "PartitionedLikelihood", "BranchWorkspace"]


class PartitionData:
    """Computational state of one partition.

    Parameters
    ----------
    name:
        Partition name.
    patterns:
        ``(n_taxa, n_patterns)`` bit-mask array (rows follow the *global*
        taxon order of the enclosing :class:`PartitionedLikelihood`).
    weights:
        Pattern multiplicities (may be scaled for virtual workloads).
    model:
        The partition's substitution model.
    rate_het:
        Γ, PSR or none.
    branch_set:
        Index into the tree's per-edge branch-length vectors (0 when
        branch lengths are joint across partitions).
    pattern_scale:
        Work multiplier: each real pattern stands for this many virtual
        patterns in the performance model.
    """

    def __init__(
        self,
        name: str,
        patterns: np.ndarray,
        weights: np.ndarray,
        model: SubstitutionModel,
        rate_het: RateHeterogeneity,
        branch_set: int = 0,
        pattern_scale: float = 1.0,
        alphabet=None,
    ) -> None:
        from repro.seq.alphabet import DNA

        self.name = name
        self.patterns = np.asarray(patterns, dtype=np.uint32)
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.patterns.ndim != 2:
            raise LikelihoodError("patterns must be (n_taxa, n_patterns)")
        if self.weights.shape != (self.patterns.shape[1],):
            raise LikelihoodError("weights shape mismatch")
        if pattern_scale <= 0:
            raise LikelihoodError("pattern_scale must be positive")
        self.model = model
        self.rate_het = rate_het
        self.branch_set = int(branch_set)
        self.pattern_scale = float(pattern_scale)
        self.alphabet = alphabet if alphabet is not None else DNA
        self.model_version = 0
        self._tips: dict[int, np.ndarray] = {}

    @property
    def n_patterns(self) -> int:
        return int(self.patterns.shape[1])

    @property
    def cost_patterns(self) -> float:
        """Virtual pattern count charged to the performance model."""
        return self.n_patterns * self.pattern_scale

    @property
    def n_cats(self) -> int:
        return self.rate_het.n_cats

    @property
    def site_specific(self) -> bool:
        return self.rate_het.site_specific

    def tip_clv(self, taxon_row: int) -> np.ndarray:
        """Cached 0/1 tip vector for the given global taxon row."""
        tip = self._tips.get(taxon_row)
        if tip is None:
            tip = self.alphabet.tip_vectors(self.patterns[taxon_row])
            self._tips[taxon_row] = tip
        return tip

    def category_rates(self) -> tuple[np.ndarray, np.ndarray | None]:
        return self.rate_het.category_rates(self.n_patterns)

    def bump_model(self) -> None:
        self.model_version += 1

    def subset(self, pattern_idx: np.ndarray) -> "PartitionData":
        """Pattern-subset copy (used to build per-rank local data).

        The rate-heterogeneity object is deep-copied: it is mutable
        (alpha updates, PSR rate updates), and shared state between a
        parent and its subsets would let one run's optimization leak into
        another's starting point.
        """
        pattern_idx = np.asarray(pattern_idx, dtype=np.intp)
        rate_het = self.rate_het
        if isinstance(rate_het, PerSiteRates):
            rate_het = PerSiteRates(rate_het.rates[pattern_idx])
        elif isinstance(rate_het, DiscreteGamma):
            rate_het = DiscreteGamma(alpha=rate_het.alpha, n_cats=rate_het.n_cats,
                                     method=rate_het.method)
        return PartitionData(
            name=self.name,
            patterns=self.patterns[:, pattern_idx],
            weights=self.weights[pattern_idx],
            model=self.model,
            rate_het=rate_het,
            branch_set=self.branch_set,
            pattern_scale=self.pattern_scale,
            alphabet=self.alphabet,
        )


@dataclass
class _Entry:
    clv: np.ndarray
    scale: np.ndarray
    child_a: int
    child_b: int
    ver_a: int
    ver_b: int
    model_ver: int


@dataclass
class BranchWorkspace:
    """Per-branch state reused across Newton iterations: the sumtables."""

    u: Node
    v: Node
    sumtables: list[np.ndarray]
    edge_version: int


class PartitionedLikelihood:
    """Likelihood of a tree over a list of partitions.

    Parameters
    ----------
    tree:
        The (mutable) tree; the instance observes it through version
        stamps, so callers may freely rearrange it between calls.
    parts:
        Per-partition data; all must share the global taxon order.
    taxa:
        Global taxon order (labels ↔ pattern rows).
    ledger:
        Optional cumulative :class:`WorkLedger`.
    """

    def __init__(
        self,
        tree: Tree,
        parts: list[PartitionData],
        taxa: list[str],
        ledger: WorkLedger | None = None,
    ) -> None:
        if not parts:
            raise LikelihoodError("need at least one partition")
        for part in parts:
            if part.patterns.shape[0] != len(taxa):
                raise LikelihoodError(
                    f"partition {part.name!r} has {part.patterns.shape[0]} rows "
                    f"for {len(taxa)} taxa"
                )
            if part.branch_set >= tree.n_branch_sets:
                raise LikelihoodError(
                    f"partition {part.name!r} wants branch set {part.branch_set} "
                    f"but tree has {tree.n_branch_sets}"
                )
        # Lazy import: repro.obs.hotspots initializes the repro.obs
        # package, parts of which import back into likelihood/engines.
        from repro.obs.hotspots import NULL_OP_PROFILER

        self.tree = tree
        self.parts = parts
        self.taxa = list(taxa)
        self.taxon_row = {label: i for i, label in enumerate(taxa)}
        self.ledger = ledger if ledger is not None else WorkLedger()
        self.profiler = NULL_OP_PROFILER
        self._cache: list[dict[tuple[int, int], _Entry]] = [{} for _ in parts]
        self._memo: list[dict[tuple[int, int], bool]] = [{} for _ in parts]
        self._memo_counter = -1
        self._clv_bytes = [0] * len(parts)
        self._clv_peak = [0] * len(parts)
        self._clv_evictions = [0] * len(parts)
        self._clv_evicted_bytes = [0] * len(parts)
        missing = [
            leaf.label for leaf in tree.leaves() if leaf.label not in self.taxon_row
        ]
        if missing:
            raise LikelihoodError(f"tree taxa missing from alignment: {missing}")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        alignment: Alignment,
        tree: Tree,
        scheme: PartitionScheme | None = None,
        rate_mode: str = "gamma",
        n_cats: int = 4,
        alpha: float = 1.0,
        models: list[SubstitutionModel] | None = None,
        per_partition_branches: bool = False,
        pattern_scale: float = 1.0,
        ledger: WorkLedger | None = None,
    ) -> "PartitionedLikelihood":
        """Assemble a likelihood from an alignment and a partition scheme.

        ``rate_mode`` is ``"gamma"`` (Γ with ``n_cats`` categories),
        ``"psr"`` (per-site rates, all starting at 1) or ``"none"``.
        Models default to GTR with all-ones exchangeabilities and smoothed
        empirical base frequencies per partition.
        """
        if scheme is None:
            scheme = PartitionScheme.single(alignment.n_sites)
        scheme.validate_cover(alignment.n_sites)
        if models is not None and len(models) != len(scheme):
            raise ModelError("one model per partition required")
        if per_partition_branches:
            tree.set_n_branch_sets(len(scheme))
        parts: list[PartitionData] = []
        for i, partition in enumerate(scheme):
            sub = alignment.slice_sites(partition.sites)
            pat = sub.compress()
            weights = pat.weights * pattern_scale
            if models is not None:
                model = models[i]
            else:
                freqs = smooth_frequencies(sub.empirical_frequencies())
                n_states = alignment.alphabet.n_states
                model = SubstitutionModel(
                    np.ones(n_states * (n_states - 1) // 2), freqs
                )
            rate_het: RateHeterogeneity
            if rate_mode == "gamma":
                rate_het = DiscreteGamma(alpha=alpha, n_cats=n_cats)
            elif rate_mode == "psr":
                rate_het = PerSiteRates(n_patterns=pat.n_patterns)
            elif rate_mode == "none":
                rate_het = NoRateHeterogeneity()
            else:
                raise ModelError(f"unknown rate_mode {rate_mode!r}")
            parts.append(
                PartitionData(
                    name=partition.name,
                    patterns=pat.patterns,
                    weights=weights,
                    model=model,
                    rate_het=rate_het,
                    branch_set=i if per_partition_branches else 0,
                    pattern_scale=pattern_scale,
                    alphabet=alignment.alphabet,
                )
            )
        return cls(tree, parts, alignment.taxa, ledger)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def n_partitions(self) -> int:
        return len(self.parts)

    @property
    def n_branch_sets(self) -> int:
        return self.tree.n_branch_sets

    def total_cost_patterns(self) -> float:
        return sum(p.cost_patterns for p in self.parts)

    # ------------------------------------------------------------------ #
    # cache validity
    # ------------------------------------------------------------------ #
    def _fresh_memos(self) -> None:
        if self._memo_counter != self.tree._version_counter:
            for memo in self._memo:
                memo.clear()
            self._memo_counter = self.tree._version_counter

    def _is_valid(self, p: int, key: tuple[int, int]) -> bool:
        memo = self._memo[p]
        cached = memo.get(key)
        if cached is not None:
            return cached
        ok = self._check_valid(p, key)
        memo[key] = ok
        return ok

    def _check_valid(self, p: int, key: tuple[int, int]) -> bool:
        entry = self._cache[p].get(key)
        if entry is None or entry.model_ver != self.parts[p].model_version:
            return False
        tree = self.tree
        try:
            node = tree.node(key[0])
            toward = tree.node(key[1])
        except Exception:
            return False
        if node not in toward.neighbors:
            return False
        children = tree.other_neighbors(node, toward)
        if len(children) != 2:
            return False
        a, b = children  # sorted by id
        if (a.id, b.id) != (entry.child_a, entry.child_b):
            return False
        if tree.edge_version(node, a) != entry.ver_a:
            return False
        if tree.edge_version(node, b) != entry.ver_b:
            return False
        for child in (a, b):
            if not child.is_leaf and not self._is_valid(p, (child.id, node.id)):
                return False
        return True

    def invalidate_partition(self, p: int) -> None:
        """Drop all cached CLVs of partition ``p`` (model change)."""
        self.parts[p].bump_model()
        self._memo[p].clear()

    def invalidate_all(self) -> None:
        for p in range(self.n_partitions):
            self.invalidate_partition(p)

    def gc(self) -> int:
        """Drop stale cache entries; returns how many were evicted."""
        self._fresh_memos()
        evicted = 0
        for p, cache in enumerate(self._cache):
            dead = [k for k in cache if not self._is_valid(p, k)]
            for k in dead:
                entry = cache.pop(k)
                nbytes = entry.clv.nbytes + entry.scale.nbytes
                self._clv_bytes[p] -= nbytes
                self._clv_evicted_bytes[p] += nbytes
            self._clv_evictions[p] += len(dead)
            evicted += len(dead)
        return evicted

    def clv_stats(self) -> list[dict[str, int]]:
        """Per-partition CLV cache accounting (for profile emission)."""
        return [
            {
                "partition": p,
                "entries": len(self._cache[p]),
                "live_bytes": self._clv_bytes[p],
                "peak_bytes": self._clv_peak[p],
                "evictions": self._clv_evictions[p],
                "evicted_bytes": self._clv_evicted_bytes[p],
            }
            for p in range(self.n_partitions)
        ]

    # ------------------------------------------------------------------ #
    # CLV computation
    # ------------------------------------------------------------------ #
    def _side_clv(
        self, p: int, node: Node, toward: Node
    ) -> tuple[np.ndarray, np.ndarray | None]:
        if node.is_leaf:
            return self.parts[p].tip_clv(self.taxon_row[node.label]), None
        entry = self._cache[p].get((node.id, toward.id))
        if entry is None:  # pragma: no cover - traversal guarantees presence
            raise LikelihoodError(f"missing CLV ({node.id}->{toward.id})")
        return entry.clv, entry.scale

    def _branch_length(self, part: PartitionData, u: Node, v: Node) -> float:
        return float(self.tree.edge_length(u, v)[part.branch_set])

    def ensure_clvs(self, u: Node, v: Node) -> list[TraversalDescriptor]:
        """Make both CLVs of edge ``{u, v}`` valid; returns the executed
        per-partition traversal descriptors (for region accounting)."""
        self._fresh_memos()
        descriptors: list[TraversalDescriptor] = []
        for p in range(self.n_partitions):
            desc = traversal_for_edge(
                self.tree, u, v, is_valid=lambda key, p=p: self._is_valid(p, key)
            )
            self._execute_descriptor(p, desc)
            descriptors.append(desc)
        return descriptors

    def _execute_descriptor(self, p: int, desc: TraversalDescriptor) -> None:
        part = self.parts[p]
        eigen = part.model.eigen()
        rates, _ = part.category_rates()
        tree = self.tree
        cache = self._cache[p]
        memo = self._memo[p]
        prof = self.profiler
        unit = part.cost_patterns * part.n_cats
        n_states = part.model.n_states
        live = self._clv_bytes[p]
        peak = self._clv_peak[p]
        for op in desc.ops:
            node = tree.node(op.node)
            a = tree.node(op.child_a)
            b = tree.node(op.child_b)
            ta = self._branch_length(part, node, a)
            tb = self._branch_length(part, node, b)
            t0 = prof.begin()
            p_a = kernel.pmatrices(eigen, ta, rates)
            p_b = kernel.pmatrices(eigen, tb, rates)
            prof.end(t0, "pmatrix", p, 2 * len(rates), count=2,
                     alloc=p_a.nbytes + p_b.nbytes,
                     n_states=n_states, site_specific=part.site_specific)
            clv_a, scale_a = self._side_clv(p, a, node)
            clv_b, scale_b = self._side_clv(p, b, node)
            t0 = prof.begin()
            clv, scale = kernel.newview(
                p_a, clv_a, scale_a, p_b, clv_b, scale_b,
                site_specific=part.site_specific,
            )
            prof.end(t0, "newview", p, unit,
                     alloc=clv.nbytes + scale.nbytes,
                     n_states=n_states, site_specific=part.site_specific)
            old = cache.get((op.node, op.toward))
            if old is not None:
                live -= old.clv.nbytes + old.scale.nbytes
            live += clv.nbytes + scale.nbytes
            if live > peak:
                peak = live
            cache[(op.node, op.toward)] = _Entry(
                clv=clv,
                scale=scale,
                child_a=min(op.child_a, op.child_b),
                child_b=max(op.child_a, op.child_b),
                ver_a=tree.edge_version(node, tree.node(min(op.child_a, op.child_b))),
                ver_b=tree.edge_version(node, tree.node(max(op.child_a, op.child_b))),
                model_ver=part.model_version,
            )
            memo[(op.node, op.toward)] = True
        self._clv_bytes[p] = live
        self._clv_peak[p] = peak
        if desc.ops:
            self.ledger.charge(
                ComputeItem(
                    op=OpKind.NEWVIEW,
                    partition=p,
                    n_patterns=part.cost_patterns,
                    n_cats=part.n_cats,
                    count=len(desc.ops),
                    site_specific=part.site_specific,
                )
            )

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(
        self, u: Node, v: Node, ensure: bool = True
    ) -> tuple[float, np.ndarray, list[TraversalDescriptor]]:
        """Log likelihood at the virtual root on edge ``{u, v}``.

        Returns ``(total, per_partition, descriptors)``; ``per_partition``
        is the vector a distributed run reduces.
        """
        descriptors = self.ensure_clvs(u, v) if ensure else []
        per_part = np.empty(self.n_partitions)
        for p in range(self.n_partitions):
            total, _ = self._evaluate_partition(p, u, v)
            per_part[p] = total
        return float(per_part.sum()), per_part, descriptors

    def _evaluate_partition(
        self, p: int, u: Node, v: Node
    ) -> tuple[float, np.ndarray]:
        part = self.parts[p]
        eigen = part.model.eigen()
        rates, cat_w = part.category_rates()
        prof = self.profiler
        t = self._branch_length(part, u, v)
        t0 = prof.begin()
        p_root = kernel.pmatrices(eigen, t, rates)
        prof.end(t0, "pmatrix", p, len(rates), alloc=p_root.nbytes,
                 n_states=part.model.n_states,
                 site_specific=part.site_specific)
        clv_i, scale_i = self._side_clv(p, u, v)
        clv_j, scale_j = self._side_clv(p, v, u)
        t0 = prof.begin()
        total, log_site = kernel.evaluate_edge(
            p_root,
            clv_i,
            scale_i,
            clv_j,
            scale_j,
            part.model.frequencies,
            cat_w,
            part.weights,
            site_specific=part.site_specific,
        )
        prof.end(t0, "evaluate", p, part.cost_patterns * part.n_cats,
                 n_states=part.model.n_states,
                 site_specific=part.site_specific)
        self.ledger.charge(
            ComputeItem(
                op=OpKind.EVALUATE,
                partition=p,
                n_patterns=part.cost_patterns,
                n_cats=part.n_cats,
                site_specific=part.site_specific,
            )
        )
        return total, log_site

    def site_log_likelihoods(
        self, u: Node, v: Node
    ) -> list[np.ndarray]:
        """Per-pattern log likelihoods per partition (PSR optimizer input)."""
        self.ensure_clvs(u, v)
        return [self._evaluate_partition(p, u, v)[1] for p in range(self.n_partitions)]

    # ------------------------------------------------------------------ #
    # branch-length derivatives (Newton–Raphson support)
    # ------------------------------------------------------------------ #
    def prepare_branch(self, u: Node, v: Node) -> BranchWorkspace:
        """Build the eigen-basis sumtables for edge ``{u, v}``.

        The sumtables are independent of the branch length, so a whole
        Newton iteration sequence reuses one workspace.
        """
        self.ensure_clvs(u, v)
        sumtables = []
        prof = self.profiler
        for p in range(self.n_partitions):
            part = self.parts[p]
            eigen = part.model.eigen()
            clv_i, _ = self._side_clv(p, u, v)
            clv_j, _ = self._side_clv(p, v, u)
            t0 = prof.begin()
            table = kernel.sumtable(eigen, clv_i, clv_j)
            prof.end(t0, "sumtable", p, part.cost_patterns * part.n_cats,
                     alloc=table.nbytes, n_states=part.model.n_states,
                     site_specific=part.site_specific)
            sumtables.append(table)
            self.ledger.charge(
                ComputeItem(
                    op=OpKind.SUMTABLE,
                    partition=p,
                    n_patterns=part.cost_patterns,
                    n_cats=part.n_cats,
                    site_specific=part.site_specific,
                )
            )
        return BranchWorkspace(
            u=u, v=v, sumtables=sumtables, edge_version=self.tree.edge_version(u, v)
        )

    def branch_derivatives(
        self, ws: BranchWorkspace, t: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """First/second log-likelihood derivatives per partition at branch
        lengths ``t`` (shape ``(n_branch_sets,)``)."""
        t = np.asarray(t, dtype=np.float64)
        if t.shape != (self.n_branch_sets,):
            raise LikelihoodError(
                f"t shape {t.shape} != ({self.n_branch_sets},)"
            )
        d1 = np.empty(self.n_partitions)
        d2 = np.empty(self.n_partitions)
        prof = self.profiler
        for p in range(self.n_partitions):
            part = self.parts[p]
            eigen = part.model.eigen()
            rates, cat_w = part.category_rates()
            t0 = prof.begin()
            _, dl, d2l = kernel.derivatives_from_sumtable(
                eigen,
                ws.sumtables[p],
                float(t[part.branch_set]),
                rates,
                cat_w,
                part.weights,
            )
            prof.end(t0, "derivative", p, part.cost_patterns * part.n_cats,
                     n_states=part.model.n_states,
                     site_specific=part.site_specific)
            d1[p] = dl
            d2[p] = d2l
            self.ledger.charge(
                ComputeItem(
                    op=OpKind.DERIVATIVE,
                    partition=p,
                    n_patterns=part.cost_patterns,
                    n_cats=part.n_cats,
                    site_specific=part.site_specific,
                )
            )
        return d1, d2

    # ------------------------------------------------------------------ #
    # model parameter setters
    # ------------------------------------------------------------------ #
    def set_alpha(self, p: int, alpha: float) -> None:
        rate_het = self.parts[p].rate_het
        if not isinstance(rate_het, DiscreteGamma):
            raise ModelError(f"partition {p} does not use the Γ model")
        rate_het.alpha = alpha
        self.invalidate_partition(p)

    def set_gtr_rates(self, p: int, rates: np.ndarray) -> None:
        self.parts[p].model = self.parts[p].model.with_rates(np.asarray(rates, float))
        self.invalidate_partition(p)

    def set_frequencies(self, p: int, freqs: np.ndarray) -> None:
        self.parts[p].model = self.parts[p].model.with_frequencies(
            np.asarray(freqs, float)
        )
        self.invalidate_partition(p)

    def set_psr_rates(self, p: int, rates: np.ndarray) -> None:
        rate_het = self.parts[p].rate_het
        if not isinstance(rate_het, PerSiteRates):
            raise ModelError(f"partition {p} does not use the PSR model")
        rate_het.set_rates(rates)
        self.invalidate_partition(p)

    def get_alpha(self, p: int) -> float:
        rate_het = self.parts[p].rate_het
        if not isinstance(rate_het, DiscreteGamma):
            raise ModelError(f"partition {p} does not use the Γ model")
        return rate_het.alpha

    # ------------------------------------------------------------------ #
    # memory model hooks
    # ------------------------------------------------------------------ #
    def clv_bytes_per_inner_node(self) -> float:
        """Virtual bytes of one inner-node CLV across all partitions —
        the quantity behind the paper's 'Γ needs 4× PSR memory' point."""
        total = 0.0
        for part in self.parts:
            n_states = part.model.n_states
            total += part.cost_patterns * part.n_cats * n_states * 8
        return total
