"""NumPy likelihood kernels.

These are the three functions every likelihood-based phylogenetics code is
built from (the paper, Section III-A):

1. :func:`newview` — compute a conditional likelihood vector (CLV) at an
   inner node from its two children (Felsenstein pruning);
2. :func:`evaluate_edge` — the log likelihood at the virtual root,
   ending in the parallel reduction;
3. :func:`sumtable` / :func:`derivatives_from_sumtable` — first and second
   derivatives of the likelihood in a branch length, for Newton–Raphson.

Shapes
------
* CLVs: ``(n_patterns, n_cats, n_states)`` float64.  PSR uses
  ``n_cats == 1``.
* Tip vectors: ``(n_patterns, n_states)`` of 0/1 (ambiguity-aware).
* P matrices: ``(n_cats, n, n)`` for category rates (Γ/uniform) or
  ``(n_patterns, n, n)`` for site-specific rates (PSR).
* Scalers: per-pattern accumulated *log* scale, ``(n_patterns,)`` float64.
  Keeping the logarithm directly (instead of RAxML's integer count of
  2^256 multiplications) is exact and simpler; the cost model charges the
  same traffic either way.

All kernels optionally charge a work ledger so the performance model can
replay per-rank compute for any data distribution.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LikelihoodError

__all__ = [
    "SCALE_THRESHOLD",
    "pmatrices",
    "newview",
    "evaluate_edge",
    "sumtable",
    "derivatives_from_sumtable",
    "flops_per_unit",
    "bytes_per_unit",
]

#: When a pattern's CLV maximum falls below this, it is rescaled to 1.
SCALE_THRESHOLD = 1e-100

#: Floor for per-site likelihoods before taking logs.
_LH_FLOOR = 1e-300


def pmatrices(eigen, t: float, rates: np.ndarray) -> np.ndarray:
    """Transition matrices for one branch under a set of rate multipliers.

    ``rates`` of shape ``(n_cats,)`` (Γ / uniform) yields ``(n_cats, n, n)``;
    shape ``(n_patterns,)`` (PSR) yields ``(n_patterns, n, n)``.
    """
    if t < 0:
        raise LikelihoodError(f"negative branch length {t}")
    return eigen.pmatrices(np.asarray(rates, dtype=np.float64) * t)


def _apply(p: np.ndarray, clv_or_tip: np.ndarray, site_specific: bool) -> np.ndarray:
    """Propagate a child CLV (or tip vector) through its P matrices.

    ``site_specific`` selects the PSR flavor (one P matrix per pattern,
    singleton category axis) versus the category flavor (one P matrix per
    rate category, shared across patterns).  Returns
    ``(n_patterns, n_cats, n_states)``.
    """
    if clv_or_tip.ndim == 2:  # tip vector (patterns, states)
        if site_specific:
            return np.einsum("pxy,py->px", p, clv_or_tip)[:, None, :]
        return np.einsum("cxy,py->pcx", p, clv_or_tip)
    if site_specific:
        if clv_or_tip.shape[1] != 1:
            raise LikelihoodError(
                "site-specific rates require a singleton category axis"
            )
        return np.einsum("pxy,pcy->pcx", p, clv_or_tip)
    if clv_or_tip.shape[1] != p.shape[0]:
        raise LikelihoodError(
            f"CLV has {clv_or_tip.shape[1]} categories but P has {p.shape[0]}"
        )
    return np.einsum("cxy,pcy->pcx", p, clv_or_tip)


def newview(
    p_a: np.ndarray,
    clv_a: np.ndarray,
    scale_a: np.ndarray | None,
    p_b: np.ndarray,
    clv_b: np.ndarray,
    scale_b: np.ndarray | None,
    site_specific: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Felsenstein pruning step: combine two children into a parent CLV.

    ``scale_*`` are the children's accumulated per-pattern log scalers
    (``None`` for tips).  Returns ``(clv, scale)`` for the parent.
    """
    left = _apply(p_a, clv_a, site_specific)
    right = _apply(p_b, clv_b, site_specific)
    clv = left * right
    n_patterns = clv.shape[0]
    scale = np.zeros(n_patterns)
    if scale_a is not None:
        scale += scale_a
    if scale_b is not None:
        scale += scale_b
    # rescale patterns whose magnitude dropped below threshold
    m = clv.reshape(n_patterns, -1).max(axis=1)
    tiny = (m < SCALE_THRESHOLD) & (m > 0)
    if np.any(tiny):
        factor = m[tiny]
        clv[tiny] /= factor[:, None, None]
        scale[tiny] += np.log(factor)
    if np.any(m == 0):
        raise LikelihoodError("CLV underflowed to exactly zero")
    return clv, scale


def evaluate_edge(
    p_root: np.ndarray,
    clv_i: np.ndarray,
    scale_i: np.ndarray | None,
    clv_j: np.ndarray,
    scale_j: np.ndarray | None,
    frequencies: np.ndarray,
    cat_weights: np.ndarray | None,
    weights: np.ndarray,
    site_specific: bool = False,
) -> tuple[float, np.ndarray]:
    """Log likelihood at the virtual root on edge ``{i, j}``.

    ``p_root`` carries the branch between the two CLVs and is applied to
    side ``j``.  ``cat_weights`` is ``None`` for site-specific rates (PSR:
    a single implicit category of weight 1).

    Returns ``(log_likelihood, per_pattern_log_likelihood)`` where the
    total is ``Σ_p weights[p] · per_pattern[p]``.  The per-pattern vector is
    what the PSR rate optimizer consumes and what distributed ranks reduce.
    """
    right = _apply(p_root, clv_j, site_specific)
    if clv_i.ndim == 2:  # tip on side i
        clv_i = clv_i[:, None, :]
    per_cat = np.einsum("pcx,pcx,x->pc", clv_i, right, frequencies)
    if cat_weights is None:
        site_lh = per_cat[:, 0]
    else:
        site_lh = per_cat @ cat_weights
    site_lh = np.maximum(site_lh, _LH_FLOOR)
    log_site = np.log(site_lh)
    if scale_i is not None:
        log_site = log_site + scale_i
    if scale_j is not None:
        log_site = log_site + scale_j
    total = float(np.dot(weights, log_site))
    if not np.isfinite(total):
        raise LikelihoodError("non-finite log likelihood")
    return total, log_site


def sumtable(
    eigen,
    clv_i: np.ndarray,
    clv_j: np.ndarray,
) -> np.ndarray:
    """Eigen-basis cross product used for branch-length derivatives.

    With ``z = clv · rightᵀ`` the per-site likelihood on the connecting
    branch is ``f(t) = Σ_k st[p, c, k] · e^{λ_k r t}`` where
    ``st = z_i ⊙ z_j``.  Tips are promoted to a singleton category axis.
    """
    if clv_i.ndim == 2:
        clv_i = clv_i[:, None, :]
    if clv_j.ndim == 2:
        clv_j = clv_j[:, None, :]
    if clv_i.shape[1] != clv_j.shape[1]:
        if clv_i.shape[1] == 1:
            clv_i = np.broadcast_to(clv_i, clv_j.shape)
        elif clv_j.shape[1] == 1:
            clv_j = np.broadcast_to(clv_j, clv_i.shape)
        else:
            raise LikelihoodError("category mismatch between CLVs")
    zi = eigen.ztransform(clv_i)
    zj = eigen.ztransform(clv_j)
    return zi * zj


def derivatives_from_sumtable(
    eigen,
    st: np.ndarray,
    t: float,
    rates: np.ndarray,
    cat_weights: np.ndarray | None,
    weights: np.ndarray,
) -> tuple[float, float, float]:
    """First and second derivative of the log likelihood in ``t``.

    Returns ``(logl_proxy, dlnL, d2lnL)``; the proxy omits scaler terms and
    is only used for trend checks inside the Newton solver (scalers are
    constant in ``t`` so derivatives are exact).

    ``rates`` is ``(n_cats,)`` with ``cat_weights`` given, or
    ``(n_patterns,)`` with ``cat_weights=None`` (PSR).
    """
    if t < 0:
        raise LikelihoodError(f"negative branch length {t}")
    lam = eigen.eigenvalues
    if cat_weights is not None:
        lr = rates[:, None] * lam[None, :]  # (cats, k)
        e = np.exp(lr * t)  # (cats, k)
        f = np.einsum("pck,ck->pc", st, e)
        f1 = np.einsum("pck,ck,ck->pc", st, e, lr)
        f2 = np.einsum("pck,ck,ck,ck->pc", st, e, lr, lr)
        site = f @ cat_weights
        site1 = f1 @ cat_weights
        site2 = f2 @ cat_weights
    else:
        lr = rates[:, None] * lam[None, :]  # (patterns, k)
        e = np.exp(lr * t)
        stp = st[:, 0, :]
        site = np.einsum("pk,pk->p", stp, e)
        site1 = np.einsum("pk,pk,pk->p", stp, e, lr)
        site2 = np.einsum("pk,pk,pk,pk->p", stp, e, lr, lr)
    site = np.maximum(site, _LH_FLOOR)
    ratio1 = site1 / site
    ratio2 = site2 / site
    logl = float(np.dot(weights, np.log(site)))
    dlnl = float(np.dot(weights, ratio1))
    d2lnl = float(np.dot(weights, ratio2 - ratio1 * ratio1))
    return logl, dlnl, d2lnl


# --------------------------------------------------------------------- #
# analytic per-unit operation counts
# --------------------------------------------------------------------- #
#
# The work unit is one pattern·category — the same virtual-pattern unit
# the work ledger and the cost model charge in — except for ``pmatrix``,
# whose work is independent of the pattern count under category rates:
# its unit is one transition *matrix*.  FLOPs are counted straight off
# the einsums above for ``n = n_states``:
#
# newview:    two ``_apply`` contractions ("cxy,pcy->pcx": n mul + n−1
#             add per output state, n outputs → 2·(2n−1)·n = 4n²−2n),
#             the elementwise product (n), and the rescale scan
#             (max + compare ≈ n + 2n per unit) → 4n² + 3n.
# evaluate:   one ``_apply`` (2n²−n), the "pcx,pcx,x->pc" triple
#             product (3n−1 per unit), the category mix + floor + log +
#             weighted-sum tail (≈ n + 5 spread per unit) → 2n² + 3n + 4.
# sumtable:   two ztransforms (eigen-basis change, each 2n²−n per unit)
#             and the product (n) → 4n² + n.
# derivative: exp(lr·t) amortized over patterns is negligible; f/f1/f2
#             contractions "pck,ck->pc" cost 2n−1, 3n−1, 4n−1; category
#             mix + ratios + dots ≈ 7 → 9n + 6.
# pmatrix:    eigen reconstruction U·diag(e^{λrt})·U⁻¹ per matrix:
#             n³ mul + n²·(n−1) add + n² scale + n exp → 2n³ + n² + n.
# psr_scan:   a PSR rescan is a newview-shaped sweep (the cost model
#             prices it identically).
#
# Bytes are first-order compulsory streaming traffic in float64: the
# arrays each unit must read and write assuming nothing stays in cache
# across patterns (P matrices and eigenvectors *do* stay resident — they
# are O(n²) per partition — so they are charged only to ``pmatrix``).
#
# newview:    read two child states + write parent (3n) + scaler
#             read-modify-write amortized (2 per unit) → (3n + 2)·8.
# evaluate:   read both CLVs + frequencies-weighted reduce + site
#             output (≈ 3n + 1) → (3n + 1)·8.
# sumtable:   read two CLVs + write table → 3n·8.
# derivative: read table slice + site outputs → (n + 1)·8.
# pmatrix:    write one n×n matrix + read U, U⁻¹ → 3n²·8 per matrix.
#
# For DNA under Γ (n = 4) newview lands at 76 FLOP / 112 B ≈ 0.7 FLOP/B
# — far left of any CPU's ridge point, which is the quantitative form of
# the paper's Section V observation that likelihood computation is
# memory bandwidth bound.

_FLOPS_PER_UNIT = {
    "newview": lambda n: 4 * n * n + 3 * n,
    "evaluate": lambda n: 2 * n * n + 3 * n + 4,
    "sumtable": lambda n: 4 * n * n + n,
    "derivative": lambda n: 9 * n + 6,
    "pmatrix": lambda n: 2 * n * n * n + n * n + n,
    "psr_scan": lambda n: 4 * n * n + 3 * n,
}

_BYTES_PER_UNIT = {
    "newview": lambda n: (3 * n + 2) * 8,
    "evaluate": lambda n: (3 * n + 1) * 8,
    "sumtable": lambda n: 3 * n * 8,
    "derivative": lambda n: (n + 1) * 8,
    "pmatrix": lambda n: 3 * n * n * 8,
    "psr_scan": lambda n: (3 * n + 2) * 8,
}


def flops_per_unit(op: str, n_states: int = 4) -> float:
    """Floating point operations per work unit of kernel op ``op``.

    The unit is one pattern·category for CLV-shaped ops and one
    transition matrix for ``pmatrix`` (see the derivation above).
    """
    try:
        return float(_FLOPS_PER_UNIT[op](n_states))
    except KeyError:
        raise LikelihoodError(f"unknown kernel op {op!r}") from None


def bytes_per_unit(op: str, n_states: int = 4) -> float:
    """First-order compulsory memory traffic (bytes) per work unit."""
    try:
        return float(_BYTES_PER_UNIT[op](n_states))
    except KeyError:
        raise LikelihoodError(f"unknown kernel op {op!r}") from None
