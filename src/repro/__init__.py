"""repro — reproduction of "Novel Parallelization Schemes for Large-Scale
Likelihood-based Phylogenetic Inference" (Stamatakis & Aberer, IPPS 2013).

The package implements, from scratch:

* a full phylogenetic-likelihood substrate (alignments, trees, GTR-family
  substitution models, Γ and PSR rate heterogeneity, Felsenstein pruning,
  analytic branch-length derivatives, RAxML-style SPR tree search);
* a virtual-MPI layer with a real ``multiprocessing`` backend and a
  lock-step simulation backend with exact communication accounting;
* the paper's two parallelization schemes — the classical fork-join engine
  (RAxML-Light) and the de-centralized engine (ExaML) — both driving the
  identical search algorithm;
* a calibrated performance model of the paper's cluster that regenerates
  every figure and table of the evaluation section.

Quickstart::

    from repro import Alignment, parse_newick, PartitionedLikelihood

See ``examples/quickstart.py`` for an end-to-end run.
"""

from repro.errors import (
    ReproError,
    AlignmentError,
    NewickError,
    ModelError,
    TreeError,
    CommError,
    SearchError,
    DistributionError,
)
from repro.seq.alphabet import DNA, Alphabet
from repro.seq.alignment import Alignment, PatternAlignment
from repro.seq.partitions import Partition, PartitionScheme
from repro.tree.topology import Node, Tree
from repro.tree.newick import parse_newick, write_newick
from repro.model.substitution import SubstitutionModel, GTR, JC69, HKY85
from repro.model.rates import DiscreteGamma, PerSiteRates
from repro.likelihood.partitioned import PartitionedLikelihood

__all__ = [
    "ReproError",
    "AlignmentError",
    "NewickError",
    "ModelError",
    "TreeError",
    "CommError",
    "SearchError",
    "DistributionError",
    "DNA",
    "Alphabet",
    "Alignment",
    "PatternAlignment",
    "Partition",
    "PartitionScheme",
    "Node",
    "Tree",
    "parse_newick",
    "write_newick",
    "SubstitutionModel",
    "GTR",
    "JC69",
    "HKY85",
    "DiscreteGamma",
    "PerSiteRates",
    "PartitionedLikelihood",
]

__version__ = "1.0.0"
