"""Base-frequency utilities."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

__all__ = ["validate_frequencies", "uniform_frequencies", "smooth_frequencies"]


def uniform_frequencies(n_states: int) -> np.ndarray:
    """Uniform stationary distribution over ``n_states``."""
    if n_states < 2:
        raise ModelError("need at least two states")
    return np.full(n_states, 1.0 / n_states)


def validate_frequencies(freqs: np.ndarray, n_states: int) -> np.ndarray:
    """Validate and renormalize a frequency vector."""
    freqs = np.asarray(freqs, dtype=np.float64)
    if freqs.shape != (n_states,):
        raise ModelError(f"expected {n_states} frequencies, got {freqs.shape}")
    if np.any(freqs <= 0):
        raise ModelError("frequencies must be strictly positive")
    return freqs / freqs.sum()


def smooth_frequencies(freqs: np.ndarray, floor: float = 1e-4) -> np.ndarray:
    """Clamp tiny empirical frequencies away from zero and renormalize.

    Empirical frequencies from short partitions can hit zero for a state
    that simply never occurs; a zero frequency makes GTR degenerate, so
    likelihood codes floor them.
    """
    freqs = np.asarray(freqs, dtype=np.float64)
    if floor <= 0 or floor >= 1.0 / freqs.size:
        raise ModelError("floor must be in (0, 1/n_states)")
    out = np.maximum(freqs, floor)
    return out / out.sum()
