"""Time-reversible substitution models (the GTR family).

The General Time Reversible model [Tavaré 1986] is parameterized by six
exchangeability rates (AC, AG, AT, CG, CT, GT) and the stationary base
frequencies π.  The rate matrix is ``Q[i, j] = r[i, j] * π[j]`` for
``i != j``, normalized so the expected number of substitutions per unit
branch length is one.

Because GTR is reversible, ``B = diag(√π) · Q · diag(1/√π)`` is symmetric
and can be diagonalized with the numerically robust :func:`numpy.linalg.eigh`.
The resulting :class:`EigenSystem` provides two things the likelihood core
needs:

* batched transition matrices ``P(t) = exp(Q t)``;
* the eigenbasis *z-transform* used for analytic branch-length derivatives:
  with ``z(L) = L · Wrᵀ`` (``Wr = Vᵀ diag(√π)``), the per-site likelihood
  at a branch of length ``t`` becomes ``f(t) = Σ_k z_i[k] z_j[k] e^{λ_k t}``,
  whose derivatives in ``t`` are trivial.  This mirrors RAxML's "sumtable"
  trick for the Newton–Raphson branch optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

__all__ = [
    "EigenSystem",
    "SubstitutionModel",
    "GTR",
    "JC69",
    "K80",
    "F81",
    "HKY85",
    "RATE_ORDER",
]

#: Order of the six GTR exchangeability parameters.
RATE_ORDER = ("AC", "AG", "AT", "CG", "CT", "GT")

_MIN_FREQ = 1e-8
_MIN_RATE = 1e-7


@dataclass(frozen=True)
class EigenSystem:
    """Eigen-decomposition of a reversible rate matrix.

    Attributes
    ----------
    eigenvalues:
        λ, shape ``(n_states,)``, all ≤ 0 with exactly one zero.
    left:
        ``diag(1/√π) · V``, shape ``(n, n)``.
    right:
        ``Vᵀ · diag(√π)``, shape ``(n, n)``; ``P(t) = left·diag(e^{λt})·right``.
    frequencies:
        Stationary distribution π.
    """

    eigenvalues: np.ndarray
    left: np.ndarray
    right: np.ndarray
    frequencies: np.ndarray

    @property
    def n_states(self) -> int:
        return int(self.eigenvalues.shape[0])

    def pmatrices(self, t: np.ndarray | float) -> np.ndarray:
        """Transition matrices ``P(t)`` for a batch of branch lengths.

        ``t`` may have any shape ``S``; the result has shape ``S + (n, n)``.
        """
        t = np.asarray(t, dtype=np.float64)
        expo = np.exp(t[..., None] * self.eigenvalues)  # S + (n,)
        # P = left @ diag(expo) @ right, batched over S
        return np.einsum("ik,...k,kj->...ij", self.left, expo, self.right)

    def ztransform(self, clv: np.ndarray) -> np.ndarray:
        """Map CLVs into the eigenbasis: ``z = clv · rightᵀ``.

        Works on any array whose last axis is the state axis.
        """
        return clv @ self.right.T


class SubstitutionModel:
    """A GTR-family substitution model over an ``n_states`` alphabet.

    Parameters
    ----------
    rates:
        Upper-triangle exchangeabilities, length ``n(n-1)/2``, in row-major
        order (for DNA: AC, AG, AT, CG, CT, GT).  The last rate (GT) is the
        conventional reference and is typically fixed to 1.
    frequencies:
        Stationary frequencies, length ``n_states``, positive, summing to 1.
    """

    def __init__(self, rates: np.ndarray, frequencies: np.ndarray) -> None:
        frequencies = np.asarray(frequencies, dtype=np.float64)
        rates = np.asarray(rates, dtype=np.float64)
        n = frequencies.shape[0]
        if n < 2:
            raise ModelError("need at least two states")
        expected = n * (n - 1) // 2
        if rates.shape != (expected,):
            raise ModelError(
                f"expected {expected} exchangeabilities for {n} states, "
                f"got shape {rates.shape}"
            )
        if np.any(rates < _MIN_RATE):
            raise ModelError(f"exchangeabilities must be >= {_MIN_RATE}")
        if np.any(frequencies < _MIN_FREQ):
            raise ModelError(f"frequencies must be >= {_MIN_FREQ}")
        if not np.isclose(frequencies.sum(), 1.0, atol=1e-6):
            raise ModelError(f"frequencies sum to {frequencies.sum()}, not 1")
        self.rates = rates.copy()
        self.frequencies = frequencies / frequencies.sum()
        self._eigen: EigenSystem | None = None

    @property
    def n_states(self) -> int:
        return int(self.frequencies.shape[0])

    # ------------------------------------------------------------------ #
    def rate_matrix(self) -> np.ndarray:
        """The normalized rate matrix Q (rows sum to 0, mean rate 1)."""
        n = self.n_states
        r = np.zeros((n, n))
        iu = np.triu_indices(n, k=1)
        r[iu] = self.rates
        r = r + r.T
        q = r * self.frequencies[None, :]
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        # normalize: expected substitutions per unit time = -Σ π_i q_ii = 1
        mu = -np.dot(self.frequencies, np.diag(q))
        if mu <= 0:  # pragma: no cover - defensive
            raise ModelError("degenerate rate matrix")
        return q / mu

    def eigen(self) -> EigenSystem:
        """Cached eigen-decomposition of the normalized rate matrix."""
        if self._eigen is None:
            q = self.rate_matrix()
            pi = self.frequencies
            sqrt_pi = np.sqrt(pi)
            b = (sqrt_pi[:, None] * q) / sqrt_pi[None, :]
            b = 0.5 * (b + b.T)  # symmetrize against round-off
            lam, v = np.linalg.eigh(b)
            # Clamp the (analytically zero) top eigenvalue exactly to 0 so
            # that P(t) rows sum to one even for huge t.
            lam = np.minimum(lam, 0.0)
            lam[np.argmax(lam)] = 0.0
            left = v / sqrt_pi[:, None]
            right = v.T * sqrt_pi[None, :]
            self._eigen = EigenSystem(
                eigenvalues=lam, left=left, right=right, frequencies=pi.copy()
            )
        return self._eigen

    # ------------------------------------------------------------------ #
    def with_rates(self, rates: np.ndarray) -> "SubstitutionModel":
        """New model with replaced exchangeabilities (frequencies kept)."""
        return SubstitutionModel(rates, self.frequencies)

    def with_frequencies(self, frequencies: np.ndarray) -> "SubstitutionModel":
        """New model with replaced frequencies (exchangeabilities kept)."""
        return SubstitutionModel(self.rates, frequencies)

    def normalized_rates(self) -> np.ndarray:
        """Exchangeabilities scaled so the last entry (GT for DNA) is 1."""
        return self.rates / self.rates[-1]

    def __repr__(self) -> str:
        r = ", ".join(f"{x:.4g}" for x in self.rates)
        f = ", ".join(f"{x:.4g}" for x in self.frequencies)
        return f"SubstitutionModel(rates=[{r}], freqs=[{f}])"


# ---------------------------------------------------------------------- #
# Named DNA models
# ---------------------------------------------------------------------- #
def GTR(rates, frequencies) -> SubstitutionModel:
    """General Time Reversible model (6 rates, 4 free frequencies)."""
    return SubstitutionModel(np.asarray(rates, dtype=float), frequencies)


def JC69() -> SubstitutionModel:
    """Jukes–Cantor 1969: equal rates, uniform frequencies."""
    return SubstitutionModel(np.ones(6), np.full(4, 0.25))


def K80(kappa: float = 2.0) -> SubstitutionModel:
    """Kimura 1980: transition/transversion ratio κ, uniform frequencies."""
    if kappa <= 0:
        raise ModelError("kappa must be positive")
    # order AC, AG, AT, CG, CT, GT — AG and CT are transitions
    return SubstitutionModel(
        np.array([1.0, kappa, 1.0, 1.0, kappa, 1.0]), np.full(4, 0.25)
    )


def F81(frequencies) -> SubstitutionModel:
    """Felsenstein 1981: equal exchangeabilities, free frequencies."""
    return SubstitutionModel(np.ones(6), frequencies)


def HKY85(kappa: float, frequencies) -> SubstitutionModel:
    """Hasegawa–Kishino–Yano 1985: κ plus free frequencies."""
    if kappa <= 0:
        raise ModelError("kappa must be positive")
    return SubstitutionModel(
        np.array([1.0, kappa, 1.0, 1.0, kappa, 1.0]), frequencies
    )
