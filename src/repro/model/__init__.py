"""Model substrate: GTR-family substitution models, eigen-decomposition,
transition-probability matrices and rate heterogeneity (Γ and PSR)."""

from repro.model.substitution import SubstitutionModel, GTR, JC69, K80, F81, HKY85, EigenSystem
from repro.model.rates import DiscreteGamma, PerSiteRates, RateHeterogeneity, NoRateHeterogeneity

__all__ = [
    "SubstitutionModel",
    "GTR",
    "JC69",
    "K80",
    "F81",
    "HKY85",
    "EigenSystem",
    "DiscreteGamma",
    "PerSiteRates",
    "RateHeterogeneity",
    "NoRateHeterogeneity",
]
