"""Protein substitution models.

The likelihood substrate is state-count agnostic (the kernels, CLV cache
and optimizers never assume four states), so amino-acid analyses come
down to providing 20-state models:

* :func:`POISSON` — the 20-state equal-rates model (the protein analogue
  of JC69), fully specified analytically;
* :func:`GTR20` — free exchangeabilities (190 parameters), for users who
  estimate them;
* :func:`parse_paml_dat` — loader for the standard PAML ``.dat`` exchange
  format in which the classical empirical matrices (WAG, LG, JTT, …) are
  distributed, so users can drop in the published files verbatim.  We do
  not embed those matrices: transcribing 190 coefficients from memory
  invites silent errors, and the paper's experiments are DNA-only.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.model.substitution import SubstitutionModel

__all__ = ["POISSON", "GTR20", "parse_paml_dat", "read_paml_dat", "N_AA"]

N_AA = 20
_N_EXCH = N_AA * (N_AA - 1) // 2  # 190


def POISSON() -> SubstitutionModel:
    """Equal exchangeabilities, uniform frequencies (20-state JC)."""
    return SubstitutionModel(np.ones(_N_EXCH), np.full(N_AA, 1.0 / N_AA))


def GTR20(rates, frequencies) -> SubstitutionModel:
    """Fully parameterized 20-state reversible model."""
    rates = np.asarray(rates, dtype=np.float64)
    if rates.shape != (_N_EXCH,):
        raise ModelError(f"GTR20 needs {_N_EXCH} exchangeabilities")
    return SubstitutionModel(rates, np.asarray(frequencies, dtype=np.float64))


def parse_paml_dat(text: str) -> SubstitutionModel:
    """Parse a PAML ``.dat`` empirical amino-acid matrix.

    Format: a strictly lower-triangular matrix of exchangeabilities (19
    rows of 1..19 numbers, whitespace/newline separated) followed by the
    20 stationary frequencies.  Comment lines and trailing prose are
    tolerated the way PAML tolerates them: we simply read the first 210
    numbers.

    PAML's row order follows the alphabet ``ARNDCQEGHILKMFPSTWYV``, which
    is exactly :data:`repro.seq.alphabet.AMINO_ACIDS`.
    """
    numbers: list[float] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("#", "//")):
            continue
        for token in line.split():
            try:
                numbers.append(float(token))
            except ValueError:
                break  # prose after the numeric block: stop this line
        if len(numbers) >= _N_EXCH + N_AA:
            break
    if len(numbers) < _N_EXCH + N_AA:
        raise ModelError(
            f"PAML matrix needs {_N_EXCH} exchangeabilities + {N_AA} "
            f"frequencies, found only {len(numbers)} numbers"
        )
    lower = numbers[:_N_EXCH]
    freqs = np.array(numbers[_N_EXCH : _N_EXCH + N_AA])

    # re-pack the strictly-lower-triangular row order into our
    # upper-triangular row-major order: lower[(i, j)] with i>j maps to
    # exchangeability (j, i)
    mat = np.zeros((N_AA, N_AA))
    k = 0
    for i in range(1, N_AA):
        for j in range(i):
            mat[i, j] = lower[k]
            mat[j, i] = lower[k]
            k += 1
    iu = np.triu_indices(N_AA, k=1)
    rates = mat[iu]
    if np.any(rates <= 0):
        raise ModelError("empirical matrix has non-positive exchangeabilities")
    total = freqs.sum()
    if not 0.9 < total < 1.1:
        raise ModelError(f"frequencies sum to {total}, not ~1")
    return SubstitutionModel(rates, freqs / total)


def read_paml_dat(path: str | Path) -> SubstitutionModel:
    """Read a PAML ``.dat`` file from disk."""
    return parse_paml_dat(Path(path).read_text())
