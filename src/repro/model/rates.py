"""Rate heterogeneity among sites: the Γ model and the PSR model.

The paper's RAxML family implements exactly two schemes:

* **Γ** [Yang 1994]: per-site rates are integrated over a discretized
  Gamma(α, α) distribution (mean 1).  With the standard 4 categories every
  CLV entry is 4× larger than under a single rate — *the* reason the Γ
  runs in Figure 3 exhaust node memory and swap on 1–2 nodes.
* **PSR** (Per-Site Rate, the model RAxML calls CAT [Stamatakis 2006],
  renamed in ExaML to avoid confusion with PhyloBayes' CAT): every site
  gets an individually optimized rate.  One category ⇒ 4× less memory,
  but the per-site rates are extra model parameters that the fork-join
  master must broadcast — an important contributor to Table I's
  "model parameters" row under PSR.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammainc
from scipy.stats import gamma as gamma_dist

from repro.errors import ModelError

__all__ = [
    "RateHeterogeneity",
    "NoRateHeterogeneity",
    "DiscreteGamma",
    "PerSiteRates",
    "discrete_gamma_rates",
    "categorize_rates",
]

#: Bounds RAxML uses for the α shape parameter.
ALPHA_MIN = 0.02
ALPHA_MAX = 100.0

#: Bounds for individually optimized per-site rates (RAxML uses similar).
PSR_MIN = 0.001
PSR_MAX = 30.0


def discrete_gamma_rates(alpha: float, n_cats: int, method: str = "mean") -> np.ndarray:
    """Discretize Gamma(α, α) into ``n_cats`` equiprobable categories.

    ``method='mean'`` uses the category means (Yang 1994 eq. 10); ``'median'``
    uses the quantile midpoints rescaled to mean one.  Returns rates of
    shape ``(n_cats,)`` with weighted mean exactly 1.
    """
    if not ALPHA_MIN <= alpha <= ALPHA_MAX:
        raise ModelError(f"alpha {alpha} outside [{ALPHA_MIN}, {ALPHA_MAX}]")
    if n_cats < 1:
        raise ModelError("need at least one rate category")
    if n_cats == 1:
        return np.ones(1)
    if method == "mean":
        # category boundaries at quantiles i/k of Gamma(shape=α, scale=1/α)
        qs = gamma_dist.ppf(np.arange(1, n_cats) / n_cats, a=alpha, scale=1.0 / alpha)
        bounds = np.concatenate([[0.0], qs, [np.inf]])
        # mean of Gamma(α, α) over [a,b] × k:
        #   k * (I(α+1, αb) − I(α+1, αa)), I = regularized lower inc. gamma
        upper = gammainc(alpha + 1.0, alpha * bounds[1:])
        lower = gammainc(alpha + 1.0, alpha * bounds[:-1])
        rates = n_cats * (upper - lower)
    elif method == "median":
        qs = gamma_dist.ppf(
            (np.arange(n_cats) + 0.5) / n_cats, a=alpha, scale=1.0 / alpha
        )
        rates = qs * n_cats / qs.sum()
    else:
        raise ModelError(f"unknown discretization method {method!r}")
    if np.any(rates <= 0):  # pragma: no cover - defensive
        raise ModelError(f"non-positive gamma rates for alpha={alpha}")
    return rates


class RateHeterogeneity:
    """Interface: a per-partition description of among-site rate variation.

    Implementations expose ``category_rates(n_patterns)`` →
    ``(rates, weights)`` where either

    * ``rates``/``weights`` have shape ``(n_cats,)`` (site-independent
      categories: Γ, uniform), or
    * ``rates`` has shape ``(n_patterns,)`` and ``weights`` is ``None``
      (site-specific rates: PSR).
    """

    #: number of CLV rate categories this model needs per pattern entry
    n_cats: int = 1
    #: True when rates are per-site (PSR) rather than per-category
    site_specific: bool = False

    def memory_categories(self) -> int:
        """CLV width multiplier (4 for Γ-4, 1 for PSR) — drives the
        paper's '£Γ needs 4× the memory of PSR' observation."""
        return self.n_cats

    def parameter_bytes(self, n_patterns: int) -> int:
        """Bytes a fork-join master must broadcast when these rate
        parameters change (Table I 'model parameters' row)."""
        raise NotImplementedError


class NoRateHeterogeneity(RateHeterogeneity):
    """A single rate of 1 for all sites (the plain GTR model)."""

    n_cats = 1
    site_specific = False

    def category_rates(self, n_patterns: int) -> tuple[np.ndarray, np.ndarray]:
        return np.ones(1), np.ones(1)

    def parameter_bytes(self, n_patterns: int) -> int:
        return 0

    def __repr__(self) -> str:
        return "NoRateHeterogeneity()"


class DiscreteGamma(RateHeterogeneity):
    """The discrete Γ model with ``n_cats`` equiprobable categories."""

    site_specific = False

    def __init__(self, alpha: float = 1.0, n_cats: int = 4, method: str = "mean") -> None:
        if n_cats < 2:
            raise ModelError("DiscreteGamma needs >= 2 categories")
        self.n_cats = int(n_cats)
        self.method = method
        self._alpha = 0.0
        self._rates: np.ndarray | None = None
        self.alpha = alpha  # validates & computes rates

    @property
    def alpha(self) -> float:
        return self._alpha

    @alpha.setter
    def alpha(self, value: float) -> None:
        rates = discrete_gamma_rates(float(value), self.n_cats, self.method)
        self._alpha = float(value)
        self._rates = rates

    def category_rates(self, n_patterns: int) -> tuple[np.ndarray, np.ndarray]:
        assert self._rates is not None
        return self._rates, np.full(self.n_cats, 1.0 / self.n_cats)

    def parameter_bytes(self, n_patterns: int) -> int:
        # one double: the α shape parameter
        return 8

    def __repr__(self) -> str:
        return f"DiscreteGamma(alpha={self._alpha:.4g}, n_cats={self.n_cats})"


class PerSiteRates(RateHeterogeneity):
    """The PSR (CAT) model: one individually optimized rate per pattern.

    Rates are stored per *pattern*; their pattern-weighted mean is kept at
    one by :meth:`normalize` so branch lengths stay identifiable.
    """

    n_cats = 1
    site_specific = True

    def __init__(self, rates: np.ndarray | None = None, n_patterns: int | None = None) -> None:
        if rates is None:
            if n_patterns is None:
                raise ModelError("PerSiteRates needs rates or n_patterns")
            rates = np.ones(n_patterns)
        self.rates = np.asarray(rates, dtype=np.float64).copy()
        if self.rates.ndim != 1 or self.rates.size == 0:
            raise ModelError("per-site rates must be a non-empty vector")
        if np.any(self.rates < PSR_MIN) or np.any(self.rates > PSR_MAX):
            raise ModelError(f"per-site rates outside [{PSR_MIN}, {PSR_MAX}]")

    def category_rates(self, n_patterns: int) -> tuple[np.ndarray, None]:
        if self.rates.shape[0] != n_patterns:
            raise ModelError(
                f"PSR has {self.rates.shape[0]} rates but partition has "
                f"{n_patterns} patterns"
            )
        return self.rates, None

    def set_rates(self, rates: np.ndarray) -> None:
        rates = np.asarray(rates, dtype=np.float64)
        if rates.shape != self.rates.shape:
            raise ModelError("rate vector shape changed")
        self.rates = np.clip(rates, PSR_MIN, PSR_MAX)

    def normalize(self, weights: np.ndarray) -> float:
        """Rescale so the pattern-weighted mean rate is one.

        Returns the scale factor applied (callers fold it into branch
        lengths to keep the likelihood invariant).
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != self.rates.shape:
            raise ModelError("weights shape mismatch")
        mean = float(np.dot(weights, self.rates) / weights.sum())
        if mean <= 0:  # pragma: no cover - defensive
            raise ModelError("degenerate per-site rates")
        self.rates = np.clip(self.rates / mean, PSR_MIN, PSR_MAX)
        return mean

    def parameter_bytes(self, n_patterns: int) -> int:
        # the full per-site rate vector must be broadcast
        return 8 * int(n_patterns)

    def __repr__(self) -> str:
        return f"PerSiteRates(n={self.rates.size}, mean={self.rates.mean():.3f})"


def categorize_rates(
    rates: np.ndarray,
    weights: np.ndarray,
    n_categories: int = 25,
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse per-site rates into at most ``n_categories`` distinct values.

    RAxML's CAT implementation does not keep one free rate per site: after
    optimization it clusters sites into a bounded number of rate
    categories (default 25), replacing each site's rate by its category
    representative.  This bounds both the number of distinct P matrices
    per branch and the model-parameter state.

    Sites are bucketed on a log-rate grid between the observed extremes;
    each bucket's representative is its weighted mean rate.  Returns
    ``(categorized_rates, category_index)``; the weighted mean of the
    result is renormalized to that of the input.
    """
    rates = np.asarray(rates, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if rates.shape != weights.shape or rates.ndim != 1:
        raise ModelError("rates/weights must be matching vectors")
    if n_categories < 1:
        raise ModelError("need at least one category")
    if rates.size == 0:
        raise ModelError("empty rate vector")
    lo, hi = float(rates.min()), float(rates.max())
    if hi / lo < 1.0 + 1e-9 or n_categories == 1:
        value = float(np.dot(weights, rates) / weights.sum())
        return np.full_like(rates, value), np.zeros(rates.size, dtype=np.intp)
    edges = np.geomspace(lo, hi, n_categories + 1)
    idx = np.clip(np.searchsorted(edges, rates, side="right") - 1, 0,
                  n_categories - 1)
    out = rates.copy()
    for c in np.unique(idx):
        mask = idx == c
        w = weights[mask]
        out[mask] = float(np.dot(w, rates[mask]) / w.sum())
    # preserve the input's weighted mean exactly
    target = float(np.dot(weights, rates) / weights.sum())
    current = float(np.dot(weights, out) / weights.sum())
    out *= target / current
    return out, idx
