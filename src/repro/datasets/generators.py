"""The paper's two dataset families, as scaled virtual workloads.

* :func:`large_unpartitioned_workload` — the 150-taxon × 20,000,000 bp
  simulated DNA alignment (12,597,450 unique patterns) of Figure 3.  We
  simulate a 150-taxon alignment with a small real pattern count and mark
  it with a ``pattern_scale`` so the performance model charges the full
  12.6 M patterns (see DESIGN.md, substitutions).
* :func:`partitioned_workload` — the 52-taxon multi-gene alignments of
  Figure 4 / Table I: ``p`` partitions of ~1000 bp each, for
  ``p ∈ {10, 50, 100, 500, 1000}``.  Per-gene GTR models, per-gene rate
  multipliers and per-gene Γ shapes give the partitions the heterogeneity
  that motivates partitioned analyses in the first place.

Both return a :class:`PaperWorkload` bundling the alignment, starting
tree and ready-to-run likelihood builders.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.substitution import SubstitutionModel
from repro.seq.alignment import Alignment
from repro.seq.partitions import PartitionScheme
from repro.seq.simulate import simulate_partitioned_alignment, simulate_alignment
from repro.tree.random_trees import random_topology, yule_tree
from repro.tree.topology import Tree
from repro.likelihood.partitioned import PartitionedLikelihood
from repro.par.ledger import WorkLedger

__all__ = [
    "PaperWorkload",
    "partitioned_workload",
    "large_unpartitioned_workload",
    "PARTITION_SERIES",
]

#: The partition counts of Figure 4 (10 … 1000 × ~1000 bp genes).
PARTITION_SERIES = (10, 50, 100, 500, 1000)

#: Figure 3's alignment dimensions.
LARGE_N_TAXA = 150
LARGE_UNIQUE_PATTERNS = 12_597_450


@dataclass
class PaperWorkload:
    """A generated benchmark dataset plus its provenance."""

    name: str
    alignment: Alignment
    scheme: PartitionScheme
    tree: Tree
    pattern_scale: float
    rng_seed: int

    def build_likelihood(
        self,
        rate_mode: str,
        per_partition_branches: bool = False,
        n_cats: int = 4,
        ledger: WorkLedger | None = None,
    ) -> PartitionedLikelihood:
        """Assemble the likelihood over a fresh copy of the starting tree."""
        tree = self.tree.copy()
        return PartitionedLikelihood.build(
            self.alignment,
            tree,
            scheme=self.scheme,
            rate_mode=rate_mode,
            n_cats=n_cats,
            per_partition_branches=per_partition_branches,
            pattern_scale=self.pattern_scale,
        )


def _random_gtr(rng: np.random.Generator) -> SubstitutionModel:
    """A biologically flavored random GTR: transitions faster than
    transversions, moderately skewed base frequencies."""
    # order: AC, AG, AT, CG, CT, GT
    rates = np.array(
        [
            rng.uniform(0.5, 2.0),
            rng.uniform(2.0, 6.0),
            rng.uniform(0.3, 1.5),
            rng.uniform(0.5, 2.0),
            rng.uniform(2.0, 6.0),
            1.0,
        ]
    )
    freqs = rng.dirichlet(np.full(4, 20.0))
    return SubstitutionModel(rates, freqs)


def partitioned_workload(
    n_partitions: int,
    n_taxa: int = 52,
    sites_per_partition: int = 48,
    virtual_sites_per_partition: int = 1000,
    seed: int = 2013,
) -> PaperWorkload:
    """One of the Figure 4 datasets: ``n_partitions`` gene-sized blocks.

    ``sites_per_partition`` real sites are simulated per gene and stand
    for ``virtual_sites_per_partition`` (the paper's ~1000 bp average gene
    length) in the performance model.
    """
    rng = np.random.default_rng((seed, n_partitions))
    taxa = [f"taxon{i:02d}" for i in range(n_taxa)]
    true_tree = yule_tree(taxa, rng=rng, mean_branch_length=0.09)
    models = [_random_gtr(rng) for _ in range(n_partitions)]
    alphas = [float(rng.uniform(0.3, 1.5)) for _ in range(n_partitions)]
    multipliers = [float(rng.uniform(0.5, 2.0)) for _ in range(n_partitions)]
    alignment = simulate_partitioned_alignment(
        true_tree,
        models,
        [sites_per_partition] * n_partitions,
        rng=rng,
        gamma_alphas=alphas,
        partition_rate_multipliers=multipliers,
    )
    scheme = PartitionScheme.contiguous_blocks(
        [sites_per_partition] * n_partitions,
        names=[f"gene{i:04d}" for i in range(n_partitions)],
    )
    start = random_topology(taxa, rng=rng, default_length=0.08)
    return PaperWorkload(
        name=f"52taxa_{n_partitions}part",
        alignment=alignment,
        scheme=scheme,
        tree=start,
        pattern_scale=virtual_sites_per_partition / sites_per_partition,
        rng_seed=seed,
    )


def large_unpartitioned_workload(
    n_taxa: int = LARGE_N_TAXA,
    real_sites: int = 600,
    virtual_patterns: float = LARGE_UNIQUE_PATTERNS,
    seed: int = 150,
) -> PaperWorkload:
    """Figure 3's 150 × 20,000,000 bp alignment as a scaled workload.

    The real alignment drives a genuine tree search; the ``pattern_scale``
    makes every kernel charge the full 12,597,450-pattern cost so the
    simulated runtimes, memory footprints and message sizes are those of
    the paper's dataset.
    """
    rng = np.random.default_rng(seed)
    taxa = [f"species{i:03d}" for i in range(n_taxa)]
    true_tree = yule_tree(taxa, rng=rng, mean_branch_length=0.07)
    model = _random_gtr(rng)
    alignment = simulate_alignment(
        true_tree, model, real_sites, rng=rng, gamma_alpha=0.8
    )
    scheme = PartitionScheme.single(alignment.n_sites, name="genome")
    # scale relative to the *compressed* pattern count so the virtual
    # pattern total hits the paper's number exactly
    real_patterns = alignment.compress().n_patterns
    start = random_topology(taxa, rng=rng, default_length=0.08)
    return PaperWorkload(
        name="150taxa_20Mbp",
        alignment=alignment,
        scheme=scheme,
        tree=start,
        pattern_scale=virtual_patterns / real_patterns,
        rng_seed=seed,
    )
