"""Generators for the paper's benchmark workloads."""

from repro.datasets.generators import (
    PaperWorkload,
    partitioned_workload,
    large_unpartitioned_workload,
    PARTITION_SERIES,
    LARGE_N_TAXA,
    LARGE_UNIQUE_PATTERNS,
)

__all__ = [
    "PaperWorkload",
    "partitioned_workload",
    "large_unpartitioned_workload",
    "PARTITION_SERIES",
    "LARGE_N_TAXA",
    "LARGE_UNIQUE_PATTERNS",
]
