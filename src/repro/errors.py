"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library errors without also
swallowing programming mistakes (``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AlignmentError(ReproError):
    """Malformed alignment data: ragged rows, unknown characters, empty input."""


class NewickError(ReproError):
    """Syntax or semantic error while parsing or writing Newick trees."""


class TreeError(ReproError):
    """Invalid tree manipulation: bad degree, missing edge, broken rearrangement."""


class ModelError(ReproError):
    """Invalid substitution-model or rate-heterogeneity configuration."""


class LikelihoodError(ReproError):
    """Numerical or structural failure inside the likelihood machinery."""


class CommError(ReproError):
    """Failure inside the virtual-MPI communication layer."""


class RankFailureError(CommError):
    """One or more peer ranks died or went silent mid-run.

    ``failed_ranks`` holds the failed ranks in the numbering of the
    communicator that detected the failure.  Survivors catch this, agree
    on the failed set (:meth:`MPComm.agree`), shrink the communicator
    (:meth:`MPComm.shrink`) and — in the de-centralized scheme — resume.
    """

    def __init__(self, failed_ranks, message: str = "") -> None:
        self.failed_ranks = frozenset(int(r) for r in failed_ranks)
        super().__init__(
            message or f"rank(s) {sorted(self.failed_ranks)} failed"
        )


class DistributionError(ReproError):
    """Infeasible or inconsistent data-distribution request."""


class SearchError(ReproError):
    """Tree-search driver failure (non-convergence, invalid configuration)."""


class CheckpointError(ReproError):
    """Corrupt or incompatible checkpoint file."""
