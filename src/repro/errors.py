"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library errors without also
swallowing programming mistakes (``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AlignmentError(ReproError):
    """Malformed alignment data: ragged rows, unknown characters, empty input."""


class NewickError(ReproError):
    """Syntax or semantic error while parsing or writing Newick trees."""


class TreeError(ReproError):
    """Invalid tree manipulation: bad degree, missing edge, broken rearrangement."""


class ModelError(ReproError):
    """Invalid substitution-model or rate-heterogeneity configuration."""


class LikelihoodError(ReproError):
    """Numerical or structural failure inside the likelihood machinery."""


class CommError(ReproError):
    """Failure inside the virtual-MPI communication layer."""


class RankFailureError(CommError):
    """One or more peer ranks died or went silent mid-run.

    ``failed_ranks`` holds the failed ranks in the numbering of the
    communicator that detected the failure.  Survivors catch this, agree
    on the failed set (:meth:`MPComm.agree`), shrink the communicator
    (:meth:`MPComm.shrink`) and — in the de-centralized scheme — resume.
    """

    def __init__(self, failed_ranks, message: str = "") -> None:
        self.failed_ranks = frozenset(int(r) for r in failed_ranks)
        super().__init__(
            message or f"rank(s) {sorted(self.failed_ranks)} failed"
        )


class ReplicaDivergenceError(CommError):
    """The ranks' replicas issued inconsistent collectives.

    Raised on *every* rank by
    :class:`~repro.par.sanitize.SanitizingComm` when a cross-rank check
    finds the ranks disagreeing about the collective they are in — the
    verb, its Table-I tag, the reduce op, the payload shape, or the hash
    of the previous collective's (rank-symmetric) result.  Divergence is
    a *program bug*, not a fault: this deliberately derives from
    :class:`CommError` but not :class:`RankFailureError`, so the
    decentralized recovery loop does not try to "recover" from it.

    ``call_index`` is the 0-based index of the first diverging
    collective (counted since launch or since the last shrink);
    ``diverging_ranks`` are the ranks that disagreed with the majority.
    """

    def __init__(self, call_index: int, diverging_ranks,
                 details: str = "") -> None:
        self.call_index = int(call_index)
        self.diverging_ranks = tuple(
            sorted(int(r) for r in diverging_ranks)
        )
        self.details = details
        message = (
            f"replica divergence at collective #{self.call_index}: "
            f"rank(s) {list(self.diverging_ranks)} disagree with the "
            "majority"
        )
        if details:
            message += "\n" + details
        super().__init__(message)


class MasterLostError(CommError):
    """The fork-join master (rank 0) died: the only copy of the search
    state is gone.

    In-run this is unrecoverable (the paper's "catastrophic" case), but
    it is *not* corrupt state: a supervising layer can restart the run
    from the latest durable checkpoint on a fresh mesh.  ``checkpoint``
    names that checkpoint when one exists (``None`` otherwise), so the
    supervisor can distinguish "restartable from checkpoint" from
    "restart from scratch".
    """

    def __init__(self, failed_ranks, checkpoint: str | None = None,
                 message: str = "") -> None:
        self.failed_ranks = frozenset(int(r) for r in failed_ranks)
        self.checkpoint = checkpoint
        suffix = (f" (restartable from checkpoint {checkpoint})"
                  if checkpoint else " (no checkpoint: restart from scratch)")
        super().__init__(
            message
            or "fork-join master died: the only copy of the search state "
               f"is lost{suffix}"
        )


class QuorumLostError(CommError):
    """The mesh shrank below the supervising policy's rank quorum.

    Raised by the decentralized recovery loop *instead of resuming* when
    a recovery would leave fewer than ``min_ranks`` survivors: the
    shrunk mesh could still finish, but the policy judges the run too
    degraded to be worth the wall-clock.  Like
    :class:`ReplicaDivergenceError`, this deliberately is not a
    :class:`RankFailureError` — the in-mesh recovery loop must not catch
    it; the remedy (a tier-2 restart at a different width) lives in the
    supervisor above the run.
    """

    def __init__(self, survivors: int, min_ranks: int,
                 failed_ranks=()) -> None:
        self.survivors = int(survivors)
        self.min_ranks = int(min_ranks)
        self.failed_ranks = frozenset(int(r) for r in failed_ranks)
        super().__init__(
            f"quorum lost: {survivors} survivor(s) after recovery, "
            f"policy requires at least {min_ranks}"
        )


class DistributionError(ReproError):
    """Infeasible or inconsistent data-distribution request."""


class SearchError(ReproError):
    """Tree-search driver failure (non-convergence, invalid configuration)."""


class CheckpointError(ReproError):
    """Corrupt or incompatible checkpoint file."""
