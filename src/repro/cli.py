"""Command-line interface: ``python -m repro <command>``.

Commands mirror the RAxML-Light/ExaML workflow the paper describes:

* ``infer``    — maximum-likelihood tree search on a FASTA/PHYLIP/binary
  alignment, optionally partitioned, under Γ or PSR, with checkpointing
  (``-M`` selects per-partition branch lengths, ``-Q`` monolithic data
  distribution for the simulated-performance report);
* ``simulate`` — generate a benchmark alignment along a random tree;
* ``convert``  — convert alignments between FASTA/PHYLIP/binary formats;
* ``report``   — run an instrumented search and print the Table-I style
  communication breakdown plus simulated runtimes for both engines;
* ``profile``  — run the engines live on real processes with span tracing
  on, export per-rank JSONL + a merged Chrome/Perfetto trace, and
  reconcile measured collective bytes against the analytic comm models
  (``--trace-out``, ``--trace-format``, ``--reconcile``, ``--summary``);
* ``scale``    — measured scaling: run both engines live across rank
  counts and data distributions, attribute traced spans into busy/wait
  time, and emit speedup/efficiency tables (``BENCH_scaling.json`` + a
  markdown report) alongside the analytic model's predicted ordering;
* ``regress``  — gate a ``BENCH_*.json`` record against prior baselines
  (median comparison with noise-tolerant thresholds; report-only until
  enough baselines exist; defaults to the committed ``benchmarks/``
  records plus the run registry's bench snapshots);
* ``watch``    — live per-rank table (phase, logL, beat age, stall
  flags) over a monitored run's heartbeat channel;
* ``runs``     — query the persistent run registry (``.repro_runs/``):
  ``list`` history, ``show`` one manifest, ``compare`` bench metrics.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def _load_alignment(path: str):
    from repro.seq.binary import read_binary_alignment
    from repro.seq.io_fasta import read_fasta
    from repro.seq.io_phylip import read_phylip

    p = Path(path)
    suffix = p.suffix.lower()
    if suffix in (".fasta", ".fa", ".fna"):
        return read_fasta(p)
    if suffix in (".phy", ".phylip"):
        return read_phylip(p)
    if suffix in (".rba", ".bin"):
        return read_binary_alignment(p)
    # sniff
    head = p.read_bytes()[:4]
    if head == b"RBA1":
        return read_binary_alignment(p)
    if head[:1] == b">":
        return read_fasta(p)
    return read_phylip(p)


def _write_alignment(alignment, path: str) -> None:
    from repro.seq.binary import write_binary_alignment
    from repro.seq.io_fasta import write_fasta
    from repro.seq.io_phylip import write_phylip

    p = Path(path)
    suffix = p.suffix.lower()
    if suffix in (".fasta", ".fa", ".fna"):
        write_fasta(alignment, p)
    elif suffix in (".phy", ".phylip"):
        write_phylip(alignment, p)
    elif suffix in (".rba", ".bin"):
        write_binary_alignment(alignment, p)
    else:
        raise SystemExit(f"cannot infer output format from {path!r}")


def _cmd_infer(args: argparse.Namespace) -> int:
    from repro.likelihood.backend import SequentialBackend
    from repro.likelihood.partitioned import PartitionedLikelihood
    from repro.search.checkpoint import load_checkpoint, restore_into, save_checkpoint
    from repro.search.search import SearchConfig, hill_climb
    from repro.seq.partitions import read_partition_file
    from repro.tree.newick import parse_newick, write_newick
    from repro.tree.random_trees import random_topology

    if args.checkpoint_every and not args.checkpoint:
        raise SystemExit("--checkpoint-every needs --checkpoint PATH")
    if args.engine != "sequential" and args.resume:
        raise SystemExit("--resume is only supported with --engine sequential")
    if args.supervise and args.engine == "sequential":
        raise SystemExit("--supervise needs a distributed engine")
    if args.supervise and args.sanitize:
        raise SystemExit("--supervise does not compose with --sanitize yet")
    if args.sanitize and args.engine != "decentralized":
        raise SystemExit(
            "--sanitize needs --engine decentralized: only the "
            "decentralized scheme runs replica-symmetric collectives "
            "(fork-join is master/worker-asymmetric by design)")
    if args.monitor and args.engine == "sequential":
        raise SystemExit(
            "--monitor needs a distributed engine (the heartbeat "
            "channel observes per-rank collectives)")
    if args.cancellable and args.engine == "sequential":
        raise SystemExit(
            "--cancellable needs a distributed engine (the launcher "
            "forwards SIGTERM into the rank mesh)")
    if args.trace_dir and args.engine == "sequential":
        raise SystemExit(
            "--trace-dir needs a distributed engine (spans are "
            "per-rank; use 'repro profile' for single-host tracing)")
    if args.cancellable:
        # Arm the cooperative flag before any heavy setup: a SIGTERM
        # that races against job startup (e.g. a service cancelling a
        # just-launched job) must be remembered, not die by default
        # action — the launcher's relay takes over once the mesh is up,
        # and forked ranks inherit both this handler and a set flag.
        from repro.engines.cancel import install_sigterm_flag, reset_cancel

        reset_cancel()  # a stale flag from an earlier in-process run
        install_sigterm_flag()

    alignment = _load_alignment(args.alignment)
    scheme = read_partition_file(args.partitions) if args.partitions else None
    if args.starting_tree:
        tree = parse_newick(Path(args.starting_tree).read_text())
    else:
        tree = random_topology(alignment.taxa, rng=args.seed)
    lik = PartitionedLikelihood.build(
        alignment,
        tree,
        scheme=scheme,
        rate_mode=args.model,
        per_partition_branches=args.per_partition_branches,
    )
    config = SearchConfig(
        max_iterations=args.iterations,
        radius_max=args.radius,
        optimize_gtr=not args.no_gtr,
        epsilon=args.epsilon,
        checkpoint_every=args.checkpoint_every,
        # cancellable runs write a *final* checkpoint at the cancel
        # boundary even without periodic checkpointing enabled
        checkpoint_path=(args.checkpoint
                         if (args.checkpoint_every or args.cancellable)
                         else None),
    )

    from repro.obs.context import current_trace_id, new_trace_id

    # End-to-end trace context: the serve daemon hands us its trace_id
    # (flag or env) so our rank spans merge with its scheduler spans;
    # a standalone traced run mints its own.
    trace_id = args.trace_id or current_trace_id()
    trace_dir = Path(args.trace_dir) if args.trace_dir else None
    if trace_dir is not None and not trace_id:
        trace_id = new_trace_id()

    registry = run_id = None
    if not args.no_register:
        from repro.obs.registry import RunRegistry

        registry = RunRegistry()
        fields = {
            "command": "infer",
            "engine": args.engine,
            "ranks": args.ranks if args.engine != "sequential" else 1,
            "dist": args.dist,
            "seed": args.seed,
            "alignment": str(args.alignment),
            "config": {
                "iterations": args.iterations, "radius": args.radius,
                "epsilon": args.epsilon, "model": args.model,
                "per_partition_branches": args.per_partition_branches,
            },
            "inject_failure": args.inject_failure,
        }
        if trace_id:
            fields["trace_id"] = trace_id
        if trace_dir is not None:
            fields["trace_dir"] = str(trace_dir)
        if args.run_id:
            # attach to a pre-registered manifest (the serve daemon
            # registers the job first, then launches this process)
            run_id = args.run_id
            registry.attach(run_id, **fields)
            print(f"run {run_id} attached under {registry.root}",
                  file=sys.stderr)
        else:
            run_id = registry.register(fields)
            print(f"run {run_id} registered under {registry.root}",
                  file=sys.stderr)

    if args.engine != "sequential":
        from repro.engines.launch import run_decentralized, run_forkjoin
        from repro.errors import MasterLostError
        from repro.par.faultcomm import FaultPlan

        plan = (FaultPlan.parse(args.inject_failure)
                if args.inject_failure else None)
        start_newick = write_newick(tree)

        if args.supervise:
            # The escalation ladder owns the whole run lifecycle: per-
            # attempt monitoring, checkpoint-resume restarts, degraded
            # relaunches, and the attempt chain in the registry.
            from repro.supervise import RecoveryPolicy, Supervisor

            policy = RecoveryPolicy(
                max_attempts=args.max_attempts,
                min_ranks=args.min_ranks,
                backoff_base_s=args.backoff,
                attempt_timeout_s=args.attempt_timeout,
            )
            work_dir = (registry.root / run_id / "supervise"
                        if registry is not None else None)
            supervisor = Supervisor(
                policy, engine=args.engine, work_dir=work_dir,
                registry=registry, run_id=run_id, rng=args.seed,
                detect_timeout=args.detect_timeout, monitor=args.monitor,
                cancellable=args.cancellable,
                trace_dir=trace_dir, trace_id=trace_id,
                log=lambda msg: print(msg, file=sys.stderr),
            )
            outcome = supervisor.run(
                lik.parts, lik.taxa, start_newick, args.ranks,
                config=config, dist_kind=args.dist, fault_plan=plan)
            if registry is not None:
                result = ({"logl": outcome.result.logl,
                           "iterations": outcome.result.iterations,
                           "recoveries": outcome.result.recoveries,
                           "restarts": outcome.result.restarts}
                          if outcome.result is not None
                          and (outcome.ok or outcome.cancelled)
                          else None)
                status = ("completed" if outcome.ok
                          else "cancelled" if outcome.cancelled
                          else "failed")
                fields = {"status": status, "result": result}
                if outcome.cancelled and config.checkpoint_path:
                    fields["cancel"] = {
                        "checkpoint": str(config.checkpoint_path)}
                registry.update(run_id, **fields)
            if outcome.cancelled:
                from repro.engines.cancel import CANCEL_EXIT_CODE

                res = outcome.result
                print(f"cancelled after {res.iterations} iteration(s), "
                      f"logL = {res.logl:.4f}", file=sys.stderr)
                return CANCEL_EXIT_CODE
            if not outcome.ok:
                print(outcome.error, file=sys.stderr)
                if outcome.diagnosis:
                    print(f"first stall diagnosis: "
                          f"{outcome.diagnosis.get('message')}",
                          file=sys.stderr)
                return 1
            res = outcome.result
            if len(outcome.attempts) > 1:
                final = outcome.attempts[-1]
                print(f"supervised: succeeded on attempt "
                      f"{final.attempt} (tier {final.tier}, "
                      f"{final.ranks} rank(s), {final.dist})",
                      file=sys.stderr)
            newick = res.newick
            if args.output:
                Path(args.output).write_text(newick + "\n")
            else:
                print(newick)
            print(f"logL = {res.logl:.4f} after {res.iterations} "
                  f"iterations ({args.engine} supervised, "
                  f"{len(outcome.attempts)} attempt(s))", file=sys.stderr)
            return 0

        monitor_dir = None
        monitor_thread = None
        if args.monitor:
            from repro.obs.monitor import MonitorThread

            monitor_dir = args.monitor_dir or (
                str(registry.root / run_id / "monitor") if run_id
                else "monitor")
            Path(monitor_dir).mkdir(parents=True, exist_ok=True)
            monitor_thread = MonitorThread(
                monitor_dir,
                diagnosis_path=args.diagnosis_out,
                straggler_after=args.straggler_after,
                stall_after=args.stall_after,
                on_diagnosis=lambda d: print(
                    f"[monitor] {d.status}: {d.message}", file=sys.stderr),
            ).start()
            if registry is not None:
                registry.update(run_id, monitor_dir=str(monitor_dir))
            print(f"monitoring -> {monitor_dir} "
                  f"(watch with: repro watch {run_id or monitor_dir})",
                  file=sys.stderr)
        status, res = "failed", None
        failure = None
        try:
            if args.engine == "decentralized":
                replicas = run_decentralized(
                    lik.parts, lik.taxa, start_newick, n_ranks=args.ranks,
                    config=config, dist_kind=args.dist, fault_plan=plan,
                    detect_timeout=args.detect_timeout,
                    sanitize=args.sanitize,
                    monitor_dir=monitor_dir,
                    beat_interval=args.beat_interval,
                    cancellable=args.cancellable,
                    trace_dir=trace_dir, trace_id=trace_id,
                )
                survivors = [r for r in replicas if r is not None]
                if not survivors:
                    raise SystemExit("no surviving replicas")
                res = survivors[0]
                if res.failed_ranks:
                    print(
                        f"rank(s) {list(res.failed_ranks)} failed; recovered "
                        f"in-run ({res.recoveries} recovery round(s), "
                        f"{len(survivors)} survivor(s))",
                        file=sys.stderr,
                    )
            else:
                res = run_forkjoin(
                    lik.parts, lik.taxa, start_newick, n_ranks=args.ranks,
                    config=config, dist_kind=args.dist, fault_plan=plan,
                    detect_timeout=args.detect_timeout,
                    monitor_dir=monitor_dir,
                    beat_interval=args.beat_interval,
                    cancellable=args.cancellable,
                    trace_dir=trace_dir, trace_id=trace_id,
                )
                if res.restarts:
                    print(f"worker failure: restarted {res.restarts} time(s) "
                          f"from checkpoint", file=sys.stderr)
            status = "cancelled" if res.cancelled else "completed"
        except MasterLostError as exc:
            # Typed catastrophic outcome: record *why* the run failed
            # (and whether a checkpoint survives) in the manifest, so
            # `repro runs show` explains the failure without log spelunking.
            failure = {
                "error": "master_lost",
                "message": str(exc),
                "failed_ranks": sorted(exc.failed_ranks),
                "checkpoint": exc.checkpoint,
            }
            print(f"fork-join master lost: {exc}", file=sys.stderr)
            if exc.checkpoint:
                print(f"restart with --supervise (or resume from "
                      f"{exc.checkpoint})", file=sys.stderr)
        finally:
            diagnosis = None
            if monitor_thread is not None:
                monitor_thread.poll_once()  # final state, post-join
                stall = monitor_thread.stop()
                if stall is not None:
                    diagnosis = stall.to_dict()
                    print(f"[monitor] diagnosis: {stall.message} "
                          f"(written to {monitor_thread.diagnosis_path})",
                          file=sys.stderr)
            if registry is not None:
                result = (
                    {
                        "logl": res.logl,
                        "iterations": res.iterations,
                        "recoveries": res.recoveries,
                        "failed_ranks": list(res.failed_ranks),
                        "restarts": res.restarts,
                    }
                    if res is not None else None
                )
                fields = {"status": status, "result": result,
                          "diagnosis": diagnosis}
                if failure is not None:
                    fields["failure"] = failure
                if status == "cancelled" and config.checkpoint_path:
                    fields["cancel"] = {
                        "checkpoint": str(config.checkpoint_path)}
                registry.update(run_id, **fields)
        if res is None:
            return 1
        if res.cancelled:
            from repro.engines.cancel import CANCEL_EXIT_CODE

            print(f"cancelled after {res.iterations} iteration(s), "
                  f"logL = {res.logl:.4f}"
                  + (f"; checkpoint at {config.checkpoint_path}"
                     if config.checkpoint_path else ""),
                  file=sys.stderr)
            return CANCEL_EXIT_CODE
        newick = res.newick
        if args.output:
            Path(args.output).write_text(newick + "\n")
        else:
            print(newick)
        print(f"logL = {res.logl:.4f} after {res.iterations} iterations "
              f"({args.engine} on {args.ranks} ranks)", file=sys.stderr)
        return 0

    backend = SequentialBackend(lik)
    if args.resume:
        meta, arrays = load_checkpoint(args.resume)
        restore_into(lik, meta, arrays)
        backend.tree = lik.tree
        tree = lik.tree
        print(f"resumed from {args.resume} (iteration {meta['iteration']})",
              file=sys.stderr)
    result = hill_climb(backend, config)
    newick = write_newick(tree)
    if registry is not None:
        registry.update(run_id, status="completed", result={
            "logl": result.logl, "iterations": result.iterations,
            "converged": result.converged,
        })
    if args.output:
        Path(args.output).write_text(newick + "\n")
    else:
        print(newick)
    print(f"logL = {result.logl:.4f} after {result.iterations} iterations "
          f"({'converged' if result.converged else 'iteration cap'})",
          file=sys.stderr)
    if args.checkpoint:
        save_checkpoint(args.checkpoint, lik, result.iterations,
                        config.radius_max, result.logl)
        print(f"checkpoint written to {args.checkpoint}", file=sys.stderr)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.model.substitution import GTR
    from repro.seq.simulate import simulate_alignment
    from repro.tree.newick import write_newick
    from repro.tree.random_trees import yule_tree

    rng = np.random.default_rng(args.seed)
    taxa = [f"t{i:04d}" for i in range(args.taxa)]
    tree = yule_tree(taxa, rng=rng, mean_branch_length=args.branch_length)
    model = GTR(
        np.append(rng.uniform(0.5, 4.0, 5), 1.0), rng.dirichlet(np.full(4, 20.0))
    )
    alignment = simulate_alignment(
        tree, model, args.sites, rng=rng,
        gamma_alpha=args.alpha if args.alpha > 0 else None,
    )
    _write_alignment(alignment, args.output)
    if args.tree_out:
        Path(args.tree_out).write_text(write_newick(tree) + "\n")
    print(f"wrote {args.taxa} x {args.sites} alignment to {args.output}",
          file=sys.stderr)
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    alignment = _load_alignment(args.input)
    _write_alignment(alignment, args.output)
    print(f"{args.input} -> {args.output} "
          f"({alignment.n_taxa} taxa x {alignment.n_sites} sites)",
          file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.engines.recording import RecordingBackend
    from repro.bench import EXAML, RAXML_LIGHT
    from repro.likelihood.partitioned import PartitionedLikelihood
    from repro.perf.costmodel import WorkloadMeta
    from repro.perf.report import table1_rows
    from repro.perf.runtime_sim import simulate_runtime
    from repro.dist.distributions import auto_distribution
    from repro.par.machine import HITS_CLUSTER
    from repro.search.search import SearchConfig, hill_climb
    from repro.seq.partitions import read_partition_file
    from repro.tree.random_trees import random_topology

    alignment = _load_alignment(args.alignment)
    scheme = read_partition_file(args.partitions) if args.partitions else None
    tree = random_topology(alignment.taxa, rng=args.seed)
    lik = PartitionedLikelihood.build(
        alignment, tree, scheme=scheme, rate_mode=args.model,
        per_partition_branches=args.per_partition_branches,
    )
    backend = RecordingBackend(lik)
    hill_climb(backend, SearchConfig(max_iterations=args.iterations,
                                     radius_max=args.radius))

    print("fork-join communication breakdown (Table I):")
    for key, val in table1_rows(backend.log).items():
        print(f"  {key:<42}{val:>14.2f}")

    meta = WorkloadMeta.from_likelihood(lik)
    print(f"\nsimulated runtimes on {HITS_CLUSTER.name}:")
    print(f"{'ranks':>7}{'ExaML [s]':>12}{'RAxML-Light [s]':>17}{'speedup':>9}")
    for ranks in args.ranks:
        dist = auto_distribution(meta.cost_patterns, ranks,
                                 use_mps=args.mps or None)
        ex = simulate_runtime(backend.log, EXAML, meta, HITS_CLUSTER, dist)
        li = simulate_runtime(backend.log, RAXML_LIGHT, meta, HITS_CLUSTER, dist)
        print(f"{ranks:>7}{ex.total_s:>12.3f}{li.total_s:>17.3f}"
              f"{li.total_s / ex.total_s:>9.2f}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Live 2-engine profiling: trace, export, reconcile."""
    import time

    from repro.engines.launch import run_decentralized, run_forkjoin
    from repro.likelihood.partitioned import PartitionedLikelihood
    from repro.obs.export import (
        merge_rank_streams,
        rank_trace_path,
        write_chrome_trace,
    )
    from repro.obs.reconcile import (
        DECENTRALIZED_REL_TOL,
        FORKJOIN_REL_TOL,
        reconcile_live_run,
    )
    from repro.search.search import SearchConfig
    from repro.seq.partitions import read_partition_file
    from repro.tree.newick import write_newick
    from repro.tree.random_trees import random_topology

    alignment = _load_alignment(args.alignment)
    scheme = read_partition_file(args.partitions) if args.partitions else None
    tree = random_topology(alignment.taxa, rng=args.seed)
    config = SearchConfig(max_iterations=args.iterations,
                          radius_max=args.radius)
    engines = (["decentralized", "forkjoin"] if args.engine == "both"
               else [args.engine])
    trace_root = Path(args.trace_out)
    bench: dict = {
        "kind": "obs_profile",
        "alignment": str(args.alignment),
        "ranks": args.ranks,
        "iterations": args.iterations,
        "engines": {},
    }
    all_within = True

    for engine in engines:
        # fresh likelihood per engine: the search mutates model state
        lik = PartitionedLikelihood.build(
            alignment, tree, scheme=scheme, rate_mode=args.model,
            per_partition_branches=args.per_partition_branches,
        )
        newick = write_newick(tree)
        trace_dir = trace_root / engine
        # replicheck: ignore[R004] -- driver-side wall-clock benchmarking in the CLI process, outside any replica
        t0 = time.perf_counter()
        if engine == "decentralized":
            replicas = run_decentralized(
                lik.parts, lik.taxa, newick, n_ranks=args.ranks,
                config=config, dist_kind=args.dist,
                n_branch_sets=lik.n_branch_sets, trace_dir=trace_dir,
            )
            # a non-root replica measures exactly one payload per
            # allreduce (the model's convention); see obs.reconcile
            measured_rank = 1 if args.ranks > 1 else 0
            res = replicas[measured_rank]
        else:
            res = run_forkjoin(
                lik.parts, lik.taxa, newick, n_ranks=args.ranks,
                config=config, dist_kind=args.dist,
                n_branch_sets=lik.n_branch_sets, trace_dir=trace_dir,
            )
            measured_rank = 0
        # replicheck: ignore[R004] -- driver-side wall-clock benchmarking in the CLI process, outside any replica
        wall_s = time.perf_counter() - t0

        rank_paths = [rank_trace_path(trace_dir, r)
                      for r in range(args.ranks)]
        rank_paths = [p for p in rank_paths if p.exists()]
        merged = merge_rank_streams(rank_paths)
        chrome_path = None
        if args.trace_format == "chrome":
            chrome_path = trace_dir / "trace.chrome.json"
            write_chrome_trace(merged, chrome_path)
        print(f"[{engine}] {args.ranks} ranks, {wall_s:.2f}s wall, "
              f"{len(merged)} spans from {len(rank_paths)} rank stream(s)"
              + (f" -> {chrome_path}" if chrome_path else ""),
              file=sys.stderr)

        from repro.obs.analyze import attribute_wait

        analysis = attribute_wait(merged)
        if analysis.dropped_spans:
            print(f"WARNING [{engine}]: {analysis.dropped_spans} span(s) "
                  f"dropped by the tracer ring buffer — the trace is "
                  f"truncated and per-rank shares are unreliable; raise "
                  f"the capacity (trace_capacity) or shorten the run",
                  file=sys.stderr)
        if args.summary:
            print(f"[{engine}] per-rank attribution:")
            print(analysis.format_table())

        entry: dict = {
            "wall_s": wall_s,
            "logl": res.logl,
            "bytes_by_tag": dict(res.bytes_by_tag),
            "n_spans": len(merged),
            "trace_dir": str(trace_dir),
            "wait_share": analysis.wait_share,
            "imbalance": analysis.imbalance,
            "dropped_spans": analysis.dropped_spans,
        }
        if args.reconcile:
            report = reconcile_live_run(
                lik.parts, lik.taxa, newick, config, engine,
                res.bytes_by_tag, measured_calls_by_tag=res.calls_by_tag,
                n_branch_sets=lik.n_branch_sets,
                measured_rank=measured_rank,
            )
            tolerance = args.tolerance
            if tolerance is None:
                tolerance = (DECENTRALIZED_REL_TOL
                             if engine == "decentralized"
                             else FORKJOIN_REL_TOL)
            within = report.within(tolerance)
            all_within = all_within and within
            print(report.format_table())
            print(f"tolerance (max relative byte error): {tolerance:g} -> "
                  f"{'OK' if within else 'OUT OF TOLERANCE'}")
            entry["reconcile"] = report.to_dict()
            entry["tolerance"] = tolerance
            entry["within_tolerance"] = within
        bench["engines"][engine] = entry

    # flat higher-is-worse metrics for `repro regress`
    bench["metrics"] = {
        f"profile.{engine}.{key}": entry[key]
        for engine, entry in bench["engines"].items()
        for key in ("wall_s", "wait_share", "imbalance")
    }
    if args.bench_out:
        import json

        Path(args.bench_out).write_text(json.dumps(bench, indent=2) + "\n")
        print(f"bench record written to {args.bench_out}", file=sys.stderr)
    if not args.no_register:
        # every profile run feeds the registry's rolling baseline pool,
        # so `repro regress` has history without any CI bookkeeping
        from repro.obs.registry import RunRegistry

        registry = RunRegistry()
        run_id = registry.register({
            "command": "profile",
            "engine": args.engine,
            "ranks": args.ranks,
            "dist": args.dist,
            "seed": args.seed,
            "alignment": str(args.alignment),
            "config": {"iterations": args.iterations,
                       "radius": args.radius, "model": args.model},
            "status": "completed",
            "result": {"logl": {e: v["logl"]
                                for e, v in bench["engines"].items()}},
            "trace_dir": str(trace_root),
        })
        registry.record_bench(run_id, bench)
        print(f"run {run_id} registered with bench snapshot under "
              f"{registry.root}", file=sys.stderr)
    if args.reconcile and not all_within:
        print("reconciliation failed: measured bytes deviate from the "
              "comm model beyond tolerance", file=sys.stderr)
        return 1
    return 0


def _cmd_hotspots(args: argparse.Namespace) -> int:
    """Kernel-level hotspots: ranked per-op table, roofline, CLV memory."""
    import time

    from repro.obs.export import merge_rank_streams
    from repro.obs.hotspots import build_hotspot_report
    from repro.par.machine import HITS_CLUSTER

    if args.from_trace is None and args.alignment is None:
        print("hotspots needs an alignment (live mode) or --from-trace",
              file=sys.stderr)
        return 2

    if args.from_trace is not None:
        # Offline: re-analyze an existing trace directory.  No workload
        # is available, so CLV memory is reported but not reconciled.
        trace_dir = Path(args.from_trace)
        paths = sorted(trace_dir.rglob("trace-rank*.jsonl"))
        if not paths:
            print(f"no trace-rank*.jsonl under {trace_dir}", file=sys.stderr)
            return 2
        merged = merge_rank_streams(paths)
        report = build_hotspot_report(merged, machine=HITS_CLUSTER)
        problems = report.check(check_memory=False)
        print(report.format_markdown(top=args.top))
        return _finish_hotspots(args, {"offline": report}, problems,
                                trace_root=trace_dir)

    from repro.engines.launch import run_decentralized, run_forkjoin
    from repro.likelihood.partitioned import PartitionedLikelihood
    from repro.obs.export import rank_trace_path
    from repro.search.search import SearchConfig
    from repro.seq.partitions import read_partition_file
    from repro.tree.newick import write_newick
    from repro.tree.random_trees import random_topology

    alignment = _load_alignment(args.alignment)
    scheme = read_partition_file(args.partitions) if args.partitions else None
    tree = random_topology(alignment.taxa, rng=args.seed)
    config = SearchConfig(max_iterations=args.iterations,
                          radius_max=args.radius)
    engines = (["decentralized", "forkjoin"] if args.engine == "both"
               else [args.engine])
    trace_root = Path(args.trace_out)
    reports: dict = {}
    problems: list[str] = []

    for engine in engines:
        # fresh likelihood per engine: the search mutates model state
        lik = PartitionedLikelihood.build(
            alignment, tree, scheme=scheme, rate_mode=args.model,
            per_partition_branches=args.per_partition_branches,
        )
        newick = write_newick(tree)
        trace_dir = trace_root / engine
        # replicheck: ignore[R004] -- driver-side wall-clock benchmarking in the CLI process, outside any replica
        t0 = time.perf_counter()
        if engine == "decentralized":
            run_decentralized(
                lik.parts, lik.taxa, newick, n_ranks=args.ranks,
                config=config, dist_kind=args.dist,
                n_branch_sets=lik.n_branch_sets, trace_dir=trace_dir,
            )
        else:
            run_forkjoin(
                lik.parts, lik.taxa, newick, n_ranks=args.ranks,
                config=config, dist_kind=args.dist,
                n_branch_sets=lik.n_branch_sets, trace_dir=trace_dir,
            )
        # replicheck: ignore[R004] -- driver-side wall-clock benchmarking in the CLI process, outside any replica
        wall_s = time.perf_counter() - t0

        rank_paths = [rank_trace_path(trace_dir, r)
                      for r in range(args.ranks)]
        merged = merge_rank_streams([p for p in rank_paths if p.exists()])

        # Analytic raw CLV bytes across the whole run (all ranks' shares
        # together are the full pattern set): (n_taxa−2) inner-node CLVs
        # × Σ_p patterns·cats·states·8.  The profiled cache keys CLVs by
        # directed edge, so the live/model ratio has a documented band
        # rather than an exact target (see docs/OBSERVABILITY.md).  The
        # model's virtual units only match real allocations when the
        # workload is unscaled (pattern_scale == 1), which holds here.
        modeled_clv = (len(lik.taxa) - 2) * sum(
            p.n_patterns * p.n_cats * p.model.n_states * 8.0
            for p in lik.parts
        )
        report = build_hotspot_report(
            merged, machine=HITS_CLUSTER,
            modeled_clv_bytes=modeled_clv,
        )
        # fork-join worker stores are tree-agnostic (never collected), so
        # only the decentralized engine is gated on the CLV memory band
        engine_problems = report.check(
            check_memory=(engine == "decentralized"))
        problems.extend(f"[{engine}] {p}" for p in engine_problems)
        reports[engine] = report
        print(f"[{engine}] {args.ranks} ranks, {wall_s:.2f}s wall, "
              f"{len(merged)} merged span(s)", file=sys.stderr)
        print(report.format_markdown(top=args.top))
        print()

    return _finish_hotspots(args, reports, problems, trace_root=trace_root)


def _finish_hotspots(args: argparse.Namespace, reports: dict,
                     problems: list[str], trace_root: Path) -> int:
    """Shared tail of `repro hotspots`: artifacts, registry, verdict."""
    import json

    bench: dict = {
        "kind": "kernel_hotspots",
        "alignment": str(args.alignment) if args.alignment else None,
        "ranks": args.ranks,
        "iterations": args.iterations,
        "engines": {},
        "metrics": {},
    }
    for engine, report in reports.items():
        record = report.to_bench(engine=engine)
        bench["engines"][engine] = record["report"]
        bench["metrics"].update(record["metrics"])

    if args.report_out:
        md = "\n\n".join(r.format_markdown(top=args.top)
                         for r in reports.values())
        Path(args.report_out).write_text(md + "\n")
        print(f"markdown report written to {args.report_out}",
              file=sys.stderr)
    if args.json_out:
        payload = {e: r.to_dict() for e, r in reports.items()}
        Path(args.json_out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"JSON report written to {args.json_out}", file=sys.stderr)
    if args.bench_out:
        Path(args.bench_out).write_text(json.dumps(bench, indent=2) + "\n")
        print(f"bench record written to {args.bench_out}", file=sys.stderr)
    if not args.no_register and args.from_trace is None:
        from repro.obs.registry import RunRegistry

        registry = RunRegistry()
        run_id = registry.register({
            "command": "hotspots",
            "engine": args.engine,
            "ranks": args.ranks,
            "dist": args.dist,
            "seed": args.seed,
            "alignment": str(args.alignment),
            "config": {"iterations": args.iterations,
                       "radius": args.radius, "model": args.model},
            "status": "completed",
            "trace_dir": str(trace_root),
        })
        registry.record_bench(run_id, bench)
        print(f"run {run_id} registered with bench snapshot under "
              f"{registry.root}", file=sys.stderr)
    if problems:
        for problem in problems:
            print(f"hotspots check failed: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    """Measured scaling: live runs across rank counts, analyzed + gated."""
    import json

    from repro.likelihood.partitioned import PartitionedLikelihood
    from repro.obs.scaling import run_scaling
    from repro.search.search import SearchConfig
    from repro.seq.partitions import read_partition_file
    from repro.tree.newick import write_newick
    from repro.tree.random_trees import random_topology

    alignment = _load_alignment(args.alignment)
    scheme = read_partition_file(args.partitions) if args.partitions else None
    tree = random_topology(alignment.taxa, rng=args.seed)
    newick = write_newick(tree)
    config = SearchConfig(max_iterations=args.iterations,
                          radius_max=args.radius)
    engines = (["decentralized", "forkjoin"] if args.engine == "both"
               else [args.engine])

    def build_likelihood() -> PartitionedLikelihood:
        # fresh per configuration: the search mutates model state
        return PartitionedLikelihood.build(
            alignment, tree, scheme=scheme, rate_mode=args.model,
            per_partition_branches=args.per_partition_branches,
        )

    result = run_scaling(
        build_likelihood, newick, config,
        engines=engines,
        ranks_list=args.ranks,
        dist_kinds=args.dist,
        trace_root=args.trace_out,
        trace_capacity=args.trace_capacity,
        predict=not args.no_predict,
        workload_info={
            "alignment": str(args.alignment),
            "taxa": alignment.n_taxa,
            "sites": alignment.n_sites,
            "partitions": len(scheme) if scheme else 1,
            "model": args.model,
        },
        progress=lambda msg: print(msg, file=sys.stderr),
    )

    report_md = result.format_markdown()
    if args.report_out:
        Path(args.report_out).write_text(report_md + "\n")
        print(f"markdown report written to {args.report_out}",
              file=sys.stderr)
    else:
        print(report_md)
    if args.bench_out:
        Path(args.bench_out).write_text(
            json.dumps(result.to_bench(), indent=2) + "\n")
        print(f"bench record written to {args.bench_out}", file=sys.stderr)

    dropped = sum(p.dropped_spans for p in result.points)
    if dropped:
        print(f"WARNING: {dropped} span(s) dropped across runs — raise "
              f"--trace-capacity", file=sys.stderr)
    disagreements = [
        (dist, n) for dist, per_ranks in result.agreement.items()
        for n, ok in per_ranks.items() if not ok and int(n) > 1
    ]
    if disagreements:
        print(f"note: measured comm-heavier engine disagrees with the "
              f"model at {disagreements}", file=sys.stderr)
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    """Gate a bench record against prior baselines."""
    import glob
    import json

    from repro.obs.regress import (
        DEFAULT_ABS_FLOOR,
        DEFAULT_MIN_BASELINES,
        DEFAULT_THRESHOLD,
        compare_to_baselines,
        load_baselines,
    )

    current = json.loads(Path(args.current).read_text())
    paths: list[str] = []
    for pattern in args.baselines:
        hits = sorted(glob.glob(pattern))
        paths.extend(hits if hits else
                     ([pattern] if Path(pattern).exists() else []))
    if not args.baselines:
        # default baseline pool: the committed bench trajectory plus
        # every bench snapshot in the run registry
        from repro.obs.registry import RunRegistry

        paths.extend(sorted(glob.glob("benchmarks/BENCH_*.json")))
        paths.extend(str(p) for p in RunRegistry().bench_paths())
        if paths:
            print(f"using {len(paths)} default baseline(s) "
                  f"(benchmarks/BENCH_*.json + run registry)",
                  file=sys.stderr)
    # never gate a record against itself
    cur_path = Path(args.current).resolve()
    paths = [p for p in paths if Path(p).resolve() != cur_path]
    baselines = load_baselines(paths)

    report = compare_to_baselines(
        current, baselines,
        threshold=(args.threshold if args.threshold is not None
                   else DEFAULT_THRESHOLD),
        abs_floor=(args.abs_floor if args.abs_floor is not None
                   else DEFAULT_ABS_FLOOR),
        min_baselines=(args.min_baselines if args.min_baselines is not None
                       else DEFAULT_MIN_BASELINES),
    )
    if args.report_only:
        report.enforced = False
    print(report.format_table())
    if args.gate_out:
        Path(args.gate_out).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n")
    if report.failed:
        print("performance regression detected", file=sys.stderr)
    return report.exit_code


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos campaign over the supervised engines."""
    from repro.search.search import SearchConfig
    from repro.supervise.chaos import run_campaign
    from repro.supervise.policy import RecoveryPolicy

    if args.alignment:
        from repro.likelihood.partitioned import PartitionedLikelihood
        from repro.seq.partitions import read_partition_file
        from repro.tree.newick import write_newick
        from repro.tree.random_trees import random_topology

        alignment = _load_alignment(args.alignment)
        scheme = (read_partition_file(args.partitions)
                  if args.partitions else None)
        tree = random_topology(alignment.taxa, rng=args.seed)
        lik = PartitionedLikelihood.build(
            alignment, tree, scheme=scheme, rate_mode=args.model)
        parts, taxa, newick = lik.parts, lik.taxa, write_newick(tree)
    else:
        # built-in synthetic workload: small enough that a 20-run
        # campaign with recoveries finishes in CI minutes
        from repro.datasets import partitioned_workload
        from repro.tree.newick import write_newick

        wl = partitioned_workload(2, n_taxa=8, sites_per_partition=30)
        lik = wl.build_likelihood(args.model)
        parts, taxa, newick = lik.parts, lik.taxa, write_newick(wl.tree)

    config = SearchConfig(
        max_iterations=args.iterations, radius_max=args.radius,
        model_opt=False, epsilon=1e-6, branch_passes=3)
    policy = RecoveryPolicy(
        max_attempts=args.max_attempts, min_ranks=args.min_ranks,
        backoff_base_s=0.05, backoff_max_s=0.5,
        attempt_timeout_s=args.attempt_timeout)
    report = run_campaign(
        parts, taxa, newick,
        n_runs=args.runs, seed=args.seed, n_ranks=args.ranks,
        engine=args.engine, dist_kind=args.dist, config=config,
        policy=policy, out_dir=args.out,
        detect_timeout=args.detect_timeout, max_faults=args.max_faults,
        monitor=args.monitor,
        log=lambda msg: print(msg, file=sys.stderr),
    )
    print(report.format_table())
    if args.out:
        print(f"campaign report + per-run manifests under {args.out}",
              file=sys.stderr)
    if not report.ok:
        print(f"chaos invariant violated in "
              f"{len(report.violations)} run(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """Live per-rank table over a monitored run's heartbeat channel."""
    from repro.obs.monitor import resolve_monitor_dir, watch_loop

    if args.url:
        return _watch_events(args.url, args.run)
    try:
        monitor_dir = resolve_monitor_dir(args.run, root=args.root)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from exc
    diag = watch_loop(
        monitor_dir,
        interval=args.interval,
        once=args.once,
        max_polls=args.polls,
        straggler_after=args.straggler_after,
        stall_after=args.stall_after,
        beat_timeout=args.beat_timeout,
    )
    return 1 if diag.is_stall else 0


def _watch_events(url: str, job_id: str) -> int:
    """Follow a served job's live event stream over HTTP."""
    from repro.serve.client import ServeClientError, stream_events

    final = None
    try:
        for event in stream_events(url, job_id):
            kind = event.get("event", "?")
            if kind == "keepalive":
                continue
            source = event.get("source", "?")
            detail = ", ".join(
                f"{k}={event[k]}" for k in sorted(event)
                if k not in ("event", "source") and event[k] is not None)
            print(f"[{source}] {kind}" + (f": {detail}" if detail else ""))
            if kind == "terminal":
                final = event.get("status")
    except ServeClientError as exc:
        raise SystemExit(str(exc)) from exc
    except KeyboardInterrupt:
        return 130
    return 0 if final == "completed" else 1


def _cmd_runs(args: argparse.Namespace) -> int:
    """Query the persistent run registry."""
    import json

    from repro.obs.registry import (
        RunRegistry,
        compare_runs,
        format_attempt_chain,
        format_compare_table,
    )

    registry = RunRegistry(args.root)
    if args.runs_command == "list":
        manifests = registry.list_runs()
        if not manifests:
            print(f"no runs under {registry.root}", file=sys.stderr)
            return 0
        header = (f"{'run id':<24} {'created':<20} {'cmd':<8} "
                  f"{'engine':<14} {'ranks':>5} {'status':<10} "
                  f"{'logL':>14} {'bench':>5} {'trace':<8}")
        print(header)
        print("-" * len(header))
        for m in manifests:
            result = m.get("result") or {}
            logl = result.get("logl")
            logl_s = f"{logl:.4f}" if isinstance(logl, (int, float)) else "-"
            has_bench = "yes" if m.get("bench_path") else "-"
            trace_s = (m.get("trace_id") or "-")[:8]
            print(f"{m.get('run_id', '?'):<24} "
                  f"{m.get('created', '?'):<20} "
                  f"{m.get('command', '?'):<8} "
                  f"{m.get('engine', '?'):<14} "
                  f"{m.get('ranks', '?'):>5} "
                  f"{m.get('status', '?'):<10} "
                  f"{logl_s:>14} {has_bench:>5} {trace_s:<8}")
        return 0
    if args.runs_command == "show":
        try:
            run_id = registry.resolve(args.run)
            manifest = registry.load(run_id)
        except FileNotFoundError as exc:
            raise SystemExit(str(exc)) from exc
        print(json.dumps(manifest, indent=2))
        trace_id = manifest.get("trace_id")
        if trace_id:
            # the lifecycle identity stamped at submission: joins this
            # run to its merged daemon + per-rank trace streams
            print()
            print(f"trace_id: {trace_id}")
            print(f"merged trace: python -c \"from repro.obs import "
                  f"merge_job_trace; merge_job_trace("
                  f"'{registry.root / run_id}')\"")
        chain = format_attempt_chain(manifest)
        if chain:
            print()
            print(chain)
        return 0
    if args.runs_command == "gc":
        if args.keep_days is None and args.keep_last is None:
            raise SystemExit("runs gc needs --keep-days and/or --keep-last")
        pruned = registry.gc(keep_days=args.keep_days,
                             keep_last=args.keep_last,
                             dry_run=args.dry_run)
        verb = "would prune" if args.dry_run else "pruned"
        for run_id in pruned:
            print(f"{verb} {run_id}")
        print(f"{verb} {len(pruned)} run(s) under {registry.root} "
              f"(running/queued runs are never touched)", file=sys.stderr)
        return 0
    # compare
    try:
        comparison = compare_runs(registry, args.a, args.b)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from exc
    print(format_compare_table(comparison))
    if args.out:
        Path(args.out).write_text(json.dumps(comparison, indent=2) + "\n")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """Offline service-level report from registry manifests alone."""
    import json

    from repro.obs.slo import collect_job_stats, compute_slo, write_report

    stats = collect_job_stats(args.root)
    report = compute_slo(stats)
    if not stats:
        print("no jobs found under the registry root (nothing the "
              "serve daemon ever queued there)", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format_markdown(), end="")
    write_report(report, json_path=args.out, md_path=args.md_out,
                 bench_path=args.bench_out)
    for label, path in (("json", args.out), ("markdown", args.md_out),
                        ("bench", args.bench_out)):
        if path:
            print(f"{label} report written to {path}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the inference service daemon (blocking; SIGTERM drains)."""
    from repro.serve import ServeDaemon, ServePolicy

    policy = ServePolicy(
        pool_ranks=args.pool_ranks,
        max_ranks_per_job=args.max_ranks_per_job,
        patterns_per_rank=args.patterns_per_rank,
        max_queue_depth=args.max_queue_depth,
        tenant_max_ranks=args.tenant_max_ranks,
        tenant_max_queued=args.tenant_max_queued,
        aging_rate=args.aging_rate,
        hol_grace_s=args.hol_grace,
    )
    supervise_jobs = None
    if args.no_supervise_jobs:
        supervise_jobs = False
    daemon = ServeDaemon(
        policy, root=args.root, host=args.host, port=args.port,
        tick_s=args.tick, supervise_jobs=supervise_jobs,
    )
    return daemon.run()


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit a job to a running serve daemon over HTTP."""
    import json

    from repro.serve.client import (
        ServeClientError,
        submit_job,
        wait_for_job,
    )

    if args.spec:
        spec = json.loads(Path(args.spec).read_text())
        if args.alignment:
            spec["alignment"] = args.alignment
    else:
        if not args.alignment:
            raise SystemExit("submit needs an ALIGNMENT (or --spec FILE)")
        spec = {"alignment": str(Path(args.alignment).resolve())}
    for key in ("engine", "model", "dist", "tenant"):
        value = getattr(args, key)
        if value is not None:
            spec[key] = value
    for key in ("ranks", "priority", "seed", "iterations",
                "radius", "epsilon"):
        value = getattr(args, key)
        if value is not None:
            spec[key] = value
    if args.partitions:
        spec["partitions"] = str(Path(args.partitions).resolve())
    if args.no_supervise:
        spec["supervise"] = False
    try:
        reply = submit_job(args.url, spec)
    except ServeClientError as exc:
        raise SystemExit(str(exc)) from exc
    job_id = reply["job_id"]
    print(f"job {job_id} queued ({reply['ranks']} rank(s) budgeted)",
          file=sys.stderr)
    if not args.wait:
        print(job_id)
        return 0
    try:
        manifest = wait_for_job(args.url, job_id, timeout=args.timeout)
    except ServeClientError as exc:
        raise SystemExit(str(exc)) from exc
    status = manifest.get("status")
    result = manifest.get("result") or {}
    print(f"job {job_id}: {status}"
          + (f", logL = {result['logl']:.4f}" if "logl" in result else ""),
          file=sys.stderr)
    print(job_id)
    return 0 if status == "completed" else 1


def _cmd_status(args: argparse.Namespace) -> int:
    """Show one job (or the whole queue) of a running daemon."""
    import json

    from repro.serve.client import ServeClientError, get_job, list_jobs

    try:
        if args.job:
            print(json.dumps(get_job(args.url, args.job), indent=2))
            return 0
        reply = list_jobs(args.url)
    except ServeClientError as exc:
        raise SystemExit(str(exc)) from exc
    jobs = reply.get("jobs", [])
    if not jobs:
        print("no jobs", file=sys.stderr)
        return 0
    header = (f"{'job id':<24} {'status':<10} {'tenant':<10} "
              f"{'prio':>4} {'ranks':>5} {'engine':<14} note")
    print(header)
    print("-" * len(header))
    for row in jobs:
        print(f"{row.get('job_id', '?'):<24} {row.get('status', '?'):<10} "
              f"{str(row.get('tenant', '-')):<10} "
              f"{str(row.get('priority', '-')):>4} "
              f"{str(row.get('ranks', '-')):>5} "
              f"{str(row.get('engine', '-')):<14} "
              f"{row.get('scheduler_note', '')}")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    """Cancel a queued or running job (cooperative checkpoint-stop)."""
    from repro.serve.client import ServeClientError, cancel_job

    try:
        reply = cancel_job(args.url, args.job)
    except ServeClientError as exc:
        raise SystemExit(str(exc)) from exc
    print(f"job {reply['job_id']}: {reply['state']}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """replicheck: determinism & collective-consistency static analysis."""
    import json

    from repro.analysis import (
        PROFILES,
        RULES,
        Baseline,
        analyze_paths,
        to_sarif,
    )

    if args.rules:
        for rule_id, desc in sorted(RULES.items()):
            profile = next(p for p in ("replica", "concurrency")
                           if rule_id in PROFILES[p])
            print(f"{rule_id}  [{profile}] {desc}")
        return 0

    paths = args.paths
    if not paths:
        # default: the installed repro package itself
        import repro

        paths = [str(Path(repro.__file__).parent)]

    select = None
    if args.select:
        select = frozenset(
            r.strip().upper() for r in args.select.split(",") if r.strip())
        unknown = select - set(RULES)
        if unknown:
            raise SystemExit(f"unknown rule id(s): {sorted(unknown)}")
    order_safe = frozenset(
        n.strip() for n in (args.order_safe or "").split(",") if n.strip())

    baseline = (Baseline() if args.no_baseline
                else Baseline.load(args.baseline))
    report = analyze_paths(
        paths, baseline=baseline, profile=args.profile, select=select,
        exclude=tuple(args.exclude or ()), order_safe=order_safe)

    if args.write_baseline:
        new_baseline = Baseline.from_findings(
            report.findings + report.baselined
        )
        new_baseline.save(args.baseline)
        print(f"baseline with {len(new_baseline)} finding(s) written to "
              f"{args.baseline}", file=sys.stderr)
        return 0

    if args.out:
        Path(args.out).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n")
    if args.sarif_out:
        Path(args.sarif_out).write_text(
            json.dumps(to_sarif(report, RULES), indent=2) + "\n")

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code
    if args.format == "sarif":
        print(json.dumps(to_sarif(report, RULES), indent=2))
        return report.exit_code

    for f in report.findings:
        print(f.format())
    for path, err in report.parse_errors:
        print(f"{path}: parse error: {err}")
    if args.verbose:
        for f in report.suppressed:
            print(f"[suppressed] {f.format()}")
        for f in report.baselined:
            print(f"[baselined] {f.format()}")
    for path, s in report.unjustified_suppressions:
        print(f"{path}:{s.pragma_line}: note: suppression for "
              f"{sorted(s.rules)} has no justification "
              f"(add `-- why this is replica-safe`)")
    for path, s in report.unused_suppressions:
        print(f"{path}:{s.pragma_line}: note: suppression for "
              f"{sorted(s.rules)} matches no finding (stale?)")
    print(f"{report.files_scanned} file(s) scanned: "
          f"{len(report.findings)} new, {len(report.suppressed)} "
          f"suppressed, {len(report.baselined)} baselined",
          file=sys.stderr)
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    from repro.obs.monitor import (
        DEFAULT_BEAT_TIMEOUT,
        DEFAULT_STALL_AFTER,
        DEFAULT_STRAGGLER_AFTER,
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="ExaML-paper reproduction: likelihood-based "
                    "phylogenetic inference with two parallelization schemes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    infer = sub.add_parser("infer", help="maximum-likelihood tree search")
    infer.add_argument("alignment", help="FASTA/PHYLIP/binary alignment")
    infer.add_argument("-q", "--partitions", help="RAxML-style partition file")
    infer.add_argument("-m", "--model", choices=["gamma", "psr", "none"],
                       default="gamma", help="rate heterogeneity (default Γ)")
    infer.add_argument("-M", dest="per_partition_branches", action="store_true",
                       help="per-partition branch lengths (the paper's -M)")
    infer.add_argument("-t", "--starting-tree", help="Newick starting tree")
    infer.add_argument("-n", "--iterations", type=int, default=10)
    infer.add_argument("-r", "--radius", type=int, default=5)
    infer.add_argument("-e", "--epsilon", type=float, default=0.1)
    infer.add_argument("--no-gtr", action="store_true",
                       help="skip GTR exchangeability optimization")
    infer.add_argument("-s", "--seed", type=int, default=42)
    infer.add_argument("-o", "--output", help="write best tree here")
    infer.add_argument("--checkpoint", help="write final checkpoint here")
    infer.add_argument("--resume", help="resume from a checkpoint file")
    infer.add_argument("--engine",
                       choices=["sequential", "decentralized", "forkjoin"],
                       default="sequential",
                       help="run the search on one process or on a real "
                            "multi-process engine")
    infer.add_argument("--ranks", type=int, default=2,
                       help="process count for distributed engines")
    infer.add_argument("--dist", choices=["cyclic", "mps"], default="cyclic",
                       help="data distribution for distributed engines")
    infer.add_argument("--inject-failure", metavar="RANK@CALL[:MODE]",
                       help="kill (or :hang, or :slow — a transient "
                            "straggler) ranks at deterministic comm-call "
                            "numbers, e.g. '2@40' or '1@25:hang'; the "
                            "decentralized engine recovers in-run, fork-join "
                            "restarts from the last checkpoint")
    infer.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="N",
                       help="write a periodic checkpoint every N search "
                            "iterations (needs --checkpoint)")
    infer.add_argument("--detect-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="bounded-receive timeout for failure detection "
                            "(catches hung ranks; default 60)")
    infer.add_argument("--sanitize", action="store_true",
                       help="cross-check every collective across ranks "
                            "(tag, op, payload shape, previous result "
                            "hash) and fail fast with the first diverging "
                            "call on replica divergence; decentralized "
                            "engine only")
    infer.add_argument("--monitor", action="store_true",
                       help="run the live telemetry side channel: per-rank "
                            "heartbeats + streamed progress events, with a "
                            "parent-side monitor diagnosing hung ranks / "
                            "stragglers / global stalls during the run "
                            "(distributed engines only)")
    infer.add_argument("--monitor-dir", metavar="DIR",
                       help="heartbeat/progress directory (default: the "
                            "run's registry directory)")
    infer.add_argument("--beat-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="seconds between heartbeat rewrites "
                            "(default 0.2)")
    infer.add_argument("--straggler-after", type=float, default=1.0,
                       metavar="SECONDS",
                       help="no state change for this long flags a rank "
                            "as a straggler (default 1.0)")
    infer.add_argument("--stall-after", type=float, default=3.0,
                       metavar="SECONDS",
                       help="... and for this long, a stall; keep under "
                            "--detect-timeout so diagnosis precedes "
                            "detection (default 3.0)")
    infer.add_argument("--diagnosis-out", metavar="PATH",
                       help="write the first stall diagnosis JSON here "
                            "(default: <monitor-dir>/diagnosis.json)")
    infer.add_argument("--no-register", action="store_true",
                       help="skip writing a manifest to the run registry "
                            "(.repro_runs/ or $REPRO_RUNS_DIR)")
    infer.add_argument("--run-id", metavar="ID",
                       help="attach to this (possibly pre-registered) "
                            "registry run id instead of minting a new "
                            "one; used by the serve daemon so a job's "
                            "manifest and its run are one document")
    infer.add_argument("--cancellable", action="store_true",
                       help="treat SIGTERM as a cooperative cancel: all "
                            "ranks agree to stop at the next iteration "
                            "boundary, a final checkpoint is written "
                            "(with --checkpoint PATH), the manifest is "
                            "marked 'cancelled', and the process exits "
                            "143 (distributed engines only)")
    infer.add_argument("--supervise", action="store_true",
                       help="run under the escalation-ladder supervisor: "
                            "in-mesh recovery first, then kill + restart "
                            "from the latest checkpoint with backoff, "
                            "then a degraded restart (fewer ranks, other "
                            "distribution), then durable failure with the "
                            "stall diagnosis in the registry manifest; "
                            "every attempt is chained into the manifest "
                            "(distributed engines only)")
    infer.add_argument("--max-attempts", type=int, default=4,
                       help="supervised launch budget, the first attempt "
                            "included (default 4)")
    infer.add_argument("--min-ranks", type=int, default=1,
                       help="rank quorum: in-mesh recovery may shrink the "
                            "mesh and finish in place only while at least "
                            "this many ranks survive; one fewer escalates "
                            "to a degraded restart (default 1)")
    infer.add_argument("--backoff", type=float, default=0.25,
                       metavar="SECONDS",
                       help="base retry backoff, doubled per attempt with "
                            "seeded jitter (default 0.25)")
    infer.add_argument("--attempt-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-attempt wall-clock budget; a wedged "
                            "attempt is killed and classified instead of "
                            "hanging the supervisor (default: launcher "
                            "default, 600)")
    infer.add_argument("--trace-dir", metavar="DIR",
                       help="trace every rank's spans into this "
                            "directory (trace-rank<R>.jsonl; supervised "
                            "runs get one subdirectory per attempt), "
                            "mergeable into one Chrome trace with the "
                            "daemon's scheduler spans (distributed "
                            "engines only)")
    infer.add_argument("--trace-id", metavar="ID",
                       help="end-to-end trace context to stamp on every "
                            "span (default: $REPRO_TRACE_ID as set by "
                            "the serve daemon, else minted when "
                            "--trace-dir is given)")
    infer.set_defaults(func=_cmd_infer)

    sim = sub.add_parser("simulate", help="generate a benchmark alignment")
    sim.add_argument("-t", "--taxa", type=int, default=50)
    sim.add_argument("-l", "--sites", type=int, default=1000)
    sim.add_argument("-a", "--alpha", type=float, default=0.8,
                     help="Γ shape for site rates; <=0 disables")
    sim.add_argument("-b", "--branch-length", type=float, default=0.08)
    sim.add_argument("-s", "--seed", type=int, default=42)
    sim.add_argument("-o", "--output", required=True)
    sim.add_argument("--tree-out", help="also write the true tree")
    sim.set_defaults(func=_cmd_simulate)

    conv = sub.add_parser("convert", help="convert alignment formats")
    conv.add_argument("input")
    conv.add_argument("output")
    conv.set_defaults(func=_cmd_convert)

    rep = sub.add_parser("report", help="communication/runtime report")
    rep.add_argument("alignment")
    rep.add_argument("-q", "--partitions")
    rep.add_argument("-m", "--model", choices=["gamma", "psr", "none"],
                     default="gamma")
    rep.add_argument("-M", dest="per_partition_branches", action="store_true")
    rep.add_argument("-n", "--iterations", type=int, default=2)
    rep.add_argument("-r", "--radius", type=int, default=2)
    rep.add_argument("-s", "--seed", type=int, default=42)
    rep.add_argument("-Q", "--mps", action="store_true",
                     help="monolithic per-partition distribution")
    rep.add_argument("--ranks", type=int, nargs="+",
                     default=[48, 192, 768])
    rep.set_defaults(func=_cmd_report)

    prof = sub.add_parser(
        "profile",
        help="live multi-process run with span tracing, Chrome-trace "
             "export and model-vs-measured reconciliation")
    prof.add_argument("alignment", help="FASTA/PHYLIP/binary alignment")
    prof.add_argument("-q", "--partitions",
                      help="RAxML-style partition file")
    prof.add_argument("-m", "--model", choices=["gamma", "psr", "none"],
                      default="gamma")
    prof.add_argument("-M", dest="per_partition_branches",
                      action="store_true")
    prof.add_argument("-n", "--iterations", type=int, default=1)
    prof.add_argument("-r", "--radius", type=int, default=2)
    prof.add_argument("-s", "--seed", type=int, default=42)
    prof.add_argument("--engine",
                      choices=["decentralized", "forkjoin", "both"],
                      default="both",
                      help="which engine(s) to profile (default both)")
    prof.add_argument("--ranks", type=int, default=2,
                      help="process count (default 2)")
    prof.add_argument("--dist", choices=["cyclic", "mps"],
                      default="cyclic")
    prof.add_argument("--trace-out", default="trace", metavar="DIR",
                      help="directory for per-rank JSONL and merged "
                           "traces (one subdir per engine; default "
                           "./trace)")
    prof.add_argument("--trace-format", choices=["jsonl", "chrome"],
                      default="chrome",
                      help="'chrome' additionally writes a merged "
                           "Perfetto-loadable trace.chrome.json "
                           "(default); 'jsonl' keeps only the per-rank "
                           "streams")
    prof.add_argument("--reconcile", action="store_true",
                      help="replay the run on the analytic comm model "
                           "and compare measured vs modeled bytes per "
                           "Table-I category; non-zero exit if out of "
                           "tolerance")
    prof.add_argument("--tolerance", type=float, default=None,
                      metavar="REL",
                      help="max relative byte error for --reconcile "
                           "(default: exact for decentralized, the "
                           "documented framing tolerance for fork-join)")
    prof.add_argument("--bench-out", metavar="PATH",
                      help="write a JSON bench record here")
    prof.add_argument("--summary", action="store_true",
                      help="print a per-rank attribution table (calls, "
                           "bytes, compute/wait/transfer shares) instead "
                           "of requiring the Chrome trace viewer")
    prof.add_argument("--no-register", action="store_true",
                      help="skip writing a manifest (and the bench "
                           "snapshot) to the run registry")
    prof.set_defaults(func=_cmd_profile)

    hot = sub.add_parser(
        "hotspots",
        help="kernel-level compute profile: ranked per-op table with "
             "time share, achieved vs modeled GFLOP/s, arithmetic "
             "intensity / roofline placement and CLV memory attribution")
    hot.add_argument("alignment", nargs="?", default=None,
                     help="FASTA/PHYLIP/binary alignment (omit with "
                          "--from-trace)")
    hot.add_argument("--from-trace", metavar="DIR", default=None,
                     help="re-analyze an existing trace directory "
                          "instead of running live (no memory "
                          "reconciliation, no registry entry)")
    hot.add_argument("-q", "--partitions",
                     help="RAxML-style partition file")
    hot.add_argument("-m", "--model", choices=["gamma", "psr", "none"],
                     default="gamma")
    hot.add_argument("-M", dest="per_partition_branches",
                     action="store_true")
    hot.add_argument("-n", "--iterations", type=int, default=1)
    hot.add_argument("-r", "--radius", type=int, default=2)
    hot.add_argument("-s", "--seed", type=int, default=42)
    hot.add_argument("--engine",
                     choices=["decentralized", "forkjoin", "both"],
                     default="decentralized",
                     help="which engine(s) to profile (default "
                          "decentralized — the only one gated on the "
                          "CLV memory band)")
    hot.add_argument("--ranks", type=int, default=2,
                     help="process count (default 2)")
    hot.add_argument("--dist", choices=["cyclic", "mps"],
                     default="cyclic")
    hot.add_argument("--trace-out", default="trace_hotspots",
                     metavar="DIR",
                     help="directory for per-rank JSONL traces (one "
                          "subdir per engine; default ./trace_hotspots)")
    hot.add_argument("--top", type=int, default=None, metavar="N",
                     help="show only the N hottest ops")
    hot.add_argument("--report-out", metavar="PATH",
                     help="write the markdown kernel table here")
    hot.add_argument("--json-out", metavar="PATH",
                     help="write the full report as JSON here")
    hot.add_argument("--bench-out", metavar="PATH",
                     help="write a BENCH_kernels-style record here "
                          "(kind kernel_hotspots, flat higher-is-worse "
                          "metrics for `repro regress`)")
    hot.add_argument("--no-register", action="store_true",
                     help="skip writing a manifest (and the bench "
                          "snapshot) to the run registry")
    hot.set_defaults(func=_cmd_hotspots)

    scale = sub.add_parser(
        "scale",
        help="measured scaling: live runs across rank counts with "
             "busy/wait attribution, speedup/efficiency tables and a "
             "model-ordering check")
    scale.add_argument("alignment", help="FASTA/PHYLIP/binary alignment")
    scale.add_argument("-q", "--partitions",
                       help="RAxML-style partition file")
    scale.add_argument("-m", "--model", choices=["gamma", "psr", "none"],
                       default="gamma")
    scale.add_argument("-M", dest="per_partition_branches",
                       action="store_true")
    scale.add_argument("-n", "--iterations", type=int, default=1)
    scale.add_argument("-r", "--radius", type=int, default=2)
    scale.add_argument("-s", "--seed", type=int, default=42)
    scale.add_argument("--engine",
                       choices=["decentralized", "forkjoin", "both"],
                       default="both")
    scale.add_argument("--ranks", type=int, nargs="+", default=[1, 2, 4],
                       help="rank counts to measure (default 1 2 4); "
                            "speedup is relative to the smallest")
    scale.add_argument("--dist", choices=["cyclic", "mps"], nargs="+",
                       default=["cyclic"],
                       help="data distribution(s) to measure")
    scale.add_argument("--trace-out", default="trace_scale", metavar="DIR",
                       help="trace directory root (one subdir per "
                            "configuration; default ./trace_scale)")
    scale.add_argument("--trace-capacity", type=int, default=None,
                       help="per-rank span ring-buffer capacity")
    scale.add_argument("--no-predict", action="store_true",
                       help="skip the analytic-model prediction columns")
    scale.add_argument("--bench-out", metavar="PATH",
                       help="write BENCH_scaling.json here")
    scale.add_argument("--report-out", metavar="PATH",
                       help="write the markdown report here (default: "
                            "print to stdout)")
    scale.set_defaults(func=_cmd_scale)

    regress = sub.add_parser(
        "regress",
        help="gate a BENCH_*.json record against prior baselines "
             "(median comparison, noise-tolerant; report-only until "
             "enough baselines exist)")
    regress.add_argument("current", help="bench record to gate")
    regress.add_argument("--baselines", nargs="+", default=[],
                         metavar="PATH_OR_GLOB",
                         help="baseline records (globs allowed; quote "
                              "them so CI shells don't expand empty "
                              "globs to errors)")
    regress.add_argument("--threshold", type=float, default=None,
                         help="max allowed current/median ratio "
                              "(default 1.3)")
    regress.add_argument("--abs-floor", type=float, default=None,
                         help="minimum absolute worsening to count "
                              "(default 0.05)")
    regress.add_argument("--min-baselines", type=int, default=None,
                         help="baselines required before the gate "
                              "enforces (default 2)")
    regress.add_argument("--report-only", action="store_true",
                         help="always exit 0, just print the comparison")
    regress.add_argument("--gate-out", metavar="PATH",
                         help="write the gate report as JSON here")
    regress.set_defaults(func=_cmd_regress)

    lint = sub.add_parser(
        "lint",
        help="replicheck: static analysis for replica-consistency "
             "hazards (unseeded RNG, unordered iteration, rank-"
             "conditional collectives, wall-clock control flow, "
             "order-dependent float accumulation)")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to analyze (default: "
                           "the installed repro package)")
    lint.add_argument("--profile",
                      choices=["replica", "concurrency", "all"],
                      default="all",
                      help="rule group to run: replica-divergence rules "
                           "(R001-R006), the threaded-service "
                           "concurrency pack (R007-R011), or all "
                           "(default all)")
    lint.add_argument("--select", metavar="RULES",
                      help="comma-separated rule ids to run instead of "
                           "a profile (e.g. R002,R005)")
    lint.add_argument("--exclude", action="append", metavar="PATH",
                      help="path prefix to skip during discovery (may "
                           "repeat; e.g. tests/fixtures)")
    lint.add_argument("--order-safe", metavar="NAMES",
                      help="comma-separated extra order-safe consumer "
                           "names for R002 (project helpers that are "
                           "order-insensitive)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text",
                      help="finding output format (default text)")
    lint.add_argument("--sarif-out", metavar="PATH",
                      help="also write a SARIF 2.1.0 log here (for "
                           "GitHub code scanning upload)")
    lint.add_argument("--baseline", default="replicheck.baseline.json",
                      metavar="PATH",
                      help="committed baseline of tolerated findings "
                           "(default ./replicheck.baseline.json); only "
                           "findings NOT in it fail the gate")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore the baseline: report every finding")
    lint.add_argument("--write-baseline", action="store_true",
                      help="accept the current findings: write them to "
                           "--baseline and exit 0")
    lint.add_argument("--out", metavar="PATH",
                      help="also write the full JSON report here "
                           "(for CI artifacts)")
    lint.add_argument("--rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("-v", "--verbose", action="store_true",
                      help="also list suppressed and baselined findings")
    lint.set_defaults(func=_cmd_lint)

    chaos = sub.add_parser(
        "chaos",
        help="seeded chaos campaign: N supervised runs under randomized "
             "multi-fault schedules (die/hang/slow, faults during "
             "recovery included), each asserted bitwise-identical to "
             "the undisturbed reference or cleanly failed at tier 3 "
             "with a named diagnosis — never hung, never partial")
    chaos.add_argument("alignment", nargs="?", default=None,
                       help="FASTA/PHYLIP/binary alignment (default: a "
                            "built-in small synthetic workload)")
    chaos.add_argument("-q", "--partitions",
                       help="RAxML-style partition file")
    chaos.add_argument("-m", "--model", choices=["gamma", "psr", "none"],
                       default="gamma")
    chaos.add_argument("-n", "--iterations", type=int, default=10)
    chaos.add_argument("-r", "--radius", type=int, default=2)
    chaos.add_argument("-s", "--seed", type=int, default=42,
                       help="campaign seed: fault schedules are a pure "
                            "function of it — replay a red campaign "
                            "exactly by reusing its seed (default 42)")
    chaos.add_argument("--runs", type=int, default=20,
                       help="number of chaos runs (default 20)")
    chaos.add_argument("--ranks", type=int, default=3,
                       help="mesh width per run (default 3)")
    chaos.add_argument("--engine",
                       choices=["decentralized", "forkjoin"],
                       default="decentralized")
    chaos.add_argument("--dist", choices=["cyclic", "mps"],
                       default="cyclic")
    chaos.add_argument("--out", default="chaos_out", metavar="DIR",
                       help="artifact directory: campaign report JSON, "
                            "per-run registry manifests with attempt "
                            "chains, supervisor work dirs (default "
                            "./chaos_out)")
    chaos.add_argument("--max-faults", type=int, default=3,
                       help="max faults drawn per schedule (default 3)")
    chaos.add_argument("--max-attempts", type=int, default=3,
                       help="supervised launch budget per run (default 3)")
    chaos.add_argument("--min-ranks", type=int, default=1,
                       help="rank quorum for in-mesh recovery (default 1)")
    chaos.add_argument("--attempt-timeout", type=float, default=120.0,
                       metavar="SECONDS",
                       help="per-attempt wall-clock budget (default 120)")
    chaos.add_argument("--detect-timeout", type=float, default=6.0,
                       metavar="SECONDS",
                       help="bounded-receive failure detection timeout "
                            "(default 6)")
    chaos.add_argument("--monitor", action="store_true",
                       help="run the heartbeat monitor per attempt so "
                            "timeout verdicts carry a stall diagnosis")
    chaos.set_defaults(func=_cmd_chaos)

    watch = sub.add_parser(
        "watch",
        help="live per-rank health table for a monitored run: phase, "
             "iteration, logL, collective call index, and a stall "
             "diagnosis (hung rank / straggler / global stall)")
    watch.add_argument("run",
                       help="run id, unique id prefix, 'latest', a run "
                            "directory, a monitor directory, or a "
                            "served job id")
    watch.add_argument("--root", metavar="DIR",
                       help="registry root to resolve run/job ids in "
                            "(default: $REPRO_RUNS_DIR or ./.repro_runs; "
                            "point it at a serve daemon's --root to "
                            "watch served jobs)")
    watch.add_argument("--url", metavar="URL",
                       help="follow the job's live event stream from a "
                            "serve daemon over HTTP "
                            "(GET /jobs/<id>/events) instead of reading "
                            "heartbeat files locally")
    watch.add_argument("--interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="seconds between table refreshes "
                            "(default 1.0)")
    watch.add_argument("--once", action="store_true",
                       help="print one table and exit")
    watch.add_argument("--polls", type=int, default=None, metavar="N",
                       help="stop after N refreshes (default: until the "
                            "run reaches a terminal phase)")
    watch.add_argument("--straggler-after", type=float,
                       default=DEFAULT_STRAGGLER_AFTER, metavar="SECONDS",
                       help="no state change for this long flags a "
                            "straggler (default %(default)s)")
    watch.add_argument("--stall-after", type=float,
                       default=DEFAULT_STALL_AFTER, metavar="SECONDS",
                       help="... and for this long, a stall "
                            "(default %(default)s)")
    watch.add_argument("--beat-timeout", type=float,
                       default=DEFAULT_BEAT_TIMEOUT, metavar="SECONDS",
                       help="a heartbeat older than this means the rank "
                            "process is dead (default %(default)s)")
    watch.set_defaults(func=_cmd_watch)

    serve = sub.add_parser(
        "serve",
        help="run the inference service: a durable job queue + "
             "resource-aware scheduler + HTTP/JSON API multiplexing "
             "many inference jobs over a bounded rank pool; SIGTERM "
             "drains gracefully (stop admitting, let jobs finish)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="HTTP port (default 8642; 0 picks a free "
                            "one and logs it)")
    serve.add_argument("--root", metavar="DIR",
                       help="registry root holding the queue (default: "
                            "$REPRO_RUNS_DIR or ./.repro_runs)")
    serve.add_argument("--pool-ranks", type=int, default=4,
                       help="global rank pool shared by all running "
                            "jobs (default 4)")
    serve.add_argument("--max-ranks-per-job", type=int, default=0,
                       help="per-job rank cap (default: the whole pool)")
    serve.add_argument("--patterns-per-rank", type=int, default=2000,
                       help="auto-sizing target: compressed alignment "
                            "patterns per rank (default 2000)")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="admission control: reject submissions "
                            "beyond this many queued jobs (default 64)")
    serve.add_argument("--tenant-max-ranks", type=int, default=0,
                       help="max concurrently running ranks per tenant "
                            "(default: no quota)")
    serve.add_argument("--tenant-max-queued", type=int, default=0,
                       help="max queued jobs per tenant (default: no "
                            "quota)")
    serve.add_argument("--aging-rate", type=float, default=1.0 / 60.0,
                       metavar="PRIO_PER_S",
                       help="priority points a queued job gains per "
                            "second waited (default 1/60)")
    serve.add_argument("--hol-grace", type=float, default=30.0,
                       metavar="SECONDS",
                       help="how long the head-of-line job may be "
                            "backfilled past before the pool drains "
                            "for it (default 30)")
    serve.add_argument("--tick", type=float, default=0.2,
                       metavar="SECONDS",
                       help="scheduler tick interval (default 0.2)")
    serve.add_argument("--no-supervise-jobs", action="store_true",
                       help="launch jobs without the escalation-ladder "
                            "supervisor (overrides per-job specs)")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit an inference job to a running serve daemon")
    submit.add_argument("alignment", nargs="?", default=None,
                        help="FASTA/PHYLIP/binary alignment path "
                             "(as seen by the daemon)")
    submit.add_argument("--spec", metavar="FILE",
                        help="JSON job spec file (flags override it)")
    submit.add_argument("--url", default="http://127.0.0.1:8642",
                        help="daemon base URL (default %(default)s)")
    submit.add_argument("-q", "--partitions",
                        help="RAxML-style partition file")
    submit.add_argument("--engine",
                        choices=["decentralized", "forkjoin"],
                        default=None)
    submit.add_argument("-m", "--model",
                        choices=["gamma", "psr", "none"], default=None)
    submit.add_argument("--dist", choices=["cyclic", "mps"], default=None)
    submit.add_argument("--ranks", type=int, default=None,
                        help="requested ranks (default: auto-sized "
                             "from the alignment pre-parse)")
    submit.add_argument("--priority", type=int, default=None,
                        help="higher runs earlier (default 0)")
    submit.add_argument("--tenant", default=None,
                        help="quota accounting bucket (default "
                             "'default')")
    submit.add_argument("-s", "--seed", type=int, default=None)
    submit.add_argument("-n", "--iterations", type=int, default=None)
    submit.add_argument("-r", "--radius", type=int, default=None)
    submit.add_argument("-e", "--epsilon", type=float, default=None)
    submit.add_argument("--no-supervise", action="store_true",
                        help="run the job without the supervisor ladder")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal; exit 0 "
                             "only on 'completed'")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait timeout in seconds (default 600)")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser(
        "status", help="list a serve daemon's jobs (or show one)")
    status.add_argument("job", nargs="?", default=None,
                        help="job id (or unique prefix); omit to list")
    status.add_argument("--url", default="http://127.0.0.1:8642")
    status.set_defaults(func=_cmd_status)

    cancel = sub.add_parser(
        "cancel",
        help="cancel a queued or running job (running jobs stop "
             "cooperatively at the next iteration and keep a "
             "checkpoint)")
    cancel.add_argument("job", help="job id (or unique prefix)")
    cancel.add_argument("--url", default="http://127.0.0.1:8642")
    cancel.set_defaults(func=_cmd_cancel)

    slo = sub.add_parser(
        "slo",
        help="offline service-level report from registry manifests "
             "alone: queue-wait / turnaround percentiles, pool "
             "utilization, per-tenant fairness — no daemon needed")
    slo.add_argument("--root", metavar="DIR",
                     help="registry root holding the job manifests "
                          "(default: $REPRO_RUNS_DIR or ./.repro_runs)")
    slo.add_argument("--json", action="store_true",
                     help="print the report as JSON instead of markdown")
    slo.add_argument("--out", metavar="PATH",
                     help="also write the JSON report here")
    slo.add_argument("--md-out", metavar="PATH",
                     help="also write the markdown report here")
    slo.add_argument("--bench-out", metavar="PATH",
                     help="also write a BENCH record here (feed it to "
                          "'repro regress' to gate on SLO regressions)")
    slo.set_defaults(func=_cmd_slo)

    runs = sub.add_parser(
        "runs",
        help="the persistent run registry (.repro_runs/): list past "
             "runs, show a manifest, compare two runs' bench metrics")
    runs.add_argument("--root", metavar="DIR",
                      help="registry root (default: $REPRO_RUNS_DIR or "
                           "./.repro_runs)")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="list registered runs")
    runs_list.set_defaults(func=_cmd_runs)
    runs_show = runs_sub.add_parser(
        "show", help="print a run's manifest as JSON")
    runs_show.add_argument("run",
                           help="run id, unique prefix, or 'latest'")
    runs_show.set_defaults(func=_cmd_runs)
    runs_gc = runs_sub.add_parser(
        "gc",
        help="prune old terminal run directories (never touches "
             "running or queued runs)")
    runs_gc.add_argument("--keep-days", type=float, default=None,
                         metavar="DAYS",
                         help="prune terminal runs older than this")
    runs_gc.add_argument("--keep-last", type=int, default=None,
                         metavar="N",
                         help="always keep the N most recent terminal "
                              "runs, regardless of age")
    runs_gc.add_argument("--dry-run", action="store_true",
                         help="list what would be pruned, delete nothing")
    runs_gc.set_defaults(func=_cmd_runs)
    runs_cmp = runs_sub.add_parser(
        "compare", help="bench-metric delta between two runs")
    runs_cmp.add_argument("a", help="baseline run id/prefix/'latest'")
    runs_cmp.add_argument("b", help="candidate run id/prefix/'latest'")
    runs_cmp.add_argument("--out", metavar="PATH",
                          help="also write the comparison as JSON here")
    runs_cmp.set_defaults(func=_cmd_runs)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
