"""The de-centralized scheme (ExaML) — the paper's contribution.

* :class:`DecentralizedCommModel` maps the abstract region stream onto the
  ExaML communication pattern: **no** traversal-descriptor broadcasts, **no**
  parameter broadcasts, no master — only an ``MPI_Allreduce`` wherever the
  search needs a *global* quantity (the per-partition log likelihoods, the
  branch-length derivatives, and the tiny PSR normalization sums).
* :class:`DecentralizedBackend` is the *real* distributed implementation:
  every rank runs the identical search on a local, consistent replica of
  the tree and model state, communicating exclusively through rank-ordered
  (hence bitwise-reproducible) allreduces — the property Section III-B
  demands so replicas never diverge.
"""

from __future__ import annotations

import numpy as np

from repro.engines.events import EventLog, Region, RegionKind
from repro.engines.forkjoin import (
    CAT_BL_OPT,
    CAT_LIKELIHOOD,
    CAT_MODEL,
    CommEvent,
)
from repro.likelihood.backend import SequentialBackend, choose_psr_rates
from repro.likelihood.partitioned import PartitionedLikelihood
from repro.par.comm import Comm, ReduceOp
from repro.tree.topology import Node

__all__ = [
    "DecentralizedCommModel",
    "DecentralizedBackend",
    "recover_decentralized",
]

_DOUBLE = 8


class DecentralizedCommModel:
    """Region → collectives mapping for the de-centralized scheme.

    Regions that fork-join must synchronize (traversals, sumtable setup,
    parameter broadcasts, PSR scan steps) cost *nothing* here: each replica
    performs them locally.  Their compute still counts — the runtime
    synthesizer folds it into the interval ending at the next allreduce.
    """

    name = "de-centralized (ExaML)"

    def region_events(self, region: Region) -> list[CommEvent]:
        p = region.n_partitions
        nbs = region.n_branch_sets
        if region.kind is RegionKind.EVALUATE:
            return [CommEvent("allreduce", _DOUBLE * p, CAT_LIKELIHOOD)]
        if region.kind is RegionKind.DERIVATIVE:
            return [CommEvent("allreduce", 2 * _DOUBLE * nbs, CAT_BL_OPT)]
        if region.kind is RegionKind.PARAM_PSR:
            return [CommEvent("allreduce", 2 * _DOUBLE * p, CAT_MODEL)]
        return []

    def serial_bytes(self, region: Region) -> float:
        """No master, no serial packing: every replica prepares only its
        own (local) state."""
        return 0.0

    def byte_totals(self, log: EventLog) -> dict[str, float]:
        totals: dict[str, float] = {CAT_BL_OPT: 0.0, CAT_LIKELIHOOD: 0.0, CAT_MODEL: 0.0}
        for region in log:
            for ev in self.region_events(region):
                totals[ev.category] += ev.nbytes
        return totals

    def region_count(self, log: EventLog) -> int:
        """Number of *communicating* regions (allreduce sites)."""
        return sum(1 for r in log if self.region_events(r))


class DecentralizedBackend(SequentialBackend):
    """One replica of the ExaML scheme over a real communicator.

    Every rank constructs this around its *local* data share and runs the
    identical, deterministic search; the only inter-rank interaction is
    the three allreduce sites below.  Rank-ordered reductions guarantee
    bitwise-identical results on every replica.
    """

    def __init__(self, comm: Comm, lik: PartitionedLikelihood) -> None:
        super().__init__(lik)
        self.comm = comm

    @property
    def writes_checkpoints(self) -> bool:
        """All replicas hold identical state; one writer suffices."""
        return self.comm.rank == 0

    def evaluate(self, u: Node, v: Node) -> tuple[float, np.ndarray]:
        self.lik.ensure_clvs(u, v)
        local = np.array(
            [self.lik._evaluate_partition(p, u, v)[0] for p in range(self.n_partitions)]
        )
        per_part = self.comm.allreduce(local, ReduceOp.SUM, tag=CAT_LIKELIHOOD)
        return float(per_part.sum()), per_part

    def derivatives(self, handle, t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        d1p, d2p = self.lik.branch_derivatives(handle, t)
        branch_sets = np.array([p.branch_set for p in self.lik.parts], dtype=np.intp)
        local = np.vstack(
            [
                np.bincount(branch_sets, weights=d1p, minlength=self.n_branch_sets),
                np.bincount(branch_sets, weights=d2p, minlength=self.n_branch_sets),
            ]
        )
        summed = self.comm.allreduce(local, ReduceOp.SUM, tag=CAT_BL_OPT)
        d1 = np.zeros(self.n_partitions)
        d2 = np.zeros(self.n_partitions)
        first: dict[int, int] = {}
        for i, bs in enumerate(branch_sets):
            first.setdefault(int(bs), i)
        for bs, i in first.items():
            d1[i] = summed[0][bs]
            d2[i] = summed[1][bs]
        return d1, d2

    def optimize_psr(self, u: Node, v: Node, candidates: np.ndarray) -> None:
        from repro.likelihood.backend import psr_scan_table

        tables = psr_scan_table(self.lik, u, v, candidates)
        if not tables:
            return
        psr_parts = sorted(tables)
        sums = np.zeros(2 * len(psr_parts))
        chosen: dict[int, np.ndarray] = {}
        for k, i in enumerate(psr_parts):
            rates_i = choose_psr_rates(candidates, tables[i])
            chosen[i] = rates_i
            w = self.lik.parts[i].weights
            sums[2 * k] = float(np.dot(w, rates_i))
            sums[2 * k + 1] = float(w.sum())
        totals = self.comm.allreduce(sums, ReduceOp.SUM, tag=CAT_MODEL)
        for k, i in enumerate(psr_parts):
            factor = totals[2 * k] / totals[2 * k + 1]
            self.lik.set_psr_rates(i, chosen[i] / factor)

    # set_alphas / set_gtr_rates / set_branch_length are purely local:
    # every replica executes the same deterministic update — the whole
    # point of the de-centralized scheme (inherited from SequentialBackend).


def recover_decentralized(
    backend: DecentralizedBackend,
    failed,
    full_parts,
    dist_kind: str = "cyclic",
):
    """Rebuild a survivor's backend after rank failures (paper Section V).

    The live counterpart of :func:`repro.engines.fault.redistribute_after_failure`:
    every replica holds the complete *search* state (tree, model,
    position), so losing ranks only loses data shares.  Survivors

    1. **agree** on the failed set (``MPI_Comm_agree`` analogue),
    2. **shrink** the communicator to the survivors
       (``MPI_Comm_shrink`` analogue — renumbered, drained, still
       rank-ordered deterministic),
    3. **redistribute**: re-split the replicated full data against the
       shrunk rank count (the validated analytical redistribution is
       returned as a :class:`~repro.engines.fault.FailureReport` for
       accounting), and
    4. rebuild the local :class:`PartitionedLikelihood` around the
       *current* replicated tree, carrying over the replicated model
       state, ready to **resume** the hill-climb.

    Per-site PSR rates are data-share state, not replicated state: after
    redistribution they restart from their initial values identically on
    every survivor (and re-converge at the next model-optimization pass),
    so the replicas stay bitwise consistent.

    Returns ``(new_backend, report)`` where ``report.failed_ranks`` is in
    the numbering of the communicator that detected the failure.
    """
    from repro.dist.distributions import (
        cyclic_distribution,
        mps_distribution,
        split_local_data,
    )
    from repro.engines.fault import redistribute_after_failure
    from repro.model.rates import DiscreteGamma

    comm = backend.comm
    agreed = comm.agree(failed)

    # analytical redistribution over the same rank space — validates that
    # no pattern is lost and prices the recovery traffic
    costs = np.array([p.cost_patterns for p in full_parts])
    if dist_kind == "mps":
        dist = mps_distribution(costs, comm.size, refine=False)
    else:
        dist = cyclic_distribution(costs, comm.size)
    report = redistribute_after_failure(dist, sorted(agreed))

    new_comm = comm.shrink(agreed)
    new_parts = split_local_data(
        full_parts, new_comm.rank, new_comm.size, dist_kind
    )
    old_parts = backend.lik.parts
    for new_p, old_p in zip(new_parts, old_parts):
        # replicated model state survives the failure by construction
        new_p.model = old_p.model
        if isinstance(new_p.rate_het, DiscreteGamma) and isinstance(
            old_p.rate_het, DiscreteGamma
        ):
            new_p.rate_het.alpha = old_p.rate_het.alpha
        new_p.bump_model()
    new_lik = PartitionedLikelihood(
        backend.lik.tree, new_parts, backend.lik.taxa
    )
    new_backend = DecentralizedBackend(new_comm, new_lik)
    # observability attachments survive the failure with the search state
    for attr in ("tracer", "progress"):
        value = getattr(backend, attr, None)
        if value is not None:
            setattr(new_backend, attr, value)
    return new_backend, report
