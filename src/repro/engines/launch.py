"""Launchers for genuinely distributed runs over the multiprocessing comm.

These run the full hill-climbing search under either scheme on ``n``
forked OS processes and return per-rank results — the executable proof
that both engines implement the identical algorithm: the consistency
tests assert that

* every decentralized replica finishes with the *same* tree and
  likelihood (the paper's Section III-B requirement), and
* both engines reproduce the sequential reference exactly (up to the
  ε-stub noise of empty cyclic shares, ~1e-10).

Both launchers can inject rank failures (``fault_plan``) to exercise the
live fault-tolerance paths:

* **de-centralized** — survivors detect the failure, agree on the failed
  set, shrink the communicator, re-split the replicated data and resume
  the search in-run (paper Section V, executed rather than modelled);
* **fork-join** — the run aborts (a worker loss starves the master; a
  master loss is catastrophic) and, for worker losses, restarts from the
  last periodic checkpoint (``checkpoint_every``/``checkpoint_path`` in
  :class:`~repro.search.search.SearchConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.dist.distributions import split_local_data
from repro.engines.decentral import DecentralizedBackend, recover_decentralized
from repro.engines.forkjoin import (
    CAT_TRAVERSAL,
    ForkJoinMasterBackend,
    forkjoin_worker,
)
from repro.errors import CommError, MasterLostError, QuorumLostError, RankFailureError
from repro.likelihood.partitioned import PartitionData, PartitionedLikelihood
from repro.obs.progress import NULL_PROGRESS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.par.comm import Comm
from repro.par.faultcomm import FaultInjectingComm, FaultPlan
from repro.par.mpcomm import run_mpi
from repro.search.search import SearchConfig, hill_climb
from repro.tree.newick import parse_newick, write_newick
from repro.tree.topology import Tree

__all__ = [
    "DistributedResult",
    "run_decentralized",
    "run_forkjoin",
    "run_sequential_reference",
]


@dataclass
class DistributedResult:
    """Per-rank outcome of a distributed search."""

    logl: float
    newick: str
    iterations: int
    bytes_by_tag: dict[str, int]
    failed_ranks: tuple[int, ...] = ()
    recoveries: int = 0
    restarts: int = 0
    #: Collective calls per Table-I tag (always counted, like bytes).
    calls_by_tag: dict[str, int] = field(default_factory=dict)
    #: Metrics snapshot of this rank's run (empty when tracing is off).
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Path of this rank's JSONL trace stream (None when tracing is off).
    trace_path: str | None = None
    #: Heartbeat/progress directory of the run (None when unmonitored).
    monitor_dir: str | None = None
    #: Path of this rank's progress-event JSONL (None when unmonitored).
    progress_path: str | None = None
    #: True when the run stopped at a cooperative cancellation point
    #: (SIGTERM under ``cancellable=True``) instead of finishing.
    cancelled: bool = False


def _rebuild_tree(newick: str, n_branch_sets: int) -> Tree:
    tree = parse_newick(newick, n_branch_sets)
    if n_branch_sets > 1:
        tree.set_n_branch_sets(n_branch_sets)
    return tree


def _maybe_inject(comm: Comm, payload: dict[str, Any]) -> Comm:
    plan: FaultPlan | None = payload.get("fault_plan")
    if plan is not None and comm.size > 1:
        return FaultInjectingComm(comm, plan)
    return comm


def _maybe_sanitize(comm: Comm, payload: dict[str, Any]) -> Comm:
    """Innermost wrapper (fault injection and tracing stack on top): the
    injector must count application collectives, not the sanitizer's
    control rounds, and spans should time the checked call as one unit."""
    if payload.get("sanitize") and comm.size > 1:
        from repro.par.sanitize import SanitizingComm

        return SanitizingComm(comm)
    return comm


def _prepare_trace_dir(trace_dir: str | Path | None) -> str | None:
    """Create the trace directory in the parent, before ranks fork."""
    if trace_dir is None:
        return None
    path = Path(trace_dir)
    path.mkdir(parents=True, exist_ok=True)
    return str(path)


def _make_telemetry(comm: Comm, payload: dict[str, Any], world_rank: int):
    """Build the live-telemetry side channel for one rank.

    Returns ``(comm, heartbeat_writer, progress_reporter)``.  When
    ``monitor_dir`` is unset this is the zero-cost path: no wrapper, no
    thread, no files — just the shared :data:`NULL_PROGRESS`.

    The monitored wrapper must sit *inside* fault injection (see the
    call sites): an injected hang then fires before the heartbeat state
    records the call, so the hung rank observably never *entered* call
    ``K`` while its peers freeze *inside* ``K`` — the asymmetry
    :func:`repro.obs.monitor.diagnose` keys on.  It also sits *outside*
    the sanitizer, whose control rounds bypass it, keeping the
    heartbeat call numbering aligned with the injector's.
    """
    monitor_dir = payload.get("monitor_dir")
    if not monitor_dir:
        return comm, None, NULL_PROGRESS
    from repro.obs.heartbeat import (
        DEFAULT_BEAT_INTERVAL,
        HeartbeatState,
        HeartbeatWriter,
        MonitoredComm,
    )
    from repro.obs.progress import ProgressReporter, ProgressStream, progress_path

    state = HeartbeatState(world_rank)
    comm = MonitoredComm(comm, state)
    stream = ProgressStream(progress_path(monitor_dir, world_rank),
                            world_rank)
    reporter = ProgressReporter(state, stream)
    writer = HeartbeatWriter(
        monitor_dir, state,
        interval=payload.get("beat_interval") or DEFAULT_BEAT_INTERVAL,
    ).start()
    return comm, writer, reporter


def _close_telemetry(writer, progress, ok: bool) -> None:
    """Final beat + stream close; terminal phase tells the monitor (and
    `repro watch`) whether the rank finished or unwound on an error."""
    if writer is None:
        return
    final = "done" if ok else "failed"
    progress.event("run_end", ok=ok)
    progress.close(final_phase=final)
    writer.stop(final_phase=final)


def _arm_cancellation(backend, payload: dict[str, Any]) -> None:
    """Attach the cooperative stop poll for a cancellable launch.

    Decentralized backends agree on the stop collectively (every replica
    polls the same ``allreduce(MAX)`` site, so skewed signal delivery
    cannot desynchronize the collective sequence); the fork-join master
    decides locally — its workers are command-driven and stop when it
    broadcasts the normal end-of-search STOP.  Must be re-attached after
    in-run recovery replaces the backend (like tracer/progress).
    """
    if not payload.get("cancellable"):
        return
    from repro.engines.cancel import cancel_requested, make_agree_stop

    if isinstance(backend, DecentralizedBackend):
        backend.agree_stop = make_agree_stop(lambda: backend.comm)
    else:
        backend.agree_stop = cancel_requested


def _install_cancel_handler(payload: dict[str, Any]) -> None:
    """Child-rank half of cooperative cancellation: SIGTERM sets a flag."""
    if payload.get("cancellable"):
        from repro.engines.cancel import install_sigterm_flag

        install_sigterm_flag()


def _make_obs(payload: dict[str, Any], world_rank: int):
    """Build (tracer, metrics, profiler) for one rank; the null tracer
    (no metrics, no profiler, and — crucially — no comm wrapper) when
    tracing is off.

    The launch's ``trace_id`` (an end-to-end lifecycle identity minted
    by e.g. the serve daemon) rides on the tracer so the flushed stream
    merges with the daemon's service spans under one id.  The op
    profiler accumulates per-kernel-op totals that flush as summary
    spans into the same stream."""
    if not payload.get("trace_dir"):
        return NULL_TRACER, None, None
    from repro.obs.hotspots import OpProfiler
    from repro.obs.metrics import MetricsRegistry

    capacity = payload.get("trace_capacity")
    trace_id = payload.get("trace_id") or ""
    tracer = (Tracer(rank=world_rank, capacity=capacity, trace_id=trace_id)
              if capacity else Tracer(rank=world_rank, trace_id=trace_id))
    return tracer, MetricsRegistry(), OpProfiler()


def _emit_profile(profiler, tracer, metrics, source) -> None:
    """Flush a rank's kernel profile (plus its CLV owner's memory
    accounting) into the trace stream before ``_flush_trace`` runs."""
    if profiler is None or not tracer.enabled:
        return
    from repro.obs.hotspots import emit_kernel_profile

    emit_kernel_profile(profiler, tracer, metrics,
                        clv_sources=() if source is None else (source,))


def _wrap_tracing(comm: Comm, tracer, metrics) -> Comm:
    if not tracer.enabled:
        return comm
    from repro.obs.instrument import TracingComm

    return TracingComm(comm, tracer, metrics)


def _flush_trace(tracer, payload: dict[str, Any],
                 world_rank: int) -> str | None:
    """Write this rank's span stream to ``trace_dir``; rank files are
    keyed by *original* world rank so shrinks don't collide names.

    A ring-buffer overflow is recorded *in the stream itself* as a
    trailing ``trace_truncated`` meta record, so any later analysis of
    the merged trace can warn that this rank's early spans are missing
    instead of silently under-attributing its time."""
    if not tracer.enabled:
        return None
    from repro.obs.export import rank_trace_path, span_to_dict, write_jsonl

    records = [span_to_dict(s) for s in tracer.spans()]
    if tracer.dropped:
        t_ns = records[-1]["t1_ns"] if records else 0
        records.append({
            "name": "trace_truncated", "kind": "meta", "rank": world_rank,
            "t0_ns": t_ns, "t1_ns": t_ns,
            "attrs": {"dropped_spans": int(tracer.dropped)},
        })
    if getattr(tracer, "trace_id", ""):
        for record in records:
            record["trace_id"] = tracer.trace_id
    path = rank_trace_path(payload["trace_dir"], world_rank)
    write_jsonl(records, path)
    return str(path)


def _obs_snapshot(metrics, tracer) -> dict[str, Any]:
    if metrics is None:
        return {}
    metrics.gauge("trace.spans").set(len(tracer))
    metrics.gauge("trace.dropped_spans").set(tracer.dropped)
    return metrics.snapshot()


def _decentral_rank(comm: Comm, payload: dict[str, Any]) -> DistributedResult:
    world0 = comm.rank  # original world rank: names the trace stream
    _install_cancel_handler(payload)
    tracer, metrics, profiler = _make_obs(payload, world0)
    comm, hb_writer, progress = _make_telemetry(
        _maybe_sanitize(comm, payload), payload, world0)
    comm = _wrap_tracing(_maybe_inject(comm, payload), tracer, metrics)
    tree = _rebuild_tree(payload["newick"], payload["n_branch_sets"])
    local_parts = split_local_data(
        payload["parts"], comm.rank, comm.size, payload["dist_kind"]
    )
    lik = PartitionedLikelihood(tree, local_parts, payload["taxa"])
    if profiler is not None:
        lik.profiler = profiler
    resume_from = payload.get("resume_from")
    if resume_from:
        # Supervised restart: every replica restores the identical
        # checkpointed state locally (no broadcast needed — the whole
        # point of the de-centralized scheme), then resumes the climb.
        from repro.search.checkpoint import load_checkpoint, restore_into

        meta, arrays = load_checkpoint(resume_from)
        restore_into(lik, meta, arrays)
        tree = lik.tree
    backend = DecentralizedBackend(comm, lik)
    backend.tracer = tracer
    backend.progress = progress
    _arm_cancellation(backend, payload)
    progress.event("run_start", engine="decentralized", ranks=comm.size,
                   dist=payload["dist_kind"])

    min_ranks = int(payload.get("min_ranks") or 1)
    all_failed: list[int] = []
    recoveries = 0
    ok = False
    try:
        while True:
            try:
                result = hill_climb(backend, payload["config"])
                break
            except RankFailureError as exc:
                # Section V, live: agree → shrink → redistribute → resume.
                # The tree and model in `backend` are this replica's full
                # copy of the search state; only the data share is rebuilt.
                failed_set = {int(r) for r in exc.failed_ranks}
                tracer.instant(
                    "rank_failure", kind="recovery",
                    failed=sorted(failed_set),
                )
                progress.event("rank_failure", failed=sorted(failed_set))
                progress.status(phase="recover", in_collective=False)
                with tracer.span("recover", kind="recovery"):
                    # Recovery itself may be hit by further failures
                    # (a second rank dying inside agree/shrink): retry
                    # with the union of every failed set observed so
                    # far until a round completes on the survivors.
                    while True:
                        try:
                            # replicheck: ignore[R003] -- recovery starts with comm.agree so every rank converges on the failed set before any survivor-side collective is issued
                            backend, report = recover_decentralized(
                                backend, failed_set, payload["parts"],
                                payload["dist_kind"],
                            )
                            break
                        except RankFailureError as again:
                            failed_set |= {int(r)
                                           for r in again.failed_ranks}
                tracer.instant(
                    "redistribute", kind="recovery",
                    bytes_moved=report.bytes_moved,
                    survivors=report.survivors,
                )
                all_failed.extend(comm.world_ranks(report.failed_ranks))
                comm = backend.comm
                backend.tracer = tracer
                backend.progress = progress
                if profiler is not None:
                    # recovery rebuilt the likelihood around the new share
                    backend.lik.profiler = profiler
                _arm_cancellation(backend, payload)
                recoveries += 1
                if metrics is not None:
                    metrics.counter("recovery.rounds").inc()
                if comm.size < min_ranks:
                    # Graceful degradation has a floor: the shrunk mesh
                    # could finish, but the policy judges it too narrow.
                    # Not a RankFailureError — the in-mesh loop must not
                    # "recover" from it; the remedy (tier-2 restart at a
                    # different width) belongs to the supervisor.
                    progress.event("quorum_lost", survivors=comm.size,
                                   min_ranks=min_ranks)
                    raise QuorumLostError(
                        comm.size, min_ranks,
                        failed_ranks=sorted(set(all_failed)))
                tracer.instant("resume", kind="recovery")
                progress.event(
                    "recovery", failed=sorted(set(all_failed)),
                    survivors=report.survivors,
                    bytes_moved=report.bytes_moved, round=recoveries,
                )
                progress.status(phase="resume", recoveries=recoveries)
        ok = True
    finally:
        _emit_profile(profiler, tracer, metrics, backend.lik)
        trace_path = _flush_trace(tracer, payload, world0)
        _close_telemetry(hb_writer, progress, ok)

    return DistributedResult(
        logl=result.logl,
        newick=write_newick(backend.tree, lengths=False),
        iterations=result.iterations,
        bytes_by_tag=dict(getattr(comm, "bytes_by_tag", {})),
        failed_ranks=tuple(sorted(set(all_failed))),
        recoveries=recoveries,
        calls_by_tag=dict(getattr(comm, "calls_by_tag", {})),
        metrics=_obs_snapshot(metrics, tracer),
        trace_path=trace_path,
        monitor_dir=payload.get("monitor_dir"),
        progress_path=(str(progress.stream.path)
                       if progress.stream is not None else None),
        cancelled=result.cancelled,
    )


def run_decentralized(
    parts: list[PartitionData],
    taxa: list[str],
    start_newick: str,
    n_ranks: int,
    config: SearchConfig | None = None,
    dist_kind: str = "cyclic",
    n_branch_sets: int = 1,
    fault_plan: FaultPlan | None = None,
    detect_timeout: float | None = None,
    trace_dir: str | Path | None = None,
    trace_capacity: int | None = None,
    trace_id: str = "",
    sanitize: bool = False,
    monitor_dir: str | Path | None = None,
    beat_interval: float | None = None,
    min_ranks: int = 1,
    resume_from: str | Path | None = None,
    timeout: float | None = None,
    cancellable: bool = False,
) -> list[DistributedResult]:
    """Run the ExaML scheme on ``n_ranks`` real processes.

    With a ``fault_plan``, injected rank deaths are survived in-run: the
    returned list holds ``None`` at failed ranks and the survivors'
    results record the failure and recovery (``failed_ranks`` in the
    original rank numbering, ``recoveries``).

    With ``sanitize=True``, every collective is cross-checked across
    ranks first (:class:`~repro.par.sanitize.SanitizingComm`); replica
    divergence raises
    :class:`~repro.errors.ReplicaDivergenceError` on every rank instead
    of silently drifting or deadlocking.

    With ``trace_dir``, every rank traces its collectives (spans +
    counters, see :mod:`repro.obs`) and writes
    ``trace_dir/trace-rank<R>.jsonl`` before returning; each surviving
    result carries its metrics snapshot and trace path.

    With ``monitor_dir``, every rank additionally runs the live
    telemetry side channel (:mod:`repro.obs.heartbeat` /
    :mod:`repro.obs.progress`): a heartbeat status file rewritten every
    ``beat_interval`` seconds plus a streamed progress-event JSONL, so
    a parent-side :class:`~repro.obs.monitor.Monitor` (or ``repro
    watch``) can observe — and diagnose stalls in — the run while it
    executes.

    ``min_ranks`` is the supervising policy's quorum: in-run recovery
    shrinks and resumes (graceful degradation) only while at least this
    many survivors remain; one fewer raises
    :class:`~repro.errors.QuorumLostError` instead of resuming.
    ``resume_from`` restores every replica from a checkpoint before the
    search starts (the supervised tier-1 restart path); ``timeout``
    bounds the whole launch (the supervisor's per-attempt wall-clock
    budget).
    """
    payload = {
        "parts": parts,
        "taxa": taxa,
        "newick": start_newick,
        "config": config or SearchConfig(),
        "dist_kind": dist_kind,
        "n_branch_sets": n_branch_sets,
        "fault_plan": fault_plan,
        "trace_dir": _prepare_trace_dir(trace_dir),
        "trace_capacity": trace_capacity,
        "trace_id": trace_id,
        "sanitize": sanitize,
        "monitor_dir": _prepare_trace_dir(monitor_dir),
        "beat_interval": beat_interval,
        "min_ranks": min_ranks,
        "resume_from": str(resume_from) if resume_from else None,
        "cancellable": cancellable,
    }
    kwargs: dict[str, Any] = {}
    if timeout is not None:
        kwargs["timeout"] = timeout
    return run_mpi(
        n_ranks,
        _decentral_rank,
        [payload] * n_ranks,
        detect_timeout=detect_timeout,
        allow_failures=fault_plan is not None,
        forward_sigterm=cancellable,
        **kwargs,
    )


def _forkjoin_rank(comm: Comm, payload: dict[str, Any]) -> DistributedResult | None:
    world0 = comm.rank
    _install_cancel_handler(payload)
    tracer, metrics, profiler = _make_obs(payload, world0)
    comm, hb_writer, progress = _make_telemetry(comm, payload, world0)
    comm = _wrap_tracing(_maybe_inject(comm, payload), tracer, metrics)
    local_parts = split_local_data(
        payload["parts"], comm.rank, comm.size, payload["dist_kind"]
    )
    # Flush in a finally: a RankFailureError unwinding a collective must
    # still leave this rank's trace (with the error-flagged span) on disk.
    ok = False
    lik = None  # the master's full-copy likelihood (workers keep None)
    try:
        resume_from = payload.get("resume_from")
        progress.event("run_start", engine="forkjoin", ranks=comm.size,
                       dist=payload["dist_kind"])
        if comm.rank == 0:
            tree = _rebuild_tree(payload["newick"], payload["n_branch_sets"])
            lik = PartitionedLikelihood(tree, local_parts, payload["taxa"])
            if profiler is not None:
                lik.profiler = profiler
            backend = ForkJoinMasterBackend(comm, lik)
            backend.tracer = tracer
            backend.progress = progress
            _arm_cancellation(backend, payload)
            if resume_from:
                from repro.search.checkpoint import load_checkpoint, restore_into

                meta, arrays = load_checkpoint(resume_from)
                restore_into(lik, meta, arrays)
                backend.tree = lik.tree
                tree = lik.tree
        node_taxon = payload["node_taxon"]
        if resume_from:
            # The restored tree was re-parsed from the checkpoint's
            # newick: after SPR moves its leaf node ids no longer match
            # the start tree's, so the node_taxon map every rank was
            # launched with is stale.  The master rebuilds it from the
            # restored tree and every rank receives it here — the same
            # collective at the same call site — before any descriptor
            # references a leaf.
            refreshed = None
            if comm.rank == 0:
                taxon_row = {label: i
                             for i, label in enumerate(payload["taxa"])}
                refreshed = {leaf.id: taxon_row[leaf.label]
                             for leaf in tree.leaves()}
            node_taxon = comm.bcast(refreshed, root=0, tag=CAT_TRAVERSAL)
        # replicheck: ignore[R003] -- master/worker command protocol: the master's set_* calls broadcast commands that the workers' command loop answers with the matching collectives
        if comm.rank == 0:
            if resume_from:
                from repro.model.rates import DiscreteGamma

                # Workers restarted with pristine model parameters; push the
                # restored ones through the regular broadcast commands so the
                # mesh is consistent before the search resumes.
                alphas = {
                    p: lik.get_alpha(p)
                    for p in range(lik.n_partitions)
                    if isinstance(lik.parts[p].rate_het, DiscreteGamma)
                }
                if alphas:
                    backend.set_alphas(alphas)
                backend.set_gtr_rates(
                    {p: lik.parts[p].model.rates
                     for p in range(lik.n_partitions)}
                )
            result = hill_climb(backend, payload["config"])
            ok = True
            return DistributedResult(
                logl=result.logl,
                newick=write_newick(tree, lengths=False),
                iterations=result.iterations,
                bytes_by_tag=dict(getattr(comm, "bytes_by_tag", {})),
                restarts=payload.get("restarts", 0),
                cancelled=result.cancelled,
                calls_by_tag=dict(getattr(comm, "calls_by_tag", {})),
                metrics=_obs_snapshot(metrics, tracer),
                monitor_dir=payload.get("monitor_dir"),
                progress_path=(str(progress.stream.path)
                               if progress.stream is not None else None),
            )
        forkjoin_worker(
            comm, local_parts, node_taxon,
            payload["n_branch_sets"], tracer=tracer, metrics=metrics,
            progress=progress, profiler=profiler,
        )
        ok = True
        return None
    finally:
        # Workers emit their profile inside forkjoin_worker (they own the
        # executor); the master emits here for its reduction-side kernels.
        if lik is not None:
            _emit_profile(profiler, tracer, metrics, lik)
        _flush_trace(tracer, payload, world0)
        _close_telemetry(hb_writer, progress, ok)


def run_forkjoin(
    parts: list[PartitionData],
    taxa: list[str],
    start_newick: str,
    n_ranks: int,
    config: SearchConfig | None = None,
    dist_kind: str = "cyclic",
    n_branch_sets: int = 1,
    fault_plan: FaultPlan | None = None,
    detect_timeout: float | None = None,
    max_restarts: int = 1,
    trace_dir: str | Path | None = None,
    trace_capacity: int | None = None,
    trace_id: str = "",
    monitor_dir: str | Path | None = None,
    beat_interval: float | None = None,
    resume_from: str | Path | None = None,
    timeout: float | None = None,
    cancellable: bool = False,
) -> DistributedResult:
    """Run the RAxML-Light scheme on ``n_ranks`` real processes.

    Returns the master's result (workers return nothing — they are
    tree-agnostic by design).

    Fault handling is the paper's contrast case: a failure aborts the
    whole run.  A *master* failure is unrecoverable in-run (the only
    copy of the search state dies with rank 0 — "catastrophic") and
    raises the typed :class:`~repro.errors.MasterLostError` naming the
    latest durable checkpoint when one exists, so a supervising layer
    can distinguish "restartable from checkpoint" from "restart from
    scratch".  A *worker* failure restarts the run — from the last
    periodic checkpoint when ``config.checkpoint_every``/
    ``checkpoint_path`` are set, from scratch otherwise — at most
    ``max_restarts`` times.  Injection only applies to the first attempt
    (the restart models a replacement node).

    ``resume_from`` starts the *first* attempt from a checkpoint (the
    supervised restart path); ``timeout`` bounds each attempt's
    wall-clock (the supervisor's per-attempt budget).
    """
    tree = _rebuild_tree(start_newick, n_branch_sets)
    taxon_row = {label: i for i, label in enumerate(taxa)}
    node_taxon = {
        leaf.id: taxon_row[leaf.label] for leaf in tree.leaves()  # type: ignore[index]
    }
    config = config or SearchConfig()
    payload = {
        "parts": parts,
        "taxa": taxa,
        "newick": start_newick,
        "config": config,
        "dist_kind": dist_kind,
        "n_branch_sets": n_branch_sets,
        "node_taxon": node_taxon,
        "fault_plan": fault_plan,
        "trace_dir": _prepare_trace_dir(trace_dir),
        "trace_capacity": trace_capacity,
        "trace_id": trace_id,
        "monitor_dir": _prepare_trace_dir(monitor_dir),
        "beat_interval": beat_interval,
        "cancellable": cancellable,
    }
    if resume_from:
        payload["resume_from"] = str(resume_from)

    def _latest_checkpoint() -> Path | None:
        ckpt = Path(config.checkpoint_path) if config.checkpoint_path else None
        if ckpt is not None and ckpt.suffix != ".npz":
            ckpt = ckpt.with_name(ckpt.name + ".npz")  # np.savez suffixing
        return ckpt if ckpt is not None and ckpt.exists() else None

    run_kwargs: dict[str, Any] = {}
    if timeout is not None:
        run_kwargs["timeout"] = timeout
    restarts = 0
    while True:
        try:
            results = run_mpi(
                n_ranks,
                _forkjoin_rank,
                [payload] * n_ranks,
                detect_timeout=detect_timeout,
                forward_sigterm=cancellable,
                **run_kwargs,
            )
            break
        except RankFailureError as exc:
            from repro.engines.fault import forkjoin_failure_outcome

            ckpt = _latest_checkpoint()
            outcome = forkjoin_failure_outcome(
                sorted(exc.failed_ranks),
                checkpoint=str(ckpt) if ckpt else None,
            )
            if 0 in exc.failed_ranks:
                # Typed, not a generic unrecoverable failure: the state
                # is gone, not corrupt — a supervisor can restart from
                # the checkpoint the error names.
                raise MasterLostError(
                    exc.failed_ranks,
                    checkpoint=str(ckpt) if ckpt else None,
                    message=f"fork-join run unrecoverable: {outcome.reason}",
                ) from exc
            if restarts >= max_restarts:
                raise CommError(
                    f"fork-join run failed after {restarts} restart(s): "
                    f"{outcome.reason}"
                ) from exc
            restarts += 1
            payload = dict(payload)
            payload["fault_plan"] = None  # the failed node was replaced
            payload["restarts"] = restarts
            if ckpt is not None:
                payload["resume_from"] = str(ckpt)
    master = results[0]
    if master is None:
        raise CommError("fork-join master returned no result")
    if payload["trace_dir"]:
        from repro.obs.export import rank_trace_path

        master.trace_path = str(rank_trace_path(payload["trace_dir"], 0))
    return master


def run_sequential_reference(
    parts: list[PartitionData],
    taxa: list[str],
    start_newick: str,
    config: SearchConfig | None = None,
    n_branch_sets: int = 1,
) -> DistributedResult:
    """The single-rank reference both engines must reproduce."""
    from repro.likelihood.backend import SequentialBackend

    tree = _rebuild_tree(start_newick, n_branch_sets)
    # private copies: optimization must not mutate the caller's partitions
    parts = [p.subset(np.arange(p.n_patterns)) for p in parts]
    lik = PartitionedLikelihood(tree, parts, taxa)
    backend = SequentialBackend(lik)
    result = hill_climb(backend, config or SearchConfig())
    return DistributedResult(
        logl=result.logl,
        newick=write_newick(tree, lengths=False),
        iterations=result.iterations,
        bytes_by_tag={},
    )
