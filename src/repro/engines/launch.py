"""Launchers for genuinely distributed runs over the multiprocessing comm.

These run the full hill-climbing search under either scheme on ``n``
forked OS processes and return per-rank results — the executable proof
that both engines implement the identical algorithm: the consistency
tests assert that

* every decentralized replica finishes with the *same* tree and
  likelihood (the paper's Section III-B requirement), and
* both engines reproduce the sequential reference exactly (up to the
  ε-stub noise of empty cyclic shares, ~1e-10).

Both launchers can inject rank failures (``fault_plan``) to exercise the
live fault-tolerance paths:

* **de-centralized** — survivors detect the failure, agree on the failed
  set, shrink the communicator, re-split the replicated data and resume
  the search in-run (paper Section V, executed rather than modelled);
* **fork-join** — the run aborts (a worker loss starves the master; a
  master loss is catastrophic) and, for worker losses, restarts from the
  last periodic checkpoint (``checkpoint_every``/``checkpoint_path`` in
  :class:`~repro.search.search.SearchConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.dist.distributions import split_local_data
from repro.engines.decentral import DecentralizedBackend, recover_decentralized
from repro.engines.forkjoin import ForkJoinMasterBackend, forkjoin_worker
from repro.errors import CommError, RankFailureError
from repro.likelihood.partitioned import PartitionData, PartitionedLikelihood
from repro.par.comm import Comm
from repro.par.faultcomm import FaultInjectingComm, FaultPlan
from repro.par.mpcomm import run_mpi
from repro.search.search import SearchConfig, hill_climb
from repro.tree.newick import parse_newick, write_newick
from repro.tree.topology import Tree

__all__ = [
    "DistributedResult",
    "run_decentralized",
    "run_forkjoin",
    "run_sequential_reference",
]


@dataclass
class DistributedResult:
    """Per-rank outcome of a distributed search."""

    logl: float
    newick: str
    iterations: int
    bytes_by_tag: dict[str, int]
    failed_ranks: tuple[int, ...] = ()
    recoveries: int = 0
    restarts: int = 0


def _rebuild_tree(newick: str, n_branch_sets: int) -> Tree:
    tree = parse_newick(newick, n_branch_sets)
    if n_branch_sets > 1:
        tree.set_n_branch_sets(n_branch_sets)
    return tree


def _maybe_inject(comm: Comm, payload: dict[str, Any]) -> Comm:
    plan: FaultPlan | None = payload.get("fault_plan")
    if plan is not None and comm.size > 1:
        return FaultInjectingComm(comm, plan)
    return comm


def _decentral_rank(comm: Comm, payload: dict[str, Any]) -> DistributedResult:
    comm = _maybe_inject(comm, payload)
    tree = _rebuild_tree(payload["newick"], payload["n_branch_sets"])
    local_parts = split_local_data(
        payload["parts"], comm.rank, comm.size, payload["dist_kind"]
    )
    lik = PartitionedLikelihood(tree, local_parts, payload["taxa"])
    backend = DecentralizedBackend(comm, lik)

    all_failed: list[int] = []
    recoveries = 0
    while True:
        try:
            result = hill_climb(backend, payload["config"])
            break
        except RankFailureError as exc:
            # Section V, live: agree → shrink → redistribute → resume.
            # The tree and model in `backend` are this replica's full
            # copy of the search state; only the data share is rebuilt.
            backend, report = recover_decentralized(
                backend, exc.failed_ranks, payload["parts"],
                payload["dist_kind"],
            )
            all_failed.extend(comm.world_ranks(report.failed_ranks))
            comm = backend.comm
            recoveries += 1

    bytes_by_tag = dict(getattr(comm, "bytes_by_tag", {}))
    return DistributedResult(
        logl=result.logl,
        newick=write_newick(backend.tree, lengths=False),
        iterations=result.iterations,
        bytes_by_tag=bytes_by_tag,
        failed_ranks=tuple(sorted(set(all_failed))),
        recoveries=recoveries,
    )


def run_decentralized(
    parts: list[PartitionData],
    taxa: list[str],
    start_newick: str,
    n_ranks: int,
    config: SearchConfig | None = None,
    dist_kind: str = "cyclic",
    n_branch_sets: int = 1,
    fault_plan: FaultPlan | None = None,
    detect_timeout: float | None = None,
) -> list[DistributedResult]:
    """Run the ExaML scheme on ``n_ranks`` real processes.

    With a ``fault_plan``, injected rank deaths are survived in-run: the
    returned list holds ``None`` at failed ranks and the survivors'
    results record the failure and recovery (``failed_ranks`` in the
    original rank numbering, ``recoveries``).
    """
    payload = {
        "parts": parts,
        "taxa": taxa,
        "newick": start_newick,
        "config": config or SearchConfig(),
        "dist_kind": dist_kind,
        "n_branch_sets": n_branch_sets,
        "fault_plan": fault_plan,
    }
    return run_mpi(
        n_ranks,
        _decentral_rank,
        [payload] * n_ranks,
        detect_timeout=detect_timeout,
        allow_failures=fault_plan is not None,
    )


def _forkjoin_rank(comm: Comm, payload: dict[str, Any]) -> DistributedResult | None:
    comm = _maybe_inject(comm, payload)
    local_parts = split_local_data(
        payload["parts"], comm.rank, comm.size, payload["dist_kind"]
    )
    if comm.rank == 0:
        tree = _rebuild_tree(payload["newick"], payload["n_branch_sets"])
        lik = PartitionedLikelihood(tree, local_parts, payload["taxa"])
        backend = ForkJoinMasterBackend(comm, lik)
        resume_from = payload.get("resume_from")
        if resume_from:
            from repro.model.rates import DiscreteGamma
            from repro.search.checkpoint import load_checkpoint, restore_into

            meta, arrays = load_checkpoint(resume_from)
            restore_into(lik, meta, arrays)
            backend.tree = lik.tree
            tree = lik.tree
            # Workers restarted with pristine model parameters; push the
            # restored ones through the regular broadcast commands so the
            # mesh is consistent before the search resumes.
            alphas = {
                p: lik.get_alpha(p)
                for p in range(lik.n_partitions)
                if isinstance(lik.parts[p].rate_het, DiscreteGamma)
            }
            if alphas:
                backend.set_alphas(alphas)
            backend.set_gtr_rates(
                {p: lik.parts[p].model.rates for p in range(lik.n_partitions)}
            )
        result = hill_climb(backend, payload["config"])
        return DistributedResult(
            logl=result.logl,
            newick=write_newick(tree, lengths=False),
            iterations=result.iterations,
            bytes_by_tag=dict(getattr(comm, "bytes_by_tag", {})),
            restarts=payload.get("restarts", 0),
        )
    forkjoin_worker(
        comm, local_parts, payload["node_taxon"], payload["n_branch_sets"]
    )
    return None


def run_forkjoin(
    parts: list[PartitionData],
    taxa: list[str],
    start_newick: str,
    n_ranks: int,
    config: SearchConfig | None = None,
    dist_kind: str = "cyclic",
    n_branch_sets: int = 1,
    fault_plan: FaultPlan | None = None,
    detect_timeout: float | None = None,
    max_restarts: int = 1,
) -> DistributedResult:
    """Run the RAxML-Light scheme on ``n_ranks`` real processes.

    Returns the master's result (workers return nothing — they are
    tree-agnostic by design).

    Fault handling is the paper's contrast case: a failure aborts the
    whole run.  A *master* failure is unrecoverable (the only copy of
    the search state dies with rank 0 — "catastrophic").  A *worker*
    failure restarts the run — from the last periodic checkpoint when
    ``config.checkpoint_every``/``config.checkpoint_path`` are set, from
    scratch otherwise — at most ``max_restarts`` times.  Injection only
    applies to the first attempt (the restart models a replacement
    node).
    """
    tree = _rebuild_tree(start_newick, n_branch_sets)
    taxon_row = {label: i for i, label in enumerate(taxa)}
    node_taxon = {
        leaf.id: taxon_row[leaf.label] for leaf in tree.leaves()  # type: ignore[index]
    }
    config = config or SearchConfig()
    payload = {
        "parts": parts,
        "taxa": taxa,
        "newick": start_newick,
        "config": config,
        "dist_kind": dist_kind,
        "n_branch_sets": n_branch_sets,
        "node_taxon": node_taxon,
        "fault_plan": fault_plan,
    }
    restarts = 0
    while True:
        try:
            results = run_mpi(
                n_ranks,
                _forkjoin_rank,
                [payload] * n_ranks,
                detect_timeout=detect_timeout,
            )
            break
        except RankFailureError as exc:
            from repro.engines.fault import forkjoin_failure_outcome

            outcome = forkjoin_failure_outcome(sorted(exc.failed_ranks))
            if 0 in exc.failed_ranks:
                raise CommError(
                    f"fork-join run unrecoverable: {outcome.reason}"
                ) from exc
            if restarts >= max_restarts:
                raise CommError(
                    f"fork-join run failed after {restarts} restart(s): "
                    f"{outcome.reason}"
                ) from exc
            restarts += 1
            payload = dict(payload)
            payload["fault_plan"] = None  # the failed node was replaced
            payload["restarts"] = restarts
            ckpt = Path(config.checkpoint_path) if config.checkpoint_path else None
            if ckpt is not None and ckpt.suffix != ".npz":
                ckpt = ckpt.with_name(ckpt.name + ".npz")  # np.savez suffixing
            if ckpt is not None and ckpt.exists():
                payload["resume_from"] = str(ckpt)
    master = results[0]
    if master is None:
        raise CommError("fork-join master returned no result")
    return master


def run_sequential_reference(
    parts: list[PartitionData],
    taxa: list[str],
    start_newick: str,
    config: SearchConfig | None = None,
    n_branch_sets: int = 1,
) -> DistributedResult:
    """The single-rank reference both engines must reproduce."""
    import numpy as np

    from repro.likelihood.backend import SequentialBackend

    tree = _rebuild_tree(start_newick, n_branch_sets)
    # private copies: optimization must not mutate the caller's partitions
    parts = [p.subset(np.arange(p.n_patterns)) for p in parts]
    lik = PartitionedLikelihood(tree, parts, taxa)
    backend = SequentialBackend(lik)
    result = hill_climb(backend, config or SearchConfig())
    return DistributedResult(
        logl=result.logl,
        newick=write_newick(tree, lengths=False),
        iterations=result.iterations,
        bytes_by_tag={},
    )
