"""Launchers for genuinely distributed runs over the multiprocessing comm.

These run the full hill-climbing search under either scheme on ``n``
forked OS processes and return per-rank results — the executable proof
that both engines implement the identical algorithm: the consistency
tests assert that

* every decentralized replica finishes with the *same* tree and
  likelihood (the paper's Section III-B requirement), and
* both engines reproduce the sequential reference exactly (up to the
  ε-stub noise of empty cyclic shares, ~1e-10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.dist.distributions import split_local_data
from repro.engines.decentral import DecentralizedBackend
from repro.engines.forkjoin import ForkJoinMasterBackend, forkjoin_worker
from repro.errors import CommError
from repro.likelihood.partitioned import PartitionData, PartitionedLikelihood
from repro.par.comm import Comm
from repro.par.mpcomm import run_mpi
from repro.search.search import SearchConfig, hill_climb
from repro.tree.newick import parse_newick, write_newick
from repro.tree.topology import Tree

__all__ = ["DistributedResult", "run_decentralized", "run_forkjoin", "run_sequential_reference"]


@dataclass
class DistributedResult:
    """Per-rank outcome of a distributed search."""

    logl: float
    newick: str
    iterations: int
    bytes_by_tag: dict[str, int]


def _rebuild_tree(newick: str, n_branch_sets: int) -> Tree:
    tree = parse_newick(newick, n_branch_sets)
    if n_branch_sets > 1:
        tree.set_n_branch_sets(n_branch_sets)
    return tree


def _decentral_rank(comm: Comm, payload: dict[str, Any]) -> DistributedResult:
    tree = _rebuild_tree(payload["newick"], payload["n_branch_sets"])
    local_parts = split_local_data(
        payload["parts"], comm.rank, comm.size, payload["dist_kind"]
    )
    lik = PartitionedLikelihood(tree, local_parts, payload["taxa"])
    backend = DecentralizedBackend(comm, lik)
    result = hill_climb(backend, payload["config"])
    bytes_by_tag = dict(getattr(comm, "bytes_by_tag", {}))
    return DistributedResult(
        logl=result.logl,
        newick=write_newick(tree, lengths=False),
        iterations=result.iterations,
        bytes_by_tag=bytes_by_tag,
    )


def run_decentralized(
    parts: list[PartitionData],
    taxa: list[str],
    start_newick: str,
    n_ranks: int,
    config: SearchConfig | None = None,
    dist_kind: str = "cyclic",
    n_branch_sets: int = 1,
) -> list[DistributedResult]:
    """Run the ExaML scheme on ``n_ranks`` real processes."""
    payload = {
        "parts": parts,
        "taxa": taxa,
        "newick": start_newick,
        "config": config or SearchConfig(),
        "dist_kind": dist_kind,
        "n_branch_sets": n_branch_sets,
    }
    return run_mpi(n_ranks, _decentral_rank, [payload] * n_ranks)


def _forkjoin_rank(comm: Comm, payload: dict[str, Any]) -> DistributedResult | None:
    local_parts = split_local_data(
        payload["parts"], comm.rank, comm.size, payload["dist_kind"]
    )
    if comm.rank == 0:
        tree = _rebuild_tree(payload["newick"], payload["n_branch_sets"])
        lik = PartitionedLikelihood(tree, local_parts, payload["taxa"])
        backend = ForkJoinMasterBackend(comm, lik)
        result = hill_climb(backend, payload["config"])
        return DistributedResult(
            logl=result.logl,
            newick=write_newick(tree, lengths=False),
            iterations=result.iterations,
            bytes_by_tag=dict(getattr(comm, "bytes_by_tag", {})),
        )
    forkjoin_worker(
        comm, local_parts, payload["node_taxon"], payload["n_branch_sets"]
    )
    return None


def run_forkjoin(
    parts: list[PartitionData],
    taxa: list[str],
    start_newick: str,
    n_ranks: int,
    config: SearchConfig | None = None,
    dist_kind: str = "cyclic",
    n_branch_sets: int = 1,
) -> DistributedResult:
    """Run the RAxML-Light scheme on ``n_ranks`` real processes.

    Returns the master's result (workers return nothing — they are
    tree-agnostic by design).
    """
    tree = _rebuild_tree(start_newick, n_branch_sets)
    taxon_row = {label: i for i, label in enumerate(taxa)}
    node_taxon = {
        leaf.id: taxon_row[leaf.label] for leaf in tree.leaves()  # type: ignore[index]
    }
    payload = {
        "parts": parts,
        "taxa": taxa,
        "newick": start_newick,
        "config": config or SearchConfig(),
        "dist_kind": dist_kind,
        "n_branch_sets": n_branch_sets,
        "node_taxon": node_taxon,
    }
    results = run_mpi(n_ranks, _forkjoin_rank, [payload] * n_ranks)
    master = results[0]
    if master is None:
        raise CommError("fork-join master returned no result")
    return master


def run_sequential_reference(
    parts: list[PartitionData],
    taxa: list[str],
    start_newick: str,
    config: SearchConfig | None = None,
    n_branch_sets: int = 1,
) -> DistributedResult:
    """The single-rank reference both engines must reproduce."""
    import numpy as np

    from repro.likelihood.backend import SequentialBackend

    tree = _rebuild_tree(start_newick, n_branch_sets)
    # private copies: optimization must not mutate the caller's partitions
    parts = [p.subset(np.arange(p.n_patterns)) for p in parts]
    lik = PartitionedLikelihood(tree, parts, taxa)
    backend = SequentialBackend(lik)
    result = hill_climb(backend, config or SearchConfig())
    return DistributedResult(
        logl=result.logl,
        newick=write_newick(tree, lengths=False),
        iterations=result.iterations,
        bytes_by_tag={},
    )
