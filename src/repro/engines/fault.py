"""Fault tolerance on the de-centralized scheme (paper §V, future work).

The paper argues the de-centralized design makes fault tolerance
"relatively straightforward": every process replicates the complete search
state (tree, model parameters, search position), so losing ranks loses
*data shares*, never state — "maximum state redundancy".  Recovery is
purely a data-redistribution problem: the failed ranks' site patterns must
be re-assigned to survivors, and the survivors reload them (from the
binary alignment format, via parallel I/O in the paper's plan).

This module implements that recovery for the performance model and for
in-process demonstrations:

* :func:`redistribute_after_failure` — new :class:`DataDistribution` plus
  the redistribution traffic;
* :func:`recovery_time` — time to reload + redistribute under a machine
  model;
* :func:`forkjoin_failure_outcome` — the contrast case: a fork-join master
  failure is unrecoverable (the paper's "catastrophic" observation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dist.distributions import DataDistribution
from repro.errors import DistributionError
from repro.par.machine import MachineSpec

__all__ = [
    "FailureReport",
    "redistribute_after_failure",
    "recovery_time",
    "forkjoin_failure_outcome",
]


@dataclass(frozen=True)
class FailureReport:
    """Outcome of a rank-failure recovery."""

    failed_ranks: tuple[int, ...]
    survivors: int
    bytes_moved: float
    new_distribution: DataDistribution
    recoverable: bool
    reason: str = ""


def redistribute_after_failure(
    dist: DataDistribution,
    failed_ranks: list[int],
    bytes_per_pattern: float = 8.0,
) -> FailureReport:
    """Re-assign the failed ranks' data to the survivors.

    Cyclic shares are re-spread evenly; MPS partitions are re-packed with
    LPT over the surviving ranks (only the orphaned partitions move — the
    survivors keep what they already hold, minimizing traffic).
    """
    failed = sorted(set(failed_ranks))
    if not failed:
        raise DistributionError("no failed ranks given")
    if any(r < 0 or r >= dist.n_ranks for r in failed):
        raise DistributionError("failed rank out of range")
    if len(failed) >= dist.n_ranks:
        raise DistributionError("cannot recover: every rank failed")

    survivors = [r for r in range(dist.n_ranks) if r not in failed]
    owned = dist.owned.copy()
    orphan = owned[failed].sum(axis=0)  # (p,) patterns to re-home
    owned[failed] = 0.0

    if dist.kind == "mps":
        assert dist.assignment is not None
        orphan_parts = [
            j for j in range(dist.n_partitions) if dist.assignment[j] in failed
        ]
        # pack orphaned partitions onto the currently least-loaded survivors
        new_assignment = dist.assignment.copy()
        loads = owned[survivors].sum(axis=1)
        orphan_loads = np.array([orphan[j] for j in orphan_parts])
        order = np.argsort(-orphan_loads, kind="stable")
        for k in order:
            j = orphan_parts[int(k)]
            s = int(np.argmin(loads))
            owned[survivors[s], j] = orphan[j]
            new_assignment[j] = survivors[s]
            loads[s] += orphan[j]
        new_dist = DataDistribution(
            kind="mps",
            owned=owned[survivors],
            assignment=np.array(
                [survivors.index(int(r)) for r in new_assignment], dtype=np.intp
            ),
        )
    else:
        # cyclic: spread each partition's orphaned patterns evenly
        for j in range(dist.n_partitions):
            if orphan[j] > 0:
                owned[survivors, j] += orphan[j] / len(survivors)
        new_dist = DataDistribution(kind="cyclic", owned=owned[survivors])

    bytes_moved = float(orphan.sum()) * bytes_per_pattern
    _check_conservation(dist, new_dist)
    return FailureReport(
        failed_ranks=tuple(failed),
        survivors=len(survivors),
        bytes_moved=bytes_moved,
        new_distribution=new_dist,
        recoverable=True,
        reason="decentralized replicas hold full search state; only data moves",
    )


def _check_conservation(old: DataDistribution, new: DataDistribution) -> None:
    """Recovery must conserve every partition's pattern mass.

    The per-partition ``owned`` column sums of the recovered distribution
    must equal the original's — anything else means patterns were
    silently lost or duplicated during re-homing (e.g. float drift when
    spreading cyclic shares).  Raising here turns silent data corruption
    into a hard :class:`DistributionError`.
    """
    before = old.owned.sum(axis=0)
    after = new.owned.sum(axis=0)
    scale = np.maximum(np.abs(before), 1.0)
    bad = np.abs(after - before) > 1e-9 * scale
    if np.any(bad):
        worst = int(np.argmax(np.abs(after - before) / scale))
        raise DistributionError(
            f"redistribution lost patterns: partition {worst} had "
            f"{before[worst]:.6f} patterns before the failure but "
            f"{after[worst]:.6f} after re-homing"
        )


def recovery_time(
    report: FailureReport,
    machine: MachineSpec,
    io_bandwidth_bps: float = 2.0e9,
) -> float:
    """Seconds to recover: reload the orphaned data (parallel I/O across
    survivors) plus one synchronizing barrier-equivalent allreduce."""
    from repro.par.network import allreduce_time

    if not report.recoverable:
        return float("inf")
    reload_s = report.bytes_moved / (io_bandwidth_bps * max(1, report.survivors))
    sync_s = allreduce_time(machine, report.survivors, 16)
    return reload_s + sync_s


def forkjoin_failure_outcome(
    failed_ranks: list[int], checkpoint: str | None = None
) -> FailureReport:
    """What the fork-join scheme can do about the same failure.

    Worker failures lose data *and* the master's ability to continue
    (RAxML-Light aborts); a master failure loses the only copy of the
    search state — the paper calls this catastrophic.  Either way the run
    restarts from the last checkpoint; ``checkpoint`` names the latest
    durable one so the report (and the supervisor reading it) can tell a
    checkpoint-restartable outcome from a restart-from-scratch.
    """
    catastrophic = 0 in failed_ranks
    if catastrophic:
        reason = "master failure: the only copy of the search state is lost"
    else:
        reason = "worker failure: fork-join aborts, restart from checkpoint"
    if checkpoint:
        reason += f" (latest checkpoint: {checkpoint})"
    else:
        reason += " (no checkpoint written: restart from scratch)"
    return FailureReport(
        failed_ranks=tuple(sorted(set(failed_ranks))),
        survivors=0,
        bytes_moved=0.0,
        new_distribution=DataDistribution(
            kind="cyclic", owned=np.zeros((1, 1))
        ),
        recoverable=False,
        reason=reason,
    )
