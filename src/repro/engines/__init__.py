"""The paper's two parallelization schemes.

* :mod:`repro.engines.events` — abstract parallel-region records emitted
  by an instrumented run of the (shared) search algorithm;
* :mod:`repro.engines.recording` — the instrumented backend that produces
  them;
* :mod:`repro.engines.forkjoin` — the RAxML-Light scheme: communication
  mapping for the simulator plus a real master/worker implementation over
  a :class:`~repro.par.comm.Comm`;
* :mod:`repro.engines.decentral` — the ExaML scheme: communication mapping
  plus a real replicated implementation;
* :mod:`repro.engines.fault` — rank-failure recovery on top of the
  decentralized scheme (the paper's Section V future work).

Because both engines execute *exactly the same* search, a single recorded
region stream describes both runs; the engines differ only in what each
region communicates — which is precisely the paper's claim, made
executable.
"""

from repro.engines.events import Region, RegionKind, EventLog
from repro.engines.recording import RecordingBackend
from repro.engines.forkjoin import ForkJoinCommModel
from repro.engines.decentral import DecentralizedCommModel

__all__ = [
    "Region",
    "RegionKind",
    "EventLog",
    "RecordingBackend",
    "ForkJoinCommModel",
    "DecentralizedCommModel",
]
