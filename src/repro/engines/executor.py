"""Tree-agnostic descriptor execution (the worker kernel).

Fork-join workers in RAxML-Light never hold a tree: every likelihood
operation reaches them as a *traversal descriptor* — node indices plus
branch lengths — and they maintain conditional likelihood vectors keyed by
those indices.  :class:`DescriptorExecutor` is exactly that: it executes
wire-format descriptors over a list of local :class:`PartitionData`
shares, with no topology knowledge whatsoever.

Wire op format: ``(node, toward, child_a, child_b, t_a, t_b)`` where the
``t_*`` are branch-length vectors of ``n_branch_sets`` doubles.

Every kernel call is bracketed with the attached op profiler (a
:data:`~repro.obs.hotspots.NULL_OP_PROFILER` by default, whose hooks are
no-ops and read no clock), and the CLV store carries live/peak byte
accounting per partition for memory attribution.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CommError, LikelihoodError
from repro.likelihood import kernel
from repro.likelihood.partitioned import PartitionData

__all__ = ["DescriptorExecutor"]


class DescriptorExecutor:
    """Executes broadcast descriptors on local site data.

    Parameters
    ----------
    parts:
        The rank's local partition shares (global taxon rows).
    node_taxon:
        ``node_id -> taxon row`` for every leaf of the master's tree.
    """

    def __init__(self, parts: list[PartitionData], node_taxon: dict[int, int]) -> None:
        if not parts:
            raise LikelihoodError("executor needs at least one partition")
        # Lazy import: repro.obs.hotspots initializes the repro.obs
        # package, whose instrument module imports this module back.
        from repro.obs.hotspots import NULL_OP_PROFILER

        self.parts = parts
        self.node_taxon = dict(node_taxon)
        self.profiler = NULL_OP_PROFILER
        # per partition: (node, toward) -> (clv, scale)
        self._clv: list[dict[tuple[int, int], tuple[np.ndarray, np.ndarray]]] = [
            {} for _ in parts
        ]
        n = len(parts)
        self._clv_bytes = [0] * n
        self._clv_peak = [0] * n
        self._clv_evictions = [0] * n
        self._clv_evicted_bytes = [0] * n

    @property
    def n_partitions(self) -> int:
        return len(self.parts)

    def _side(
        self, p: int, node_id: int, toward_id: int
    ) -> tuple[np.ndarray, np.ndarray | None]:
        row = self.node_taxon.get(node_id)
        if row is not None:
            return self.parts[p].tip_clv(row), None
        try:
            clv, scale = self._clv[p][(node_id, toward_id)]
        except KeyError as exc:
            raise CommError(
                f"descriptor references unknown CLV ({node_id}->{toward_id})"
            ) from exc
        return clv, scale

    def run_ops(self, wire: list[tuple]) -> None:
        """Execute a wire descriptor (all partitions, dependency order)."""
        prof = self.profiler
        for p, part in enumerate(self.parts):
            eigen = part.model.eigen()
            rates, _ = part.category_rates()
            bs = part.branch_set
            store = self._clv[p]
            unit = part.cost_patterns * part.n_cats
            n_states = part.model.n_states
            ss = part.site_specific
            live = self._clv_bytes[p]
            peak = self._clv_peak[p]
            for node_id, toward_id, a_id, b_id, ta, tb in wire:
                t0 = prof.begin()
                p_a = kernel.pmatrices(eigen, float(ta[bs]), rates)
                p_b = kernel.pmatrices(eigen, float(tb[bs]), rates)
                prof.end(t0, "pmatrix", p, 2 * len(rates), count=2,
                         alloc=p_a.nbytes + p_b.nbytes,
                         n_states=n_states, site_specific=ss)
                clv_a, scale_a = self._side(p, a_id, node_id)
                clv_b, scale_b = self._side(p, b_id, node_id)
                t0 = prof.begin()
                entry = kernel.newview(
                    p_a, clv_a, scale_a, p_b, clv_b, scale_b,
                    site_specific=ss,
                )
                nbytes = entry[0].nbytes + entry[1].nbytes
                prof.end(t0, "newview", p, unit, alloc=nbytes,
                         n_states=n_states, site_specific=ss)
                key = (node_id, toward_id)
                old = store.get(key)
                if old is not None:
                    live -= old[0].nbytes + old[1].nbytes
                store[key] = entry
                live += nbytes
                if live > peak:
                    peak = live
            self._clv_bytes[p] = live
            self._clv_peak[p] = peak

    def evaluate(
        self, u_id: int, v_id: int, t_root: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Local per-partition log likelihoods (and per-site values)."""
        prof = self.profiler
        per_part = np.empty(self.n_partitions)
        site_lhs: list[np.ndarray] = []
        for p, part in enumerate(self.parts):
            eigen = part.model.eigen()
            rates, cat_w = part.category_rates()
            n_states = part.model.n_states
            ss = part.site_specific
            t0 = prof.begin()
            p_root = kernel.pmatrices(eigen, float(t_root[part.branch_set]), rates)
            prof.end(t0, "pmatrix", p, len(rates), alloc=p_root.nbytes,
                     n_states=n_states, site_specific=ss)
            clv_i, scale_i = self._side(p, u_id, v_id)
            clv_j, scale_j = self._side(p, v_id, u_id)
            t0 = prof.begin()
            total, log_site = kernel.evaluate_edge(
                p_root, clv_i, scale_i, clv_j, scale_j,
                part.model.frequencies, cat_w, part.weights,
                site_specific=ss,
            )
            prof.end(t0, "evaluate", p, part.cost_patterns * part.n_cats,
                     n_states=n_states, site_specific=ss)
            per_part[p] = total
            site_lhs.append(log_site)
        return per_part, site_lhs

    def sumtables(self, u_id: int, v_id: int) -> list[np.ndarray]:
        prof = self.profiler
        tables = []
        for p, part in enumerate(self.parts):
            eigen = part.model.eigen()
            clv_i, _ = self._side(p, u_id, v_id)
            clv_j, _ = self._side(p, v_id, u_id)
            t0 = prof.begin()
            table = kernel.sumtable(eigen, clv_i, clv_j)
            prof.end(t0, "sumtable", p, part.cost_patterns * part.n_cats,
                     alloc=table.nbytes, n_states=part.model.n_states,
                     site_specific=part.site_specific)
            tables.append(table)
        return tables

    def derivatives(
        self, tables: list[np.ndarray], t: np.ndarray, n_branch_sets: int
    ) -> np.ndarray:
        """Per-branch-set summed (d1, d2) stacked as a ``(2, sets)`` array."""
        prof = self.profiler
        d1 = np.zeros(n_branch_sets)
        d2 = np.zeros(n_branch_sets)
        for p, part in enumerate(self.parts):
            eigen = part.model.eigen()
            rates, cat_w = part.category_rates()
            t0 = prof.begin()
            _, dl, d2l = kernel.derivatives_from_sumtable(
                eigen, tables[p], float(t[part.branch_set]), rates, cat_w,
                part.weights,
            )
            prof.end(t0, "derivative", p, part.cost_patterns * part.n_cats,
                     n_states=part.model.n_states,
                     site_specific=part.site_specific)
            d1[part.branch_set] += dl
            d2[part.branch_set] += d2l
        return np.vstack([d1, d2])

    # -- CLV store accounting ------------------------------------------- #
    def clv_stats(self) -> list[dict[str, int]]:
        """Per-partition CLV memory accounting (for profile emission)."""
        return [
            {
                "partition": p,
                "entries": len(self._clv[p]),
                "live_bytes": self._clv_bytes[p],
                "peak_bytes": self._clv_peak[p],
                "evictions": self._clv_evictions[p],
                "evicted_bytes": self._clv_evicted_bytes[p],
            }
            for p in range(self.n_partitions)
        ]

    def _on_evict(self, count: int, nbytes: int) -> None:
        """Hook for subclasses to surface evictions (metrics, spans)."""

    # -- model updates (local, no CLV cache: caller re-broadcasts full
    #    traversals after parameter changes, so stale CLVs are overwritten;
    #    we still clear to keep memory bounded and bugs loud) ------------- #
    def clear_clvs(self, p: int | None = None) -> None:
        targets = range(self.n_partitions) if p is None else (p,)
        count = 0
        freed = 0
        for idx in targets:
            store = self._clv[idx]
            count += len(store)
            freed += self._clv_bytes[idx]
            self._clv_evictions[idx] += len(store)
            self._clv_evicted_bytes[idx] += self._clv_bytes[idx]
            self._clv_bytes[idx] = 0
            store.clear()
        if count:
            self._on_evict(count, freed)
