"""Cooperative run cancellation: SIGTERM becomes a clean checkpoint-stop.

A launcher armed with ``cancellable=True`` turns ``SIGTERM`` from an
uncontrolled death into a *cooperative, replica-symmetric* shutdown:

* the parent process (``run_mpi``) forwards the signal to every live
  rank, so a ``kill <cli-pid>`` (or the serve daemon cancelling a job)
  reaches the whole mesh;
* each rank's handler only sets a flag — nothing is interrupted
  mid-collective;
* the hill climber polls :func:`agree_stop <make_agree_stop>` once per
  search iteration.  On the decentralized engine that poll is an
  ``allreduce(MAX)`` over the per-rank flags, so every replica takes the
  *same* stop decision at the *same* call site even when signal delivery
  is skewed across ranks — a unilateral local stop would desynchronize
  the collective sequence and deadlock the survivors.  The fork-join
  master decides locally (workers are command-driven and stop when the
  master broadcasts ``STOP``, the normal end-of-search path);
* the stopping rank writes a final checkpoint at the iteration boundary
  (the only state that is guaranteed consistent) before unwinding, so a
  cancelled job can later be resumed with ``--resume``/``resume_from``.

The flag lives in a module-level event: rank processes are forked, so
each child owns an independent copy after ``fork`` and a handler in one
rank cannot leak into another.  Everything here is driver/rank control
plumbing — the flag never influences likelihood arithmetic, only *when*
the deterministic iteration loop stops.
"""

from __future__ import annotations

import signal
import threading
from typing import Any, Callable

import numpy as np

from repro.par.comm import Comm, ReduceOp

__all__ = [
    "CANCEL_EXIT_CODE",
    "TAG_CANCEL",
    "cancel_requested",
    "request_cancel",
    "reset_cancel",
    "install_sigterm_flag",
    "restore_sigterm",
    "make_agree_stop",
]

#: Conventional exit status of a cancelled CLI run (128 + SIGTERM).
CANCEL_EXIT_CODE = 143

#: Table-I-style tag of the stop-agreement allreduce.  Only present when
#: a launcher was armed with ``cancellable=True`` — the comm-model
#: reconciliation paths never arm it, so measured byte accounting for
#: the paper's categories is unchanged.
TAG_CANCEL = "termination"

_EVENT = threading.Event()


def cancel_requested() -> bool:
    """Has this process been asked to stop?"""
    return _EVENT.is_set()


def request_cancel() -> None:
    """Ask the current process's searches to stop at the next boundary."""
    _EVENT.set()


def reset_cancel() -> None:
    """Clear the flag (tests; and launchers before a fresh attempt)."""
    _EVENT.clear()


def install_sigterm_flag() -> Any:
    """Route SIGTERM to :func:`request_cancel`; returns the old handler.

    Signal handlers can only be installed from the main thread; from any
    other thread (e.g. a launcher driven by a supervisor test harness)
    this is a no-op returning ``None`` — the parent-side forwarding in
    ``run_mpi`` then simply relies on whoever owns the main thread.
    """
    if threading.current_thread() is not threading.main_thread():
        return None
    return signal.signal(signal.SIGTERM, lambda signum, frame: request_cancel())


def restore_sigterm(previous: Any) -> None:
    """Undo :func:`install_sigterm_flag` (no-op when it was one too)."""
    if previous is None:
        return
    if threading.current_thread() is not threading.main_thread():
        return
    signal.signal(signal.SIGTERM, previous)


def make_agree_stop(comm_of: Callable[[], Comm]) -> Callable[[], bool]:
    """Build the replica-symmetric stop poll for a decentralized backend.

    ``comm_of`` is evaluated at every poll (not captured once) because
    in-run fault recovery replaces the backend's communicator; the
    agreement must run on the *current* shrunk mesh.  The reduction is
    MAX, so one signalled rank stops everyone — and because every rank
    polls at the same call site, the collective sequence stays aligned.
    """

    def agree_stop() -> bool:
        local = np.array([1.0 if cancel_requested() else 0.0])
        agreed = comm_of().allreduce(local, ReduceOp.MAX, tag=TAG_CANCEL)
        return bool(np.asarray(agreed)[0] > 0.0)

    return agree_stop
