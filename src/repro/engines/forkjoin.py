"""The fork-join scheme (RAxML-Light).

Two artifacts live here:

* :class:`ForkJoinCommModel` — maps each abstract parallel region onto the
  collectives and byte counts the fork-join scheme incurs: a traversal-
  descriptor broadcast for every likelihood region, parameter broadcasts,
  and master-rooted reductions.  This regenerates Table I and feeds the
  runtime synthesizer.
* :func:`forkjoin_master` / :func:`forkjoin_worker` — a *real* distributed
  implementation over any :class:`~repro.par.comm.Comm`: rank 0 owns the
  tree and the search, workers own site data and execute broadcast
  descriptors without ever seeing a tree (exactly the paper's Figure 1
  architecture).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engines.events import EventLog, Region, RegionKind
from repro.errors import CommError
from repro.likelihood.backend import PartitionInfo, choose_psr_rates
from repro.likelihood.partitioned import PartitionedLikelihood
from repro.model.rates import PerSiteRates
from repro.par.comm import Comm, ReduceOp
from repro.tree.topology import Node
from repro.tree.traversal import TraversalDescriptor, traversal_for_edge

__all__ = [
    "CommEvent",
    "ForkJoinCommModel",
    "CAT_TRAVERSAL",
    "CAT_BL_OPT",
    "CAT_LIKELIHOOD",
    "CAT_MODEL",
    "forkjoin_master",
    "forkjoin_worker",
    "ForkJoinMasterBackend",
]

#: Table I row categories.
CAT_BL_OPT = "branch length optimization"
CAT_LIKELIHOOD = "per-site/per-partition likelihoods"
CAT_MODEL = "model parameters"
CAT_TRAVERSAL = "traversal descriptor"

_DOUBLE = 8
_INT = 4


@dataclass(frozen=True)
class CommEvent:
    """One collective inside a region: what, how big, which category."""

    collective: str  # 'bcast' | 'reduce' | 'allreduce' | 'barrier'
    nbytes: float
    category: str


def descriptor_nbytes(n_ops: float, n_partitions: int) -> float:
    """On-wire size of a traversal descriptor of ``n_ops`` operations.

    Four int32 node indices plus **two branch-length values per partition**
    per op: the RAxML family rescales branch lengths per partition (the
    per-partition "fracchange"), so partitioned descriptors always carry
    ``2 p`` doubles per operation — even under joint branch-length
    optimization.  This is why the traversal descriptor dominates Table I
    (up to 97.9%) as soon as datasets are partitioned; the ``-M`` mode
    additionally inflates the *derivative* messages.
    """
    return _INT + n_ops * (4 * _INT + 2 * _DOUBLE * max(1, n_partitions))


class ForkJoinCommModel:
    """Region → collectives mapping for the fork-join scheme."""

    name = "fork-join (RAxML-Light)"

    def region_events(self, region: Region) -> list[CommEvent]:
        p = region.n_partitions
        nbs = region.n_branch_sets
        events: list[CommEvent] = []
        if region.kind in (
            RegionKind.TRAVERSE,
            RegionKind.EVALUATE,
            RegionKind.BRANCH_SETUP,
            RegionKind.PSR_SCAN,
        ):
            events.append(
                CommEvent(
                    "bcast",
                    descriptor_nbytes(region.max_ops(), p),
                    CAT_TRAVERSAL,
                )
            )
        if region.kind is RegionKind.EVALUATE:
            events.append(CommEvent("reduce", _DOUBLE * p, CAT_LIKELIHOOD))
        elif region.kind is RegionKind.DERIVATIVE:
            # master proposes new branch length(s), workers answer with the
            # two derivative sums per branch set
            events.append(CommEvent("bcast", _DOUBLE * nbs, CAT_BL_OPT))
            events.append(CommEvent("reduce", 2 * _DOUBLE * nbs, CAT_BL_OPT))
        elif region.kind is RegionKind.PARAM_ALPHA:
            events.append(CommEvent("bcast", _DOUBLE * p, CAT_MODEL))
        elif region.kind is RegionKind.PARAM_GTR:
            events.append(CommEvent("bcast", 6 * _DOUBLE * p, CAT_MODEL))
        elif region.kind is RegionKind.PARAM_PSR:
            # per-partition normalization sums come back, factors go out
            events.append(CommEvent("reduce", 2 * _DOUBLE * p, CAT_MODEL))
            events.append(CommEvent("bcast", _DOUBLE * p, CAT_MODEL))
        elif region.kind is RegionKind.PSR_SCAN:
            events.append(CommEvent("bcast", _DOUBLE, CAT_MODEL))
        if region.kind in (RegionKind.TRAVERSE, RegionKind.BRANCH_SETUP):
            events.append(CommEvent("barrier", 0.0, CAT_TRAVERSAL))
        return events

    def serial_bytes(self, region: Region) -> float:
        """Bytes the master must serially assemble for this region while
        the workers wait (the master-bottleneck term)."""
        return sum(
            ev.nbytes for ev in self.region_events(region)
            if ev.collective == "bcast"
        )

    def byte_totals(self, log: EventLog) -> dict[str, float]:
        """Bytes communicated per Table I category."""
        totals = {
            CAT_BL_OPT: 0.0,
            CAT_LIKELIHOOD: 0.0,
            CAT_MODEL: 0.0,
            CAT_TRAVERSAL: 0.0,
        }
        for region in log:
            for ev in self.region_events(region):
                totals[ev.category] += ev.nbytes
        return totals

    def region_count(self, log: EventLog) -> int:
        return len(log)


# ---------------------------------------------------------------------- #
# Real distributed implementation (master / worker over a Comm)
# ---------------------------------------------------------------------- #
#
# Wire protocol: the master broadcasts command tuples; workers execute them
# on their local site shares through a tree-agnostic DescriptorExecutor and
# answer through master-rooted reductions — the paper's Figure 1, live.
#
# ``tag`` arguments label messages for byte accounting only; delivery is
# strictly ordered, so no tag matching is needed.

_CMD_TRAVERSE = "traverse"
_CMD_EVALUATE = "evaluate"
_CMD_BRANCH_SETUP = "branch_setup"
_CMD_DERIVATIVE = "derivative"
_CMD_ALPHAS = "alphas"
_CMD_GTR = "gtr"
_CMD_PSR_SCAN = "psr_scan"
_CMD_PSR_FINALIZE = "psr_finalize"
_CMD_STOP = "stop"


def _wire_descriptor(tree, descriptors: list[TraversalDescriptor]) -> list[tuple]:
    """Serialize the longest per-partition descriptor with branch lengths.

    Per-partition descriptors can only differ by *how much* of the full
    post-order they need (model changes force full traversals, structural
    changes invalidate identically across partitions), so the longest one
    is a superset of every partition's needs; workers simply execute it
    for all partitions, recomputing a few already-valid CLVs — exactly
    RAxML-Light's behaviour.
    """
    longest = max(descriptors, key=len)
    wire = []
    for op in longest.ops:
        node = tree.node(op.node)
        ta = tree.edge_length(node, tree.node(op.child_a)).copy()
        tb = tree.edge_length(node, tree.node(op.child_b)).copy()
        wire.append((op.node, op.toward, op.child_a, op.child_b, ta, tb))
    return wire


class ForkJoinMasterBackend:
    """Master (rank 0): owns the tree and the search state, broadcasts
    descriptors/parameters, reduces results.  Implements the
    :class:`~repro.likelihood.backend.LikelihoodBackend` protocol so the
    unmodified search drives a genuinely distributed fork-join run."""

    def __init__(self, comm: Comm, lik: PartitionedLikelihood) -> None:
        if comm.rank != 0:
            raise CommError("the fork-join master must be rank 0")
        self.comm = comm
        self.lik = lik  # the master's own data share
        self.tree = lik.tree

    @property
    def n_partitions(self) -> int:
        return self.lik.n_partitions

    @property
    def n_branch_sets(self) -> int:
        return self.lik.n_branch_sets

    def partition_info(self) -> list[PartitionInfo]:
        from repro.likelihood.backend import _partition_info_from

        return _partition_info_from(self.lik)

    def _branch_sets(self) -> np.ndarray:
        return np.array([p.branch_set for p in self.lik.parts], dtype=np.intp)

    def _bcast_traversal(self, cmd: str, u: Node, v: Node) -> None:
        self.lik._fresh_memos()  # memos must reflect the current tree state
        descriptors = [
            traversal_for_edge(
                self.tree, u, v,
                is_valid=lambda key, p=p: self.lik._is_valid(p, key),
            )
            for p in range(self.n_partitions)
        ]
        wire = _wire_descriptor(self.tree, descriptors)
        t_root = self.tree.edge_length(u, v).copy()
        self.comm.bcast((cmd, wire, u.id, v.id, t_root), root=0, tag=CAT_TRAVERSAL)
        self.lik.ensure_clvs(u, v)

    def evaluate(self, u: Node, v: Node) -> tuple[float, np.ndarray]:
        self._bcast_traversal(_CMD_EVALUATE, u, v)
        local = np.array(
            [self.lik._evaluate_partition(p, u, v)[0] for p in range(self.n_partitions)]
        )
        per_part = self.comm.reduce(local, ReduceOp.SUM, root=0, tag=CAT_LIKELIHOOD)
        assert per_part is not None
        return float(per_part.sum()), per_part

    def begin_branch(self, u: Node, v: Node):
        self._bcast_traversal(_CMD_BRANCH_SETUP, u, v)
        handle = self.lik.prepare_branch(u, v)
        self.comm.barrier(tag=CAT_TRAVERSAL)
        return handle

    def derivatives(self, handle, t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        self.comm.bcast((_CMD_DERIVATIVE, t.copy()), root=0, tag=CAT_BL_OPT)
        d1p, d2p = self.lik.branch_derivatives(handle, t)
        branch_sets = self._branch_sets()
        local = np.vstack(
            [
                np.bincount(branch_sets, weights=d1p, minlength=self.n_branch_sets),
                np.bincount(branch_sets, weights=d2p, minlength=self.n_branch_sets),
            ]
        )
        summed = self.comm.reduce(local, ReduceOp.SUM, root=0, tag=CAT_BL_OPT)
        assert summed is not None
        # Re-express per-set totals in per-partition shape for the shared
        # Newton code (which sums by branch set): put each set's total on
        # the set's first partition, zero elsewhere.
        d1 = np.zeros(self.n_partitions)
        d2 = np.zeros(self.n_partitions)
        first: dict[int, int] = {}
        for i, bs in enumerate(branch_sets):
            first.setdefault(int(bs), i)
        for bs, i in first.items():
            d1[i] = summed[0][bs]
            d2[i] = summed[1][bs]
        return d1, d2

    def set_branch_length(self, u: Node, v: Node, t: np.ndarray) -> None:
        # Master-local: updated lengths travel inside the next descriptor.
        self.tree.set_edge_length(u, v, t)

    def set_alphas(self, alphas: dict[int, float]) -> None:
        self.comm.bcast((_CMD_ALPHAS, dict(alphas)), root=0, tag=CAT_MODEL)
        for p, alpha in sorted(alphas.items()):
            self.lik.set_alpha(p, alpha)

    def set_gtr_rates(self, rates: dict[int, np.ndarray]) -> None:
        self.comm.bcast(
            (_CMD_GTR, {k: np.asarray(v).copy() for k, v in rates.items()}),
            root=0,
            tag=CAT_MODEL,
        )
        for p, r in sorted(rates.items()):
            self.lik.set_gtr_rates(p, r)

    def get_alpha(self, p: int) -> float:
        return self.lik.get_alpha(p)

    def get_gtr_rates(self, p: int) -> np.ndarray:
        return self.lik.parts[p].model.rates.copy()

    def optimize_psr(self, u: Node, v: Node, candidates: np.ndarray) -> None:
        psr_parts = [
            i
            for i, part in enumerate(self.lik.parts)
            if isinstance(part.rate_het, PerSiteRates)
        ]
        if not psr_parts:
            return
        tables: dict[int, list[np.ndarray]] = {i: [] for i in psr_parts}
        for rate in candidates:
            self.comm.bcast((_CMD_PSR_SCAN, float(rate)), root=0, tag=CAT_MODEL)
            for i in psr_parts:
                self.lik.set_psr_rates(
                    i, np.full(self.lik.parts[i].n_patterns, float(rate))
                )
            self._bcast_traversal(_CMD_TRAVERSE, u, v)
            site_lhs = self.lik.site_log_likelihoods(u, v)
            for i in psr_parts:
                tables[i].append(site_lhs[i])
        # choose the master's local rates, then exchange normalization sums
        self.comm.bcast((_CMD_PSR_FINALIZE, np.asarray(candidates).copy()),
                        root=0, tag=CAT_MODEL)
        sums = np.zeros(2 * len(psr_parts))
        chosen: dict[int, np.ndarray] = {}
        for k, i in enumerate(psr_parts):
            rates_i = choose_psr_rates(candidates, np.vstack(tables[i]))
            chosen[i] = rates_i
            w = self.lik.parts[i].weights
            sums[2 * k] = float(np.dot(w, rates_i))
            sums[2 * k + 1] = float(w.sum())
        totals = self.comm.reduce(sums, ReduceOp.SUM, root=0, tag=CAT_MODEL)
        assert totals is not None
        factors = np.array(
            [totals[2 * k] / totals[2 * k + 1] for k in range(len(psr_parts))]
        )
        self.comm.bcast(factors, root=0, tag=CAT_MODEL)
        for k, i in enumerate(psr_parts):
            self.lik.set_psr_rates(i, chosen[i] / factors[k])

    def finish(self) -> None:
        self.comm.bcast((_CMD_STOP,), root=0, tag="control")


def forkjoin_master(comm: Comm, lik: PartitionedLikelihood) -> ForkJoinMasterBackend:
    """Build the master-side backend (rank 0)."""
    return ForkJoinMasterBackend(comm, lik)


def forkjoin_worker(
    comm: Comm,
    parts: list,
    node_taxon: dict[int, int],
    n_branch_sets: int,
    tracer=None,
    metrics=None,
    progress=None,
    profiler=None,
) -> None:
    """Worker loop: execute master commands on local data until STOP.

    ``parts`` are the rank's local :class:`PartitionData` shares;
    ``node_taxon`` maps the master tree's leaf node ids to global taxon
    rows (sent once during setup).  With a ``tracer``, the lock-step
    executor emits kernel spans and op counters (see :mod:`repro.obs`).
    With a ``progress`` reporter, the worker's heartbeat state counts
    executed commands (as ``iteration``) so the live monitor can tell a
    worker that stopped draining commands from one that never got any.
    With a ``profiler`` (:class:`~repro.obs.hotspots.OpProfiler`), per-op
    kernel totals accumulate and flush as summary spans when the loop
    exits (STOP or error).
    """
    from repro.engines.executor import DescriptorExecutor
    from repro.model.rates import PerSiteRates as _PSR

    if tracer is not None and tracer.enabled:
        from repro.obs.instrument import TracedExecutor

        executor = TracedExecutor(parts, node_taxon, tracer, metrics,
                                  profiler=profiler)
    else:
        executor = DescriptorExecutor(parts, node_taxon)
    if progress is None:
        from repro.obs.progress import NULL_PROGRESS

        progress = NULL_PROGRESS
    progress.status(phase="worker")
    branch_sets = np.array([p.branch_set for p in parts], dtype=np.intp)
    handle: list[np.ndarray] | None = None
    root_edge: tuple[int, int] | None = None
    psr_tables: dict[int, list[np.ndarray]] = {}
    n_commands = 0

    try:
        while True:
            msg = comm.bcast(None, root=0, tag="command")
            cmd = msg[0]
            n_commands += 1
            if n_commands % 64 == 0:
                # cheap liveness signal: two attribute writes per 64 commands
                progress.status(iteration=n_commands)
            if cmd == _CMD_STOP:
                progress.status(iteration=n_commands)
                return
            if cmd in (_CMD_EVALUATE, _CMD_BRANCH_SETUP, _CMD_TRAVERSE):
                _, wire, u_id, v_id, t_root = msg
                executor.run_ops(wire)
                root_edge = (u_id, v_id)
                if cmd == _CMD_EVALUATE:
                    per_part, _ = executor.evaluate(u_id, v_id, t_root)
                    comm.reduce(per_part, ReduceOp.SUM, root=0,
                                tag=CAT_LIKELIHOOD)
                elif cmd == _CMD_BRANCH_SETUP:
                    handle = executor.sumtables(u_id, v_id)
                    comm.barrier(tag=CAT_TRAVERSAL)
                else:  # plain traverse: inside a PSR scan, collect site logls
                    _, site_lhs = executor.evaluate(u_id, v_id, t_root)
                    for i, part in enumerate(parts):
                        if isinstance(part.rate_het, _PSR):
                            psr_tables.setdefault(i, []).append(site_lhs[i])
            elif cmd == _CMD_DERIVATIVE:
                if handle is None:
                    raise CommError("derivative before branch setup")
                local = executor.derivatives(handle, msg[1], n_branch_sets)
                comm.reduce(local, ReduceOp.SUM, root=0, tag=CAT_BL_OPT)
            elif cmd == _CMD_ALPHAS:
                for p, alpha in sorted(msg[1].items()):
                    parts[p].rate_het.alpha = alpha
                    parts[p].bump_model()
            elif cmd == _CMD_GTR:
                for p, r in sorted(msg[1].items()):
                    parts[p].model = parts[p].model.with_rates(
                        np.asarray(r, float))
                    parts[p].bump_model()
            elif cmd == _CMD_PSR_SCAN:
                rate = msg[1]
                for part in parts:
                    if isinstance(part.rate_het, _PSR):
                        part.rate_het.set_rates(np.full(part.n_patterns, rate))
            elif cmd == _CMD_PSR_FINALIZE:
                candidates = msg[1]
                sums = np.zeros(2 * len(psr_tables))
                chosen: dict[int, np.ndarray] = {}
                for k, i in enumerate(sorted(psr_tables)):
                    rates_i = choose_psr_rates(
                        candidates, np.vstack(psr_tables[i]))
                    chosen[i] = rates_i
                    w = parts[i].weights
                    sums[2 * k] = float(np.dot(w, rates_i))
                    sums[2 * k + 1] = float(w.sum())
                comm.reduce(sums, ReduceOp.SUM, root=0, tag=CAT_MODEL)
                factors = comm.bcast(None, root=0, tag=CAT_MODEL)
                for k, i in enumerate(sorted(psr_tables)):
                    parts[i].rate_het.set_rates(chosen[i] / factors[k])
                    parts[i].bump_model()
                psr_tables.clear()
            else:
                raise CommError(f"unknown fork-join command {cmd!r}")
    finally:
        if profiler is not None and profiler.enabled and tracer is not None:
            from repro.obs.hotspots import emit_kernel_profile

            emit_kernel_profile(profiler, tracer, metrics,
                                clv_sources=(executor,))
