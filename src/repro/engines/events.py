"""Abstract parallel-region events.

A run of the search algorithm is, from the parallelization's point of
view, a sequence of *parallel regions* (paper, Section III-A).  The
instrumented backend records each region in engine-neutral form; the
fork-join and decentralized communication models then assign each region
its collectives and byte counts.  Regions carry per-partition kernel-op
counts so the performance model can replay per-rank compute under any
data distribution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.par.ledger import OpKind

__all__ = ["RegionKind", "Region", "EventLog"]


class RegionKind(enum.Enum):
    """What triggered the region (maps onto Table I's four row categories)."""

    #: conditional-likelihood (re)computation only (barrier-terminated)
    TRAVERSE = "traverse"
    #: log-likelihood at the virtual root (reduction of per-partition logls)
    EVALUATE = "evaluate"
    #: traversal + sumtable construction before Newton–Raphson
    BRANCH_SETUP = "branch_setup"
    #: one Newton–Raphson iteration (derivative exchange)
    DERIVATIVE = "derivative"
    #: new Γ shape parameters for all partitions
    PARAM_ALPHA = "param_alpha"
    #: new GTR exchangeabilities for all partitions
    PARAM_GTR = "param_gtr"
    #: PSR finalize: per-partition rate renormalization
    PARAM_PSR = "param_psr"
    #: one PSR candidate-rate scan step (full traversal + per-site logls)
    PSR_SCAN = "psr_scan"


@dataclass
class Region:
    """One parallel region in engine-neutral form.

    ``newview_ops`` is the traversal-descriptor length — the number of CLV
    updates — either one scalar (identical for every partition, the common
    case) or an ``(n_partitions,)`` array.
    """

    kind: RegionKind
    n_partitions: int
    n_branch_sets: int
    newview_ops: float | np.ndarray = 0.0

    def max_ops(self) -> float:
        """Descriptor length as broadcast (max across partitions)."""
        if isinstance(self.newview_ops, np.ndarray):
            return float(self.newview_ops.max()) if self.newview_ops.size else 0.0
        return float(self.newview_ops)

    def ops_vector(self) -> np.ndarray:
        """Per-partition CLV-update counts as a dense vector."""
        if isinstance(self.newview_ops, np.ndarray):
            return self.newview_ops.astype(np.float64)
        return np.full(self.n_partitions, float(self.newview_ops))

    def kernel_ops(self) -> dict[OpKind, float | np.ndarray]:
        """Kernel invocations per partition implied by this region."""
        out: dict[OpKind, float | np.ndarray] = {}
        if self.kind in (
            RegionKind.TRAVERSE,
            RegionKind.EVALUATE,
            RegionKind.BRANCH_SETUP,
            RegionKind.PSR_SCAN,
        ):
            out[OpKind.NEWVIEW] = self.newview_ops
        if self.kind in (RegionKind.EVALUATE, RegionKind.PSR_SCAN):
            out[OpKind.EVALUATE] = 1.0
        if self.kind is RegionKind.BRANCH_SETUP:
            out[OpKind.SUMTABLE] = 1.0
        if self.kind is RegionKind.DERIVATIVE:
            out[OpKind.DERIVATIVE] = 1.0
        return out


@dataclass
class EventLog:
    """The recorded region stream of one search run."""

    regions: list[Region] = field(default_factory=list)

    def append(self, region: Region) -> None:
        self.regions.append(region)

    def __len__(self) -> int:
        return len(self.regions)

    def __iter__(self):
        return iter(self.regions)

    def count(self, kind: RegionKind | None = None) -> int:
        if kind is None:
            return len(self.regions)
        return sum(1 for r in self.regions if r.kind is kind)

    def compact(self) -> "EventLog":
        """Collapse runs of identical regions — kept as the full stream by
        default; the runtime synthesizer vectorizes instead."""
        return self

    def validate(self) -> None:
        for r in self.regions:
            if r.n_partitions < 1 or r.n_branch_sets < 1:
                raise ReproError("malformed region")
            if isinstance(r.newview_ops, np.ndarray) and r.newview_ops.shape != (
                r.n_partitions,
            ):
                raise ReproError("per-partition op vector has wrong shape")
