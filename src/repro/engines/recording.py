"""The instrumented backend: runs the search for real, records the
parallel-region stream.

One recorded run stands for both engines because the paper's engines
execute the identical search — they differ only in what each region
communicates.  The :class:`RecordingBackend` therefore wraps a full-data
:class:`~repro.likelihood.partitioned.PartitionedLikelihood`, executes all
kernels exactly like the sequential reference (same numbers, same final
tree), and appends one :class:`~repro.engines.events.Region` per backend
call.
"""

from __future__ import annotations

import numpy as np

from repro.engines.events import EventLog, Region, RegionKind
from repro.likelihood.backend import SequentialBackend, choose_psr_rates
from repro.likelihood.partitioned import PartitionedLikelihood
from repro.model.rates import PerSiteRates
from repro.tree.topology import Node
from repro.tree.traversal import TraversalDescriptor

__all__ = ["RecordingBackend"]


def _ops_summary(descriptors: list[TraversalDescriptor]) -> float | np.ndarray:
    lens = np.array([len(d) for d in descriptors], dtype=np.float64)
    if lens.size == 0:
        return 0.0
    if np.all(lens == lens[0]):
        return float(lens[0])
    return lens


class RecordingBackend(SequentialBackend):
    """Sequential execution + region recording.

    The recorded :class:`EventLog` is consumed by
    :class:`~repro.engines.forkjoin.ForkJoinCommModel` and
    :class:`~repro.engines.decentral.DecentralizedCommModel` and by the
    runtime synthesizer in :mod:`repro.perf`.
    """

    def __init__(self, lik: PartitionedLikelihood, log: EventLog | None = None) -> None:
        super().__init__(lik)
        self.log = log if log is not None else EventLog()

    # -- helpers -------------------------------------------------------- #
    def _record(self, kind: RegionKind, ops: float | np.ndarray = 0.0) -> None:
        self.log.append(
            Region(
                kind=kind,
                n_partitions=self.lik.n_partitions,
                n_branch_sets=self.lik.n_branch_sets,
                newview_ops=ops,
            )
        )

    # -- instrumented backend API --------------------------------------- #
    def evaluate(self, u: Node, v: Node) -> tuple[float, np.ndarray]:
        total, per_part, descriptors = self.lik.evaluate(u, v)
        self._record(RegionKind.EVALUATE, _ops_summary(descriptors))
        return total, per_part

    def begin_branch(self, u: Node, v: Node):
        descriptors = self.lik.ensure_clvs(u, v)
        self._record(RegionKind.BRANCH_SETUP, _ops_summary(descriptors))
        return self.lik.prepare_branch(u, v)

    def derivatives(self, handle, t: np.ndarray):
        d1, d2 = self.lik.branch_derivatives(handle, t)
        self._record(RegionKind.DERIVATIVE)
        return d1, d2

    def set_alphas(self, alphas: dict[int, float]) -> None:
        super().set_alphas(alphas)
        self._record(RegionKind.PARAM_ALPHA)

    def set_gtr_rates(self, rates: dict[int, np.ndarray]) -> None:
        super().set_gtr_rates(rates)
        self._record(RegionKind.PARAM_GTR)

    def optimize_psr(self, u: Node, v: Node, candidates: np.ndarray) -> None:
        # Scan: one region per candidate rate (each is a full traversal plus
        # a per-site likelihood computation that stays rank-local).
        lik = self.lik
        psr_parts = [
            i
            for i, part in enumerate(lik.parts)
            if isinstance(part.rate_het, PerSiteRates)
        ]
        if not psr_parts:
            return
        tables: dict[int, list[np.ndarray]] = {i: [] for i in psr_parts}
        for rate in candidates:
            for i in psr_parts:
                lik.set_psr_rates(i, np.full(lik.parts[i].n_patterns, float(rate)))
            descriptors = lik.ensure_clvs(u, v)
            site_lhs = lik.site_log_likelihoods(u, v)
            self._record(RegionKind.PSR_SCAN, _ops_summary(descriptors))
            for i in psr_parts:
                tables[i].append(site_lhs[i])
        for i in psr_parts:
            rates = choose_psr_rates(candidates, np.vstack(tables[i]))
            part = lik.parts[i]
            rate_het = part.rate_het
            assert isinstance(rate_het, PerSiteRates)
            rate_het.set_rates(rates)
            rate_het.normalize(part.weights)
            lik.invalidate_partition(i)
        self._record(RegionKind.PARAM_PSR)
