"""Tiny urllib client for the serve HTTP API (used by the CLI verbs).

Stdlib-only by design; raises :class:`ServeClientError` with the
server's parsed error body on any non-2xx response, so ``repro
submit|status|cancel`` can print the daemon's actual rejection reason
("queue full", "tenant quota", ...) instead of a bare status code.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.errors import ReproError
from repro.obs.registry import TERMINAL_STATUSES

__all__ = [
    "ServeClientError",
    "DEFAULT_URL",
    "request",
    "submit_job",
    "get_job",
    "list_jobs",
    "cancel_job",
    "wait_for_job",
    "stream_events",
]

DEFAULT_URL = "http://127.0.0.1:8642"


class ServeClientError(ReproError):
    """The daemon answered with an error (or is unreachable)."""

    def __init__(self, message: str, status: int = 0,
                 body: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body or {}


def request(
    url: str,
    path: str,
    method: str = "GET",
    payload: dict[str, Any] | None = None,
    timeout: float = 10.0,
) -> dict[str, Any]:
    """One JSON round trip to the daemon."""
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url.rstrip("/") + path, data=data,
                                 headers=headers, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read() or b"{}")
        except json.JSONDecodeError:
            body = {}
        reason = body.get("reason") or body.get("error") or str(exc)
        raise ServeClientError(
            f"{method} {path} -> {exc.code}: {reason}",
            status=exc.code, body=body) from exc
    except urllib.error.URLError as exc:
        raise ServeClientError(
            f"cannot reach serve daemon at {url}: {exc.reason}") from exc


def submit_job(url: str, spec: dict[str, Any],
               timeout: float = 30.0) -> dict[str, Any]:
    return request(url, "/jobs", method="POST", payload=spec,
                   timeout=timeout)


def get_job(url: str, job_id: str, timeout: float = 10.0) -> dict[str, Any]:
    return request(url, f"/jobs/{job_id}", timeout=timeout)


def list_jobs(url: str, timeout: float = 10.0) -> dict[str, Any]:
    return request(url, "/jobs", timeout=timeout)


def cancel_job(url: str, job_id: str,
               timeout: float = 10.0) -> dict[str, Any]:
    return request(url, f"/jobs/{job_id}", method="DELETE",
                   timeout=timeout)


def stream_events(
    url: str,
    job_id: str,
    timeout: float = 30.0,
):
    """Follow ``GET /jobs/<id>/events``, yielding one dict per line.

    The connection stays open until the job goes terminal (the server
    closes it after the ``terminal`` event); ``timeout`` is the socket
    read timeout between lines, not a cap on the whole stream — the
    server's keepalive events keep a quiet stream under it.
    """
    req = urllib.request.Request(
        url.rstrip("/") + f"/jobs/{job_id}/events",
        headers={"Accept": "application/x-ndjson"})
    try:
        resp = urllib.request.urlopen(req, timeout=timeout)
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read() or b"{}")
        except json.JSONDecodeError:
            body = {}
        reason = body.get("reason") or body.get("error") or str(exc)
        raise ServeClientError(
            f"GET /jobs/{job_id}/events -> {exc.code}: {reason}",
            status=exc.code, body=body) from exc
    except urllib.error.URLError as exc:
        raise ServeClientError(
            f"cannot reach serve daemon at {url}: {exc.reason}") from exc
    with resp:
        for raw in resp:
            line = raw.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line on teardown


def wait_for_job(
    url: str,
    job_id: str,
    timeout: float = 600.0,
    poll_s: float = 0.5,
) -> dict[str, Any]:
    """Poll until the job reaches a terminal status; returns the manifest."""
    # replicheck: ignore[R004] -- client-side poll deadline; this process never runs replica code
    deadline = time.monotonic() + timeout
    while True:
        manifest = get_job(url, job_id)
        if manifest.get("status") in TERMINAL_STATUSES:
            return manifest
        # replicheck: ignore[R004] -- client-side poll deadline, not replica control flow
        if time.monotonic() >= deadline:
            raise ServeClientError(
                f"job {job_id} still {manifest.get('status')!r} after "
                f"{timeout:.0f}s")
        time.sleep(poll_s)
