"""Job specifications and alignment pre-parse sizing for the service.

A job arrives over HTTP (or ``repro submit``) as a JSON object; this
module validates it into a frozen :class:`JobSpec` and then *sizes* it:
the scheduler never trusts a client's rank request blindly.  Instead it
pre-parses the alignment — taxa, sites, per-partition pattern counts
after RAxML-style pattern compression — and derives a **rank budget**
from the same machinery the engines use to distribute data:

* under ``--dist mps`` (monolithic per-partition distribution), a rank
  can only hold whole partitions, so the budget is the smallest rank
  count whose LPT makespan (:func:`repro.dist.mps.lpt_schedule`) fits
  the policy's per-rank pattern target — more ranks than partitions can
  never help;
* under ``--dist cyclic``, patterns split freely, so the budget is
  simply ``ceil(total_patterns / patterns_per_rank)``.

Small jobs therefore pack onto few ranks (leaving pool room for
neighbours) while large jobs spread wide, mirroring the ab12phylo
fleet's per-instance CPU budgeting from an MSA pre-parse.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.errors import ReproError

__all__ = ["JobSpec", "JobSpecError", "JobSizing", "presize", "rank_budget"]

_ENGINES = ("decentralized", "forkjoin")
_DISTS = ("cyclic", "mps")
_MODELS = ("gamma", "psr", "none")


class JobSpecError(ReproError):
    """A submitted job spec is invalid (HTTP 400 territory)."""


@dataclass(frozen=True)
class JobSpec:
    """One inference request, as validated from a client's JSON body."""

    alignment: str
    engine: str = "decentralized"
    model: str = "gamma"
    partitions: str | None = None
    dist: str = "cyclic"
    #: Requested rank count; 0 means "size me" (the scheduler derives a
    #: budget from the alignment pre-parse either way — an explicit
    #: request is only honoured up to the policy's per-job cap).
    ranks: int = 0
    priority: int = 0
    tenant: str = "default"
    seed: int = 42
    iterations: int = 10
    radius: int = 5
    epsilon: float = 0.1
    per_partition_branches: bool = False
    #: Run the job under the PR-6 escalation-ladder supervisor with a
    #: per-job monitor thread (retry/backoff + stall diagnosis).
    supervise: bool = True
    #: End-to-end tracing: the daemon mints a ``trace_id``, records its
    #: scheduler-lifecycle spans under it, and the job's ranks trace
    #: into ``<run>/trace/`` so one merged Chrome trace shows
    #: submit → queue wait → launch → iterations → completion.
    trace: bool = True

    @classmethod
    def from_dict(cls, payload: Any) -> "JobSpec":
        if not isinstance(payload, dict):
            raise JobSpecError("job spec must be a JSON object")
        unknown = sorted(set(payload) - {f for f in cls.__dataclass_fields__})
        if unknown:
            raise JobSpecError(f"unknown job spec field(s): {unknown}")
        if not payload.get("alignment"):
            raise JobSpecError("job spec needs an 'alignment' path")
        spec = cls(**payload)
        if spec.engine not in _ENGINES:
            raise JobSpecError(
                f"engine must be one of {list(_ENGINES)}, "
                f"got {spec.engine!r}")
        if spec.dist not in _DISTS:
            raise JobSpecError(
                f"dist must be one of {list(_DISTS)}, got {spec.dist!r}")
        if spec.model not in _MODELS:
            raise JobSpecError(
                f"model must be one of {list(_MODELS)}, got {spec.model!r}")
        if not isinstance(spec.ranks, int) or spec.ranks < 0:
            raise JobSpecError("ranks must be a non-negative integer")
        if not isinstance(spec.priority, int):
            raise JobSpecError("priority must be an integer")
        if not isinstance(spec.tenant, str) or not spec.tenant:
            raise JobSpecError("tenant must be a non-empty string")
        if not isinstance(spec.iterations, int) or spec.iterations < 1:
            raise JobSpecError("iterations must be a positive integer")
        if not isinstance(spec.epsilon, (int, float)) or spec.epsilon <= 0:
            raise JobSpecError("epsilon must be positive")
        if not isinstance(spec.trace, bool):
            raise JobSpecError("trace must be a boolean")
        return spec

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class JobSizing:
    """What the alignment pre-parse learned about a job's workload."""

    taxa: int
    sites: int
    patterns: int
    partitions: int
    #: Per-partition compressed pattern counts (the LPT loads).
    pattern_loads: tuple[int, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict[str, Any]:
        d = asdict(self)
        d["pattern_loads"] = list(self.pattern_loads)
        return d


def presize(spec: JobSpec) -> JobSizing:
    """Pre-parse the job's alignment into a :class:`JobSizing`.

    Raises :class:`JobSpecError` when the alignment (or partition file)
    cannot be read — submission-time rejection beats a doomed launch.
    """
    from repro.cli import _load_alignment
    from repro.seq.partitions import PartitionScheme, read_partition_file

    try:
        alignment = _load_alignment(spec.alignment)
    except (OSError, ReproError, ValueError) as exc:
        raise JobSpecError(
            f"cannot read alignment {spec.alignment!r}: {exc}") from exc
    try:
        scheme = (read_partition_file(spec.partitions)
                  if spec.partitions
                  else PartitionScheme.single(alignment.n_sites))
        scheme.validate_cover(alignment.n_sites)
    except (OSError, ReproError) as exc:
        raise JobSpecError(
            f"bad partition scheme {spec.partitions!r}: {exc}") from exc
    loads = tuple(
        alignment.slice_sites(part.sites).compress().n_patterns
        for part in scheme
    )
    return JobSizing(
        taxa=alignment.n_taxa,
        sites=alignment.n_sites,
        patterns=int(sum(loads)),
        partitions=len(scheme),
        pattern_loads=loads,
    )


def rank_budget(
    spec: JobSpec,
    sizing: JobSizing,
    patterns_per_rank: int,
    max_ranks: int,
) -> int:
    """Derive the rank count the scheduler will actually grant.

    An explicit request is clamped to ``[1, max_ranks]``; an auto-sized
    job (``ranks == 0``) gets the smallest rank count that meets the
    per-rank pattern target under its data distribution.
    """
    max_ranks = max(1, max_ranks)
    if spec.ranks > 0:
        return min(spec.ranks, max_ranks)
    target = max(1, patterns_per_rank)
    if spec.dist == "mps":
        # Whole partitions per rank: walk rank counts until the LPT
        # makespan fits the target.  Beyond n_partitions ranks the
        # makespan cannot shrink (the largest partition is the floor).
        import numpy as np

        from repro.dist.mps import lpt_schedule, schedule_makespan

        loads = np.asarray(sizing.pattern_loads, dtype=np.float64)
        ceiling = min(max_ranks, sizing.partitions)
        for r in range(1, ceiling + 1):
            assignment = lpt_schedule(loads, r)
            if schedule_makespan(loads, assignment, r) <= target:
                return r
        return ceiling
    return min(max_ranks, max(1, math.ceil(sizing.patterns / target)))
