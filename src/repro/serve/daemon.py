"""The inference service daemon: scheduler loop + job processes.

One daemon owns one registry root (= one queue).  Every tick it

1. reaps finished job processes, reconciling any that died without
   writing a terminal status;
2. runs the pure scheduler (:func:`repro.serve.scheduler.select`) over
   the queued jobs and the free rank pool;
3. launches each granted job as a ``repro infer --run-id <job_id>
   --cancellable`` subprocess that attaches to the job's own manifest —
   the job carries its PR-6 supervision (escalation ladder + monitor
   thread) *inside* its process, so a daemon restart never orphans
   recovery state.

Cancellation is SIGTERM to the job process (cooperative, checkpointed —
see ``repro.engines.cancel``); drain is SIGTERM to the daemon: stop
admitting (HTTP 503), start nothing new, wait for running jobs, exit 0.

Wall-clock use throughout is driver-side service bookkeeping — this
process never executes replica code.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, IO

from repro.obs.context import (
    child_env,
    new_trace_id,
    now_ns,
    record_service_spans,
    service_instant,
    service_span,
)
from repro.obs.metrics import DEFAULT_TIME_BOUNDS, MetricsRegistry
from repro.serve.scheduler import (
    PendingJob,
    ServePolicy,
    admit,
    policy_to_dict,
    select,
)
from repro.serve.spec import JobSpec, JobSpecError, presize, rank_budget
from repro.serve.store import JobStore

__all__ = ["ServeDaemon", "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

JOB_LOG_FILENAME = "job.log"


class ServeDaemon:
    """Job queue + scheduler + HTTP front end over one registry root."""

    def __init__(
        self,
        policy: ServePolicy | None = None,
        root: str | Path | None = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        tick_s: float = 0.2,
        supervise_jobs: bool | None = None,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self.policy = policy or ServePolicy()
        self.store = JobStore(root)
        self.metrics = MetricsRegistry()
        self.host = host
        self.port = port
        self.tick_s = tick_s
        #: Force supervision on/off for every job; ``None`` honours each
        #: spec's own ``supervise`` field.
        self.supervise_jobs = supervise_jobs
        self._log = log if log is not None else (
            lambda msg: print(msg, file=sys.stderr, flush=True))
        self._lock = threading.RLock()
        self._children: dict[str, subprocess.Popen] = {}
        self._child_logs: dict[str, IO[bytes]] = {}
        self._child_ranks: dict[str, int] = {}
        self._child_tenants: dict[str, str] = {}
        self._skip_reasons: dict[str, str] = {}
        #: Last skip reason recorded as a trace instant per job, so a
        #: reason that persists across ticks is traced exactly once.
        self._noted_skips: dict[str, str] = {}
        #: Tenants that ever had a running-ranks gauge, so a tenant
        #: whose jobs all finished is zeroed rather than frozen.
        self._gauged_tenants: set[str] = set()
        self._start_seq = 0
        # replicheck: ignore[R004] -- daemon uptime for /healthz; service bookkeeping
        self._started_mono = time.monotonic()
        self._draining = threading.Event()
        self._drain_noted = False
        self._stopped = threading.Event()

    # -- HTTP-facing operations ---------------------------------------- #
    def submit(self, payload: Any) -> tuple[int, dict[str, Any]]:
        """Validate, size, admit and persist one submission."""
        if self._draining.is_set():
            return 503, {"error": "draining",
                         "reason": "daemon is draining; not admitting"}
        try:
            spec = JobSpec.from_dict(payload)
        except (JobSpecError, TypeError) as exc:
            return 400, {"error": "bad_spec", "reason": str(exc)}
        queued, per_tenant = self.store.queued_counts()
        ok, reason = admit(self.policy, queued,
                           per_tenant.get(spec.tenant, 0))
        if not ok:
            self.metrics.counter("serve.jobs_rejected").inc()
            return 429, {"error": "rejected", "reason": reason}
        trace_id = new_trace_id() if spec.trace else ""
        submitted_ns = now_ns()
        try:
            sizing = presize(spec)
        except JobSpecError as exc:
            return 400, {"error": "bad_spec", "reason": str(exc)}
        sized_ns = now_ns()
        ranks = rank_budget(spec, sizing, self.policy.patterns_per_rank,
                            self.policy.job_rank_cap)
        job_id = self.store.submit(spec, sizing, ranks,
                                   trace_id=trace_id,
                                   now_ns=submitted_ns)
        if trace_id:
            record_service_spans(self.store.root / job_id, [
                service_instant("admit", trace_id, t_ns=submitted_ns,
                                tenant=spec.tenant, queued=queued),
                service_span("sized", trace_id, submitted_ns, sized_ns,
                             taxa=sizing.taxa, patterns=sizing.patterns,
                             partitions=sizing.partitions, ranks=ranks),
            ])
        self.metrics.counter("serve.jobs_submitted").inc()
        self._log(f"[serve] job {job_id} queued: {sizing.taxa} taxa x "
                  f"{sizing.patterns} patterns -> {ranks} rank(s) "
                  f"(tenant {spec.tenant!r}, priority {spec.priority})")
        return 201, {"job_id": job_id, "ranks": ranks,
                     "sizing": sizing.to_dict()}

    def job_status(self, job_id: str) -> tuple[int, dict[str, Any]]:
        try:
            manifest = self.store.load(self.store.registry.resolve(job_id))
        except FileNotFoundError as exc:
            return 404, {"error": "not_found", "reason": str(exc)}
        with self._lock:
            reason = self._skip_reasons.get(manifest["run_id"])
        if reason and manifest.get("status") == "queued":
            manifest = dict(manifest)
            manifest["scheduler_note"] = reason
        return 200, manifest

    def list_jobs(self) -> tuple[int, dict[str, Any]]:
        rows = []
        with self._lock:
            skips = dict(self._skip_reasons)
        for m in self.store.jobs():
            q = m.get("queue") or {}
            row = {
                "job_id": m["run_id"],
                "status": m.get("status"),
                "tenant": q.get("tenant"),
                "priority": q.get("priority"),
                "ranks": q.get("granted_ranks", q.get("ranks")),
                "engine": m.get("engine"),
                "created": m.get("created"),
                "result": m.get("result"),
            }
            note = skips.get(m["run_id"])
            if note and m.get("status") == "queued":
                row["scheduler_note"] = note
            rows.append(row)
        return 200, {"jobs": rows, "policy": policy_to_dict(self.policy)}

    def cancel(self, job_id: str) -> tuple[int, dict[str, Any]]:
        try:
            job_id = self.store.registry.resolve(job_id)
            state = self.store.request_cancel(job_id)
        except FileNotFoundError as exc:
            return 404, {"error": "not_found", "reason": str(exc)}
        with self._lock:
            proc = self._children.get(job_id)
        if state == "cancelling" and proc is not None:
            proc.send_signal(signal.SIGTERM)
            self._log(f"[serve] job {job_id}: SIGTERM sent "
                      f"(cooperative cancel)")
        if state == "cancelled":
            self.metrics.counter("serve.jobs_cancelled").inc()
        return 200, {"job_id": job_id, "state": state}

    def healthz(self) -> tuple[int, dict[str, Any]]:
        with self._lock:
            running = len(self._children)
            busy = self._busy_ranks()
        draining = self._draining.is_set()
        return 200, {
            "status": "draining" if draining else "ok",
            "draining": draining,
            "running": running,
            "queue_depth": len(self.store.pending()),
            "busy_ranks": busy,
            "pool_ranks": self.policy.pool_ranks,
            # replicheck: ignore[R004] -- daemon uptime for /healthz; service bookkeeping
            "uptime_s": time.monotonic() - self._started_mono,
            "root": str(self.store.root),
        }

    def prom_metrics(self) -> str:
        from repro.obs.export import snapshot_to_prom

        return snapshot_to_prom(self.metrics.snapshot(), prefix="repro")

    # -- scheduling ----------------------------------------------------- #
    def _busy_ranks(self) -> int:
        return sum(self._child_ranks.values())

    def _running_by_tenant(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for job_id, ranks in sorted(self._child_ranks.items()):
            tenant = self._child_tenants.get(job_id, "default")
            out[tenant] = out.get(tenant, 0) + ranks
        return out

    def _launch(self, grant: PendingJob) -> None:
        manifest = self.store.load(grant.job_id)
        if manifest.get("status") != "queued":
            # cancelled (or otherwise moved on) between selection and
            # launch — the grant is stale, skip it
            return
        spec = JobSpec.from_dict(manifest["job"])
        trace_id = str(manifest.get("trace_id") or "")
        queue = manifest.get("queue") or {}
        submitted_ns = queue.get("submitted_ns")
        granted_ns = now_ns()
        run_dir = self.store.root / grant.job_id
        cmd = [
            sys.executable, "-m", "repro", "infer", spec.alignment,
            "--engine", spec.engine,
            "--ranks", str(grant.ranks),
            "--dist", spec.dist,
            "-m", spec.model,
            "-n", str(spec.iterations),
            "-r", str(spec.radius),
            "-e", repr(spec.epsilon),
            "-s", str(spec.seed),
            "--run-id", grant.job_id,
            "--cancellable",
            "--checkpoint", str(run_dir / "checkpoint.npz"),
            "-o", str(run_dir / "tree.nwk"),
            # always monitor: the progress streams double as the
            # /jobs/<id>/events source even for unsupervised jobs
            "--monitor",
        ]
        if spec.partitions:
            cmd += ["-q", spec.partitions]
        if spec.per_partition_branches:
            cmd += ["-M"]
        supervise = (spec.supervise if self.supervise_jobs is None
                     else self.supervise_jobs)
        if supervise:
            cmd += ["--supervise"]
        if trace_id:
            cmd += ["--trace-dir", str(run_dir / "trace"),
                    "--trace-id", trace_id]
        env = child_env(trace_id) if trace_id else dict(os.environ)
        env["REPRO_RUNS_DIR"] = str(self.store.root)
        log_file = open(run_dir / JOB_LOG_FILENAME, "ab")
        try:
            # own session: the daemon's SIGTERM (drain) must not fan out
            # to jobs — cancellation is explicit and per-job
            proc = subprocess.Popen(
                cmd, stdout=log_file, stderr=subprocess.STDOUT, env=env,
                start_new_session=True)
        except OSError:
            log_file.close()
            raise
        launched_ns = now_ns()
        with self._lock:
            self._start_seq += 1
            start_seq = self._start_seq
        # replicheck: ignore[R004] -- grant/launch wall stamps for SLO analytics; daemon-side bookkeeping
        now_wall = time.time()
        # registry write (flock) happens with the daemon lock released,
        # so HTTP threads are never stalled behind the sidecar lock
        self.store.mark_running(
            grant.job_id, grant.ranks, start_seq,
            granted_s=now_wall, granted_ns=granted_ns,
            launched_s=now_wall, launched_ns=launched_ns,
            pid=proc.pid, pool_ranks=self.policy.pool_ranks)
        if submitted_ns is not None:
            wait_s = max(0.0, (granted_ns - int(submitted_ns)) / 1e9)
            self.metrics.histogram(
                "serve.queue_wait_s",
                bounds=DEFAULT_TIME_BOUNDS).observe(wait_s)
        self.metrics.histogram(
            "serve.sched_latency_s", bounds=DEFAULT_TIME_BOUNDS).observe(
                max(0.0, (launched_ns - granted_ns) / 1e9))
        if trace_id:
            records = []
            if submitted_ns is not None:
                records.append(service_span(
                    "queued", trace_id, int(submitted_ns), granted_ns,
                    tenant=grant.tenant, priority=grant.priority))
            records.append(service_instant(
                "granted", trace_id, t_ns=granted_ns,
                ranks=grant.ranks, start_seq=start_seq))
            records.append(service_span(
                "launched", trace_id, granted_ns, launched_ns,
                pid=proc.pid))
            record_service_spans(run_dir, records)
        with self._lock:
            self._noted_skips.pop(grant.job_id, None)
            self._children[grant.job_id] = proc
            self._child_logs[grant.job_id] = log_file
            self._child_ranks[grant.job_id] = grant.ranks
            self._child_tenants[grant.job_id] = grant.tenant
        # Close the cancel/launch race: a cancel that landed between
        # selection and the registration above saw status "running" but
        # found no child process to signal.  Now that the child is
        # registered (so any later cancel will find it), re-read the
        # manifest and deliver the signal ourselves if one was pending.
        q = dict(self.store.load(grant.job_id).get("queue") or {})
        if q.get("cancel_requested"):
            proc.send_signal(signal.SIGTERM)
            self._log(f"[serve] job {grant.job_id}: SIGTERM sent "
                      f"(cancel requested during launch)")
        self._log(f"[serve] job {grant.job_id} started: {grant.ranks} "
                  f"rank(s), pid {proc.pid}, start_seq {start_seq}")

    def _reap(self) -> None:
        """Reap finished children.

        Split into two phases on purpose: the shared child maps are
        updated under the daemon lock, but the per-job finalization
        (registry writes behind the flock sidecar, trace I/O, logging)
        runs with the lock released — HTTP handler threads keep
        answering ``/healthz`` and ``cancel`` while manifests are
        stamped.
        """
        finished: list[tuple[str, int, IO[bytes] | None]] = []
        with self._lock:
            for job_id in sorted(self._children):
                proc = self._children[job_id]
                rc = proc.poll()
                if rc is None:
                    continue
                del self._children[job_id]
                self._child_ranks.pop(job_id, None)
                self._child_tenants.pop(job_id, None)
                finished.append(
                    (job_id, rc, self._child_logs.pop(job_id, None)))
        for job_id, rc, log_file in finished:
            if log_file is not None:
                log_file.close()
            finished_ns = now_ns()
            manifest = self.store.load(job_id)
            queue = manifest.get("queue") or {}
            # replicheck: ignore[R004] -- completion wall stamp for SLO analytics; daemon-side bookkeeping
            self.store.stamp_queue(job_id, finished_s=time.time(),
                                   finished_ns=finished_ns)
            final = self.store.finalize_orphan(job_id)
            launched_ns = queue.get("launched_ns")
            if launched_ns is not None:
                self.metrics.histogram(
                    "serve.run_duration_s",
                    bounds=DEFAULT_TIME_BOUNDS).observe(
                        max(0.0, (finished_ns - int(launched_ns)) / 1e9))
            trace_id = str(manifest.get("trace_id") or "")
            if trace_id and launched_ns is not None:
                record_service_spans(self.store.root / job_id, [
                    service_span("run", trace_id, int(launched_ns),
                                 finished_ns, status=final, exit_code=rc),
                ])
            self.metrics.counter(f"serve.jobs_{final}").inc()
            self._log(f"[serve] job {job_id} finished: {final} "
                      f"(exit {rc})")

    def tick(self, now: float | None = None) -> None:
        """One scheduler heartbeat (reap, select, launch, gauge).

        The daemon lock is held only for the in-memory scheduler state
        (child maps, skip reasons, counters) — every registry access
        (``pending``, launch stamps, reap finalization) runs unlocked so
        the flock sidecar can never stall HTTP threads behind a tick.
        """
        if now is None:
            # replicheck: ignore[R004] -- scheduler bookkeeping in the daemon; jobs run in their own processes
            now = time.time()
        self._reap()
        pending = self.store.pending()
        grants: list[PendingJob] = []
        skipped: dict[str, str] = {}
        with self._lock:
            if not self._draining.is_set() and pending:
                free = self.policy.pool_ranks - self._busy_ranks()
                selection = select(self.policy, pending, free,
                                   self._running_by_tenant(), now)
                self._skip_reasons = selection.skipped
                skipped = selection.skipped
                grants = list(selection.grants)
            elif not pending:
                self._skip_reasons = {}
        if skipped:
            self._note_skips(skipped)
        for grant in grants:
            self._launch(grant)
        queue_depth = float(len(self.store.pending()))
        with self._lock:
            running = float(len(self._children))
            busy = self._busy_ranks()
            by_tenant = self._running_by_tenant()
            self._gauged_tenants.update(by_tenant)
            gauged = sorted(self._gauged_tenants)
        self.metrics.gauge("serve.queue_depth").set(queue_depth)
        self.metrics.gauge("serve.jobs_running").set(running)
        pool = max(1, self.policy.pool_ranks)
        self.metrics.gauge("serve.pool_busy_ranks").set(float(busy))
        self.metrics.gauge("serve.pool_ranks").set(
            float(self.policy.pool_ranks))
        self.metrics.gauge("serve.pool_utilization").set(busy / pool)
        for tenant in gauged:
            self.metrics.gauge(
                f"serve.tenant_running_ranks.{tenant}").set(
                    float(by_tenant.get(tenant, 0)))

    def _note_skips(self, skipped: dict[str, str]) -> None:
        """Trace a ``sched_skip`` instant when a job's skip reason
        changes (never per tick — a stable reason is traced once)."""
        with self._lock:
            changed = [(job_id, skipped[job_id])
                       for job_id in sorted(skipped)
                       if self._noted_skips.get(job_id) != skipped[job_id]]
            for job_id, reason in changed:
                self._noted_skips[job_id] = reason
        for job_id, reason in changed:
            try:
                manifest = self.store.load(job_id)
            except (FileNotFoundError, OSError):
                continue
            trace_id = str(manifest.get("trace_id") or "")
            if not trace_id:
                continue
            record_service_spans(self.store.root / job_id, [
                service_instant("sched_skip", trace_id, reason=reason),
            ])

    # -- lifecycle ------------------------------------------------------ #
    def drain(self) -> None:
        """Stop admitting and starting jobs; running jobs may finish.

        Async-signal-safe by construction: it only sets an Event.  The
        run loop (and :meth:`_drain_log_once`) does the logging — a
        SIGTERM arriving while some thread holds an I/O or logging lock
        must not make the handler re-enter it.
        """
        self._draining.set()

    def _drain_log_once(self) -> None:
        if self._draining.is_set() and not self._drain_noted:
            self._drain_noted = True
            self._log("[serve] draining: admission closed, waiting for "
                      "running jobs")

    def run(self) -> int:
        """Blocking daemon loop; returns the process exit code."""
        from repro.serve.httpd import start_http

        requeued = self.store.recover()
        for job_id in requeued:
            self._log(f"[serve] recovered job {job_id}: re-queued "
                      f"(previous daemon died mid-run)")
        prev_term = signal.signal(signal.SIGTERM,
                                  lambda signum, frame: self.drain())
        prev_int = signal.signal(signal.SIGINT,
                                 lambda signum, frame: self.drain())
        server = start_http(self, self.host, self.port)
        self.port = server.server_address[1]
        self._log(f"[serve] listening on http://{self.host}:{self.port} "
                  f"(pool {self.policy.pool_ranks} rank(s), root "
                  f"{self.store.root})")
        try:
            while True:
                self._drain_log_once()
                self.tick()
                with self._lock:
                    idle = not self._children
                if self._draining.is_set() and idle:
                    break
                time.sleep(self.tick_s)
            # final reap pass so every manifest is terminal before exit
            self.tick()
        finally:
            self._stopped.set()
            server.shutdown()
            server.server_close()
            signal.signal(signal.SIGTERM, prev_term)
            signal.signal(signal.SIGINT, prev_int)
        self._log("[serve] drained: all jobs terminal, exiting 0")
        return 0
