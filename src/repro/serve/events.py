"""Live job event streams: daemon lifecycle + rank progress, merged.

``GET /jobs/<id>/events`` tails one logical stream per job: the
daemon-side lifecycle transitions (queued → granted → launched →
terminal) reconstructed from the manifest's ``queue`` stamps, merged
with the per-rank progress streams (``progress-rank<N>.jsonl``) the
job's monitor thread appends to.  Everything is read incrementally from
disk — the daemon process never buffers events in memory, so a stream
opened mid-run replays the job's history and then follows live, and a
daemon restart loses nothing.

Events are JSON objects with at least ``event`` and ``source``
(``"daemon"`` for lifecycle, ``"rank<N>"`` for progress).  The stream
ends with a ``terminal`` event once the job reaches a terminal status
and its progress streams have been drained.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Iterator

from repro.obs.progress import read_progress_since
from repro.obs.registry import TERMINAL_STATUSES, RunRegistry

__all__ = ["lifecycle_events", "iter_job_events"]

#: Canonical lifecycle order; a stream emits each at most once.
_LIFECYCLE_ORDER = ("queued", "granted", "launched")


def lifecycle_events(manifest: dict[str, Any]) -> list[dict[str, Any]]:
    """The daemon-side lifecycle events visible in a job manifest.

    Reconstructed from the ``queue`` block's stamps, in canonical
    order; a terminal manifest additionally yields a ``terminal``
    event.  Idempotent — callers diff against what they already sent.
    """
    queue = manifest.get("queue") or {}
    out: list[dict[str, Any]] = []
    event: dict[str, Any] = {
        "event": "queued",
        "source": "daemon",
        "job_id": manifest.get("run_id"),
        "tenant": queue.get("tenant"),
        "priority": queue.get("priority"),
        "ranks": queue.get("ranks"),
    }
    if "submitted_s" in queue:
        event["t_s"] = queue["submitted_s"]
    out.append(event)
    if "granted_s" in queue or "granted_ranks" in queue:
        event = {
            "event": "granted",
            "source": "daemon",
            "ranks": queue.get("granted_ranks"),
            "start_seq": queue.get("start_seq"),
        }
        if "granted_s" in queue:
            event["t_s"] = queue["granted_s"]
        out.append(event)
    if "launched_s" in queue or "pid" in queue:
        event = {
            "event": "launched",
            "source": "daemon",
            "pid": queue.get("pid"),
        }
        if "launched_s" in queue:
            event["t_s"] = queue["launched_s"]
        out.append(event)
    status = manifest.get("status")
    if status in TERMINAL_STATUSES:
        event = {
            "event": "terminal",
            "source": "daemon",
            "status": status,
        }
        if "finished_s" in queue:
            event["t_s"] = queue["finished_s"]
        if manifest.get("result") is not None:
            event["result"] = manifest["result"]
        out.append(event)
    return out


def iter_job_events(
    root: str | Path | None,
    job_id: str,
    poll_s: float = 0.2,
    timeout_s: float | None = None,
    keepalive_s: float = 15.0,
) -> Iterator[dict[str, Any]]:
    """Follow one job's merged lifecycle + progress event stream.

    Replays history first (lifecycle from the manifest, progress from
    the start of each rank stream), then polls the filesystem until the
    job is terminal, yielding new events as they land.  ``keepalive``
    events are injected while nothing happens so HTTP consumers can
    tell a quiet stream from a dead one; ``timeout_s`` bounds the whole
    follow (``None`` = until terminal).
    """
    registry = RunRegistry(root)
    job_id = registry.resolve(job_id)
    sent = 0                       # lifecycle events already yielded
    offsets: dict[Path, int] = {}  # progress stream -> bytes consumed
    # replicheck: ignore[R004] -- stream timeout/keepalive pacing; service-side bookkeeping
    started = time.monotonic()
    last_emit = started

    while True:
        emitted = False
        try:
            manifest = registry.load(job_id)
        except (FileNotFoundError, OSError):
            yield {"event": "lost", "source": "daemon",
                   "reason": "job manifest disappeared"}
            return
        lifecycle = lifecycle_events(manifest)
        terminal = (lifecycle and lifecycle[-1]["event"] == "terminal")
        live = lifecycle[:-1] if terminal else lifecycle
        for event in live[sent:]:
            yield event
            emitted = True
        sent = len(live)
        for path in registry.progress_paths(job_id):
            events, offsets[path] = read_progress_since(
                path, offsets.get(path, 0))
            for event in events:
                rank = event.get("rank", 0)
                yield {**event, "source": f"rank{rank}"}
                emitted = True
        if terminal:
            yield lifecycle[-1]
            return
        # replicheck: ignore[R004] -- stream timeout/keepalive pacing; service-side bookkeeping
        now = time.monotonic()
        if emitted:
            last_emit = now
        elif keepalive_s and now - last_emit >= keepalive_s:
            yield {"event": "keepalive", "source": "daemon"}
            last_emit = now
        if timeout_s is not None and now - started >= timeout_s:
            yield {"event": "stream_timeout", "source": "daemon"}
            return
        time.sleep(poll_s)
