"""Stdlib HTTP/JSON front end for the serve daemon.

Routes (all JSON unless noted)::

    POST   /jobs             submit a job spec          -> 201 {job_id, ranks}
    GET    /jobs             list jobs + policy         -> 200
    GET    /jobs/<id>        one job's full manifest    -> 200
    GET    /jobs/<id>/events live JSONL event stream    -> 200 (x-ndjson)
    DELETE /jobs/<id>        cancel (cooperative)       -> 200 {state}
    GET    /metrics          Prometheus text exposition -> 200 (text/plain)
    GET    /healthz          liveness + pool/queue view -> 200

Built on ``http.server.ThreadingHTTPServer`` — no dependencies beyond
the standard library, matching the repo's no-new-deps rule.  Handler
threads only touch the daemon through its small, locked public methods.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.daemon import ServeDaemon

__all__ = ["start_http", "ServeHTTPServer"]

MAX_BODY_BYTES = 1 << 20  # a job spec is small; reject anything huge


class ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True  # don't let a slow client block drain
    allow_reuse_address = True

    def __init__(self, addr, handler, serve_daemon: "ServeDaemon") -> None:
        super().__init__(addr, handler)
        self.serve_daemon = serve_daemon


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def daemon(self) -> "ServeDaemon":
        return self.server.serve_daemon  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        # route access logs through the daemon's logger (stderr), not
        # BaseHTTPRequestHandler's hardwired sys.stderr.write
        self.daemon._log(f"[serve] http {self.address_string()} "
                         f"{format % args}")

    # -- helpers -------------------------------------------------------- #
    def _send_json(self, code: int, payload: dict[str, Any]) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str) -> None:
        body = text.encode()
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _job_id(self) -> str | None:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            return parts[1]
        return None

    def _events_job_id(self) -> str | None:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if (len(parts) == 3 and parts[0] == "jobs"
                and parts[2] == "events"):
            return parts[1]
        return None

    def _stream_events(self, job_id: str) -> None:
        """Chunkless streaming: no Content-Length, read-until-close."""
        from repro.serve.events import iter_job_events

        try:
            resolved = self.daemon.store.registry.resolve(job_id)
            self.daemon.store.load(resolved)
        except FileNotFoundError as exc:
            self._send_json(404, {"error": "not_found",
                                  "reason": str(exc)})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        try:
            for event in iter_job_events(self.daemon.store.root, resolved):
                self.wfile.write((json.dumps(event) + "\n").encode())
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def _route(self) -> str:
        return self.path.split("?")[0].rstrip("/") or "/"

    # -- verbs ---------------------------------------------------------- #
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self._route() != "/jobs":
            self._send_json(404, {"error": "not_found",
                                  "reason": f"no route {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._send_json(413, {"error": "too_large",
                                  "reason": "job spec body too large"})
            return
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as exc:
            self._send_json(400, {"error": "bad_json", "reason": str(exc)})
            return
        code, body = self.daemon.submit(payload)
        self._send_json(code, body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        route = self._route()
        if route == "/healthz":
            code, body = self.daemon.healthz()
            self._send_json(code, body)
            return
        if route == "/metrics":
            self._send_text(200, self.daemon.prom_metrics())
            return
        if route == "/jobs":
            code, body = self.daemon.list_jobs()
            self._send_json(code, body)
            return
        events_id = self._events_job_id()
        if events_id:
            self._stream_events(events_id)
            return
        job_id = self._job_id()
        if job_id:
            code, body = self.daemon.job_status(job_id)
            self._send_json(code, body)
            return
        self._send_json(404, {"error": "not_found",
                              "reason": f"no route {self.path!r}"})

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        job_id = self._job_id()
        if not job_id:
            self._send_json(404, {"error": "not_found",
                                  "reason": f"no route {self.path!r}"})
            return
        code, body = self.daemon.cancel(job_id)
        self._send_json(code, body)


def start_http(
    daemon: "ServeDaemon", host: str, port: int
) -> ServeHTTPServer:
    """Bind and serve in a background thread; returns the server."""
    server = ServeHTTPServer((host, port), _Handler, daemon)
    thread = threading.Thread(target=server.serve_forever,
                              name="serve-http", daemon=True)
    thread.start()
    return server
