"""Pure scheduling policy: admission, priority aging, rank packing.

Everything here is arithmetic over plain data — no clocks, no
filesystem, no processes — so the policy is exhaustively unit-testable
(``tests/test_serve_policy.py``) and the daemon stays a thin driver
around it.  Callers pass ``now_s`` explicitly; the module never reads
wall time itself.

The selection rule, in order:

1. **Effective priority** = submitted priority + ``aging_rate`` × wait
   seconds, so starved low-priority jobs eventually overtake a stream
   of fresh high-priority ones.  Ties break by submission order.
2. **Tenant quotas**: a job whose tenant already holds
   ``tenant_max_ranks`` running ranks is skipped (not failed — it stays
   queued for the next tick).
3. **Packing with bounded backfill**: grants walk the priority order,
   fitting jobs into the free-rank pool.  A too-wide job at the head of
   the queue does not block smaller jobs behind it (backfill) — *until*
   it has waited ``hol_grace_s``, after which backfill is suspended so
   the pool drains and the wide job cannot be starved forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ServePolicy",
    "PendingJob",
    "Selection",
    "admit",
    "effective_priority",
    "select",
    "policy_to_dict",
]


@dataclass(frozen=True)
class ServePolicy:
    """The daemon's resource-allocation knobs (all CLI-settable)."""

    #: Global rank pool: total live engine processes across all jobs.
    pool_ranks: int = 4
    #: Per-job rank cap; 0 means "up to the whole pool".
    max_ranks_per_job: int = 0
    #: Auto-sizing target: compressed patterns one rank should hold.
    patterns_per_rank: int = 2000
    #: Admission control: queued jobs beyond this are rejected.
    max_queue_depth: int = 64
    #: Max running ranks per tenant; 0 disables the quota.
    tenant_max_ranks: int = 0
    #: Max queued jobs per tenant; 0 disables the quota.
    tenant_max_queued: int = 0
    #: Priority points gained per second of queue wait.
    aging_rate: float = 1.0 / 60.0
    #: Head-of-line grace: how long the top job may be backfilled past
    #: before the pool is drained for it.
    hol_grace_s: float = 30.0

    def __post_init__(self) -> None:
        if self.pool_ranks < 1:
            raise ValueError("pool_ranks must be positive")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive")
        if self.aging_rate < 0 or self.hol_grace_s < 0:
            raise ValueError("aging_rate/hol_grace_s must be >= 0")

    @property
    def job_rank_cap(self) -> int:
        cap = (self.max_ranks_per_job
               if self.max_ranks_per_job > 0 else self.pool_ranks)
        return min(cap, self.pool_ranks)


@dataclass(frozen=True)
class PendingJob:
    """The scheduler's view of one queued job."""

    job_id: str
    ranks: int
    tenant: str = "default"
    priority: int = 0
    #: Submission wall time (epoch seconds, stamped by the store).
    submitted_s: float = 0.0
    #: Monotonic submission sequence number — the total order that
    #: breaks priority ties (FIFO among equals).
    seq: int = 0


@dataclass
class Selection:
    """What one scheduling pass decided."""

    grants: list[PendingJob] = field(default_factory=list)
    #: job_id → why it was passed over this tick (stays queued).
    skipped: dict[str, str] = field(default_factory=dict)


def admit(
    policy: ServePolicy,
    queued: int,
    tenant_queued: int,
) -> tuple[bool, str]:
    """Admission control for one new submission: (ok, reject_reason)."""
    if queued >= policy.max_queue_depth:
        return False, (f"queue full ({queued}/{policy.max_queue_depth} "
                       f"jobs queued)")
    if policy.tenant_max_queued and tenant_queued >= policy.tenant_max_queued:
        return False, (f"tenant queue quota reached "
                       f"({tenant_queued}/{policy.tenant_max_queued})")
    return True, ""


def effective_priority(
    policy: ServePolicy, job: PendingJob, now_s: float
) -> float:
    """Submitted priority plus aging credit for time spent queued."""
    waited = max(0.0, now_s - job.submitted_s)
    return job.priority + policy.aging_rate * waited


def select(
    policy: ServePolicy,
    pending: list[PendingJob],
    free_ranks: int,
    running_by_tenant: dict[str, int] | None = None,
    now_s: float = 0.0,
) -> Selection:
    """One scheduling pass: pick which queued jobs to start now.

    Pure function of its arguments; the daemon calls it every tick with
    the live queue and pool state.  Granted jobs are removed from the
    caller's queue; skipped jobs stay queued with a reason (visible in
    ``GET /jobs``).
    """
    running_by_tenant = dict(running_by_tenant or {})
    order = sorted(
        pending,
        key=lambda j: (-effective_priority(policy, j, now_s), j.seq),
    )
    out = Selection()
    free = free_ranks
    backfilling = True
    for idx, job in enumerate(order):
        ranks = min(max(1, job.ranks), policy.job_rank_cap)
        quota = policy.tenant_max_ranks
        if quota and running_by_tenant.get(job.tenant, 0) + ranks > quota:
            out.skipped[job.job_id] = (
                f"tenant {job.tenant!r} rank quota "
                f"({running_by_tenant.get(job.tenant, 0)}/{quota} in use)")
            continue
        if ranks > free:
            out.skipped[job.job_id] = (
                f"waiting for ranks ({ranks} needed, {free} free)")
            if idx == 0 and now_s - job.submitted_s > policy.hol_grace_s:
                # The head job has out-waited its grace: stop backfilling
                # so the pool drains for it instead of being nibbled away
                # by small jobs forever.
                backfilling = False
            if not backfilling:
                for later in order[idx + 1:]:
                    out.skipped.setdefault(
                        later.job_id,
                        "backfill suspended (head-of-line job out of grace)")
                break
            continue
        out.grants.append(PendingJob(
            job_id=job.job_id, ranks=ranks, tenant=job.tenant,
            priority=job.priority, submitted_s=job.submitted_s,
            seq=job.seq))
        free -= ranks
        running_by_tenant[job.tenant] = (
            running_by_tenant.get(job.tenant, 0) + ranks)
    return out


def policy_to_dict(policy: ServePolicy) -> dict[str, Any]:
    from dataclasses import asdict

    return asdict(policy)
