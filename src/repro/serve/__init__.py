"""Inference-as-a-service: durable job queue, resource-aware scheduler,
and a stdlib HTTP/JSON front end over the run registry.

Layering (each module usable on its own):

* :mod:`repro.serve.spec` — job spec validation + alignment pre-parse
  sizing (taxa × patterns → rank budget);
* :mod:`repro.serve.scheduler` — pure policy arithmetic: admission,
  priority aging, tenant quotas, packing with bounded backfill;
* :mod:`repro.serve.store` — durable queue state as registry manifests
  (submitted jobs survive daemon restarts);
* :mod:`repro.serve.daemon` — the scheduler loop launching supervised
  ``repro infer`` job processes, with graceful SIGTERM drain;
* :mod:`repro.serve.httpd` — the HTTP routes;
* :mod:`repro.serve.events` — live job event streams (daemon lifecycle
  merged with per-rank progress) behind ``GET /jobs/<id>/events``;
* :mod:`repro.serve.client` — the urllib client behind ``repro
  submit|status|cancel|watch``.
"""

from repro.serve.daemon import DEFAULT_HOST, DEFAULT_PORT, ServeDaemon
from repro.serve.events import iter_job_events, lifecycle_events
from repro.serve.scheduler import (
    PendingJob,
    Selection,
    ServePolicy,
    admit,
    effective_priority,
    select,
)
from repro.serve.spec import (
    JobSizing,
    JobSpec,
    JobSpecError,
    presize,
    rank_budget,
)
from repro.serve.store import JobStore

__all__ = [
    "ServeDaemon",
    "ServePolicy",
    "PendingJob",
    "Selection",
    "JobSpec",
    "JobSpecError",
    "JobSizing",
    "JobStore",
    "admit",
    "effective_priority",
    "select",
    "presize",
    "rank_budget",
    "iter_job_events",
    "lifecycle_events",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
]
