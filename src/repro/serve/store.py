"""Durable job queue on top of the run registry.

Each job IS a run: its registry manifest (``command: "job"``) carries
the validated spec, the sizing pre-parse, and a ``queue`` block with
the scheduler's bookkeeping.  The manifest is written *before* the
submitter gets its job id back, so an acknowledged job survives a
daemon crash — :meth:`JobStore.recover` re-adopts the whole queue from
disk at startup (queued jobs stay queued; jobs that were mid-flight
when the daemon died are re-queued, their half-run superseded by the
relaunch, unless a cancel was pending).

Job lifecycle (= manifest ``status``)::

    queued -> running -> completed | failed | cancelled
       \\__________________________________/
                    (cancel)

The executing ``repro infer --run-id <job_id>`` process attaches to the
same manifest and writes the terminal status itself; the daemon only
stamps ``queued``/``running``/launch metadata and reconciles children
that die without reaching a terminal state.  All writes go through the
registry's per-run advisory lock, so daemon and job process can never
lose each other's updates.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any

from repro.obs.registry import TERMINAL_STATUSES, RunRegistry
from repro.serve.scheduler import PendingJob
from repro.serve.spec import JobSizing, JobSpec

__all__ = ["JobStore"]


class JobStore:
    """Registry-backed queue state shared by daemon, HTTP and CLI."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.registry = RunRegistry(root)
        self._seq_lock = threading.Lock()
        self._next_seq: int | None = None

    @property
    def root(self) -> Path:
        return self.registry.root

    # -- submission ---------------------------------------------------- #
    def _alloc_seq(self) -> int:
        with self._seq_lock:
            if self._next_seq is None:
                # resume the sequence after a daemon restart so recovered
                # jobs keep their FIFO position relative to new ones
                self._next_seq = 1 + max(
                    (int((m.get("queue") or {}).get("seq", -1))
                     for m in self.jobs()),
                    default=-1,
                )
            seq = self._next_seq
            self._next_seq += 1
            return seq

    def submit(
        self,
        spec: JobSpec,
        sizing: JobSizing,
        ranks: int,
        now: float | None = None,
        trace_id: str = "",
        now_ns: int | None = None,
    ) -> str:
        """Persist a new queued job; returns its job id (= run id).

        ``trace_id`` is the end-to-end trace context the daemon minted
        for this submission; ``now_ns`` is the matching monotonic stamp
        (:func:`repro.obs.context.now_ns`) so queue-wait spans share the
        timebase of the per-rank tracers.
        """
        if now is None:
            # replicheck: ignore[R004] -- submission timestamp for priority aging; daemon-side bookkeeping
            now = time.time()
        queue: dict[str, Any] = {
            "state": "queued",
            "ranks": ranks,
            "tenant": spec.tenant,
            "priority": spec.priority,
            "submitted_s": now,
            "seq": self._alloc_seq(),
        }
        if now_ns is not None:
            queue["submitted_ns"] = int(now_ns)
        manifest: dict[str, Any] = {
            "command": "job",
            "engine": spec.engine,
            "ranks": ranks,
            "dist": spec.dist,
            "seed": spec.seed,
            "alignment": spec.alignment,
            "status": "queued",
            "job": spec.to_dict(),
            "sizing": sizing.to_dict(),
            "queue": queue,
        }
        if trace_id:
            manifest["trace_id"] = trace_id
        return self.registry.register(manifest)

    # -- reading ------------------------------------------------------- #
    def jobs(self) -> list[dict[str, Any]]:
        """Every job manifest under the root, oldest first.

        A job is recognized by its ``job`` (spec) block, not by
        ``command``: the executing ``repro infer --run-id`` process
        attaches to the same manifest and stamps ``command: "infer"``
        over the store's ``"job"`` — the spec block is the one field
        only the store writes.
        """
        return [m for m in self.registry.list_runs()
                if m.get("job") is not None]

    def load(self, job_id: str) -> dict[str, Any]:
        manifest = self.registry.load(job_id)
        if manifest.get("job") is None:
            raise FileNotFoundError(f"{job_id!r} is a run, not a job")
        return manifest

    def pending(self) -> list[PendingJob]:
        """The queued jobs as the scheduler's :class:`PendingJob` view."""
        out = []
        for m in self.jobs():
            if m.get("status") != "queued":
                continue
            q = m.get("queue") or {}
            out.append(PendingJob(
                job_id=m["run_id"],
                ranks=int(q.get("ranks", 1)),
                tenant=str(q.get("tenant", "default")),
                priority=int(q.get("priority", 0)),
                submitted_s=float(q.get("submitted_s", 0.0)),
                seq=int(q.get("seq", 0)),
            ))
        return out

    def queued_counts(self) -> tuple[int, dict[str, int]]:
        """(total queued, per-tenant queued) for admission control."""
        per_tenant: dict[str, int] = {}
        total = 0
        for job in self.pending():
            total += 1
            per_tenant[job.tenant] = per_tenant.get(job.tenant, 0) + 1
        return total, per_tenant

    # -- state transitions --------------------------------------------- #
    def mark_running(
        self,
        job_id: str,
        ranks: int,
        start_seq: int,
        **stamps: Any,
    ) -> None:
        """Stamp a grant: the daemon is about to launch this job.

        ``start_seq`` is the daemon's global launch counter — tests (and
        operators) read it to verify the scheduler's start *order*, which
        wall-clock stamps can't prove under concurrent launches.  Extra
        ``stamps`` (``granted_s``/``granted_ns``/``pool_ranks``...) are
        merged into the queue block for SLO analytics.
        """
        manifest = self.load(job_id)
        q = dict(manifest.get("queue") or {})
        q.update(state="running", granted_ranks=ranks, start_seq=start_seq)
        q.update(stamps)
        self.registry.update(job_id, status="running", ranks=ranks, queue=q)

    def stamp_queue(self, job_id: str, **stamps: Any) -> None:
        """Merge lifecycle stamps (``launched_s``, ``finished_ns``...)
        into a job's queue block without touching its status."""
        manifest = self.load(job_id)
        q = dict(manifest.get("queue") or {})
        q.update(stamps)
        self.registry.update(job_id, queue=q)

    def request_cancel(self, job_id: str) -> str:
        """Ask for a job's cancellation; returns the resulting state.

        A queued job is cancelled outright; a running job gets a
        ``cancel_requested`` stamp (the daemon SIGTERMs its process and
        the job finalizes itself as ``cancelled``); a terminal job is
        left alone.
        """
        manifest = self.load(job_id)
        status = manifest.get("status")
        q = dict(manifest.get("queue") or {})
        if status == "queued":
            q["state"] = "cancelled"
            # also stamp cancel_requested: if the daemon grabbed this job
            # between our load and this write, its mark_running preserves
            # the queue block's extra keys, and the launch path re-checks
            # this flag after registering the child — the cancel wins
            # either way instead of silently losing the race.
            q["cancel_requested"] = True
            self.registry.update(job_id, status="cancelled", queue=q)
            return "cancelled"
        if status == "running":
            q["cancel_requested"] = True
            self.registry.update(job_id, queue=q)
            return "cancelling"
        return str(status)

    def finalize_orphan(self, job_id: str) -> str:
        """Reconcile a job whose process exited without a terminal status.

        Called by the daemon after reaping a child: if the job process
        died (OOM, crash, kill -9) before writing ``completed`` /
        ``cancelled`` / ``failed`` itself, record what we know.
        """
        manifest = self.load(job_id)
        status = manifest.get("status")
        if status in TERMINAL_STATUSES:
            return str(status)
        q = dict(manifest.get("queue") or {})
        new = "cancelled" if q.get("cancel_requested") else "failed"
        q["state"] = new
        self.registry.update(
            job_id, status=new, queue=q,
            failure={"error": "job_process_died",
                     "message": "job process exited without recording "
                                "a terminal status"})
        return new

    def recover(self) -> list[str]:
        """Adopt on-disk queue state at daemon startup.

        Returns the ids of jobs that were ``running`` when the previous
        daemon died and have been re-queued (or cancelled, if a cancel
        was already pending).  Queued jobs need no action — they are
        picked up by the next scheduling tick.
        """
        requeued = []
        for m in self.jobs():
            if m.get("status") != "running":
                continue
            job_id = m["run_id"]
            q = dict(m.get("queue") or {})
            if q.get("cancel_requested"):
                q["state"] = "cancelled"
                self.registry.update(job_id, status="cancelled", queue=q)
                continue
            q["state"] = "queued"
            for stale in ("granted_ranks", "start_seq", "granted_s",
                          "granted_ns", "launched_s", "launched_ns", "pid"):
                q.pop(stale, None)
            q["requeued"] = int(q.get("requeued", 0)) + 1
            self.registry.update(job_id, status="queued", queue=q)
            requeued.append(job_id)
        return requeued
