"""The replicheck driver: file discovery, rule dispatch, suppression
and baseline application.

``analyze_paths`` is the single entry point used by both the CLI
(``repro lint``) and the test suite.  It returns an
:class:`AnalysisReport` that separates *new* findings (gate-relevant)
from suppressed/baselined ones, and also reports suppression hygiene
(pragmas without a justification, pragmas that no longer match any
finding) so exemptions cannot silently rot.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.collectives import run_collective_rule
from repro.analysis.findings import (
    Baseline,
    Finding,
    Suppression,
    assign_fingerprints,
    parse_suppressions,
)
from repro.analysis.rules import (
    ImportMap,
    NO_NAMES,
    run_syntax_rules,
    set_returning_functions,
)

__all__ = ["AnalysisReport", "analyze_source", "analyze_paths", "RULES",
           "PROFILES"]

#: Rule catalog: id -> one-line description (docs + ``repro lint --rules``).
RULES = {
    "R001": "unseeded or global-state RNG in a replica path",
    "R002": "iteration over an unordered container (set / dict-from-set / "
            "unsorted filesystem listing)",
    "R003": "collective under rank-dependent or exception-dependent "
            "branching or call chains (mismatched collective sequences)",
    "R004": "wall-clock read outside the observability layer",
    "R005": "float accumulation over an order-nondeterministic iterable",
    "R006": "collective issued (or reached via a call) while holding a "
            "lock — distributed deadlock if a peer rank needs the lock",
    "R007": "attribute of a lock-owning class written without the lock "
            "that protects it elsewhere",
    "R008": "inconsistent lock-acquisition order across functions "
            "(ABBA in-process deadlock)",
    "R009": "blocking call (child wait, recv/sleep without timeout, "
            "flock) while holding a lock",
    "R010": "durable manifest/checkpoint file written without the "
            "tmp+fsync+rename discipline",
    "R011": "non-async-signal-safe work (logging, I/O, locks, blocking "
            "calls) inside a signal handler",
}

#: Rule groups selectable via ``repro lint --profile``.
PROFILES = {
    "replica": frozenset({"R001", "R002", "R003", "R004", "R005",
                          "R006"}),
    "concurrency": frozenset({"R007", "R008", "R009", "R010", "R011"}),
    "all": frozenset(RULES),
}

def _is_obs_path(path: str) -> bool:
    """obs/ is exempt from R004 — the observability layer exists to read
    the clock, and timing there never feeds replica control flow."""
    norm = "/" + path.replace("\\", "/").lstrip("./") + "/"
    return "/obs/" in norm


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced."""

    findings: list[Finding] = field(default_factory=list)       # gate-relevant
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    unjustified_suppressions: list[tuple[str, Suppression]] = field(
        default_factory=list)
    unused_suppressions: list[tuple[str, Suppression]] = field(
        default_factory=list)
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    files_scanned: int = 0
    profile: str = "all"

    @property
    def exit_code(self) -> int:
        return 1 if self.findings or self.parse_errors else 0

    def all_findings(self) -> list[Finding]:
        return sorted(
            self.findings + self.suppressed + self.baselined,
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )

    def to_dict(self) -> dict:
        return {
            "version": 2,
            "profile": self.profile,
            "files_scanned": self.files_scanned,
            "counts": {
                "new": len(self.findings),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
            },
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "unjustified_suppressions": [
                {"path": p, "line": s.pragma_line,
                 "rules": sorted(s.rules)}
                for p, s in self.unjustified_suppressions
            ],
            "unused_suppressions": [
                {"path": p, "line": s.pragma_line,
                 "rules": sorted(s.rules)}
                for p, s in self.unused_suppressions
            ],
            "parse_errors": [
                {"path": p, "error": e} for p, e in self.parse_errors
            ],
        }


def analyze_source(
    source: str, path: str,
    set_fns: frozenset[str] = NO_NAMES,
) -> tuple[list[Finding], list[Suppression]]:
    """Run every rule over one file's source.

    Returns the raw (unsuppressed, unfingerprinted) findings plus the
    inline suppressions found in the file.  Raises ``SyntaxError`` if
    the source does not parse.  ``set_fns`` names callables known to
    return sets (resolved by :func:`analyze_paths` from return
    annotations across the scanned project).
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    findings = run_syntax_rules(
        tree, path, lines, skip_r004=_is_obs_path(path), set_fns=set_fns
    )
    findings.extend(run_collective_rule(tree, path, lines))
    return findings, parse_suppressions(source)


def _module_name(path: Path) -> str:
    """Dotted module guess from a file path (``src/repro/tree/x.py`` ->
    ``src.repro.tree.x``); consumers match by dotted suffix."""
    return ".".join(path.with_suffix("").parts)


def _resolve_imported_set_fns(
    tree: ast.Module, index: dict[str, set[str]]
) -> frozenset[str]:
    """Local aliases of imported functions the project index says return
    sets.  Matching is by dotted-module suffix, so ``from
    repro.tree.distances import bipartitions`` finds the index entry for
    ``src.repro.tree.distances`` regardless of the scan root."""

    def lookup(module: str) -> set[str]:
        for mod, fns in index.items():
            if mod == module or mod.endswith("." + module):
                return fns
        return set()

    imports = ImportMap(tree)
    aliases: set[str] = set()
    for alias, (module, name) in imports.members.items():
        if name in lookup(module):
            aliases.add(alias)
    return frozenset(aliases)


def _discover(paths: list[str | Path],
              exclude: tuple[str, ...] = ()) -> list[Path]:
    def excluded(p: Path) -> bool:
        norm = str(p).replace("\\", "/")
        for e in exclude:
            e = e.replace("\\", "/").rstrip("/")
            if norm == e or norm.startswith(e + "/"):
                return True
        return False

    out: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(q for q in sorted(p.rglob("*.py"))
                       if not excluded(q))
        elif p.suffix == ".py" and not excluded(p):
            out.append(p)
    # de-duplicate, preserving order
    seen: set[Path] = set()
    uniq = []
    for p in out:
        rp = p.resolve()
        if rp not in seen:
            seen.add(rp)
            uniq.append(p)
    return uniq


def analyze_paths(
    paths: list[str | Path],
    baseline: Baseline | None = None,
    profile: str = "all",
    select: frozenset[str] | None = None,
    exclude: tuple[str, ...] = (),
    order_safe: frozenset[str] = NO_NAMES,
) -> AnalysisReport:
    """Analyze files/directories and apply suppressions + baseline.

    ``profile`` picks a rule group (:data:`PROFILES`); ``select``
    overrides it with an explicit rule-id set.  ``exclude`` drops path
    prefixes from discovery (e.g. fixture directories that are
    intentionally violating).  ``order_safe`` extends the order-safe
    consumer allowlist of R002 for scan targets (like tests) with local
    order-insensitive helpers.

    Unlike v1, the collective rule runs on a *project-wide* call graph
    (:mod:`repro.analysis.callgraph`), so the R003/R006 findings here
    see through call chains that :func:`analyze_source` (the per-file
    v1 engine, kept for comparison and snippet checks) cannot.
    """
    if profile not in PROFILES:
        raise ValueError(
            f"unknown profile {profile!r}; expected one of "
            f"{sorted(PROFILES)}")
    active = frozenset(select) if select else PROFILES[profile]
    report = AnalysisReport(profile=profile)
    baseline = baseline or Baseline()
    all_findings: list[Finding] = []
    per_file_suppressions: dict[str, list[Suppression]] = {}

    # Pass 1: parse everything and index set-returning function
    # signatures project-wide, so R002/R005 can see through calls like
    # `splits = bipartitions(tree)` across module boundaries.
    parsed: list[tuple[Path, str, ast.Module]] = []
    sig_index: dict[str, set[str]] = {}
    for path in _discover(paths, exclude):
        path_str = str(path)
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=path_str)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append((path_str, str(exc)))
            continue
        parsed.append((path, source, tree))
        fns = set_returning_functions(tree)
        if fns:
            sig_index[_module_name(path)] = fns

    # Pass 2: per-file syntax rules + suppressions.
    for path, source, tree in parsed:
        path_str = str(path)
        findings = run_syntax_rules(
            tree, path_str, source.splitlines(),
            skip_r004=_is_obs_path(path_str),
            set_fns=_resolve_imported_set_fns(tree, sig_index),
            order_safe=order_safe,
        )
        report.files_scanned += 1
        all_findings.extend(findings)
        per_file_suppressions[path_str] = parse_suppressions(source)

    # Pass 3: project-wide call-graph rules (R003/R006 + R007–R011).
    if active.intersection(
            {"R003", "R006", "R007", "R008", "R009", "R010", "R011"}):
        from repro.analysis.callgraph import (
            build_project,
            run_collective_flow_rules,
        )
        from repro.analysis.concurrency import run_concurrency_rules

        project = build_project(
            (str(path), source, tree) for path, source, tree in parsed)
        all_findings.extend(run_collective_flow_rules(project))
        all_findings.extend(run_concurrency_rules(project))

    all_findings = [f for f in all_findings if f.rule in active]
    assign_fingerprints(all_findings)

    used: set[tuple[str, int]] = set()
    for f in sorted(all_findings, key=lambda f: (f.path, f.line, f.col)):
        suppression = next(
            (s for s in per_file_suppressions.get(f.path, ())
             if s.line == f.line and f.rule in s.rules),
            None,
        )
        if suppression is not None:
            used.add((f.path, suppression.pragma_line))
            report.suppressed.append(f)
        elif f in baseline:
            report.baselined.append(f)
        else:
            report.findings.append(f)

    for path_str, suppressions in per_file_suppressions.items():
        for s in suppressions:
            if not s.rules.intersection(active):
                continue   # out-of-profile pragmas are not this run's business
            if not s.justified:
                report.unjustified_suppressions.append((path_str, s))
            if (path_str, s.pragma_line) not in used:
                report.unused_suppressions.append((path_str, s))

    return report
