"""Project-wide call graph with per-function flow summaries.

replicheck v1 analyzed one function at a time, so a rank-dependent
branch that reaches a collective *through a call* was invisible: the
branch body contained only ``helper(x)``, the collective lived in
``helper`` (possibly in another module), and neither function alone
violated R003.  This module closes that hole MPI-Checker-style:

1. parse every file once and index every function/method by a
   qualified name (``module:Class.method``);
2. resolve call expressions to those functions with deliberately
   *syntactic* heuristics (imports, ``self.``-methods, attributes whose
   class is known from ``self.x = ClassName(...)`` constructor
   assignments, local ``x = ClassName(...)`` variables);
3. summarize each function to a tree of flow events — collectives,
   resolved calls, branches, loops, ``except`` handlers, lock-held
   regions, blocking operations, attribute writes;
4. run fixpoints over the graph (``may issue a collective``, ``may
   block``, ``may acquire lock X``) and *inline* callee summaries into
   branch arms, so the v1 checks apply across call chains.

The summaries feed two rule families: the interprocedural collective
rules here (R003 across calls, R006 collective-under-lock) and the
concurrency pack in :mod:`repro.analysis.concurrency` (R007–R011).

Known approximations (see ``docs/STATIC_ANALYSIS.md``): dynamic
dispatch through base classes, ``getattr``/reflection, decorators that
replace functions, and aliasing through containers are all unresolved —
an unresolved call contributes *nothing* to a summary, which keeps the
analysis quiet rather than noisy, at the cost of false negatives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.collectives import _collective_of, _mentions_rank
from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)
from repro.analysis.rules import ImportMap, RuleContext

__all__ = [
    "Project",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "build_project",
    "run_collective_flow_rules",
]

#: Inlined sequences are truncated here; beyond this length two arms
#: that still agree are overwhelmingly likely to agree forever.
MAX_SEQ = 200

#: Call-chain rendering depth in messages (the analysis itself is a
#: fixpoint and has no depth limit).
MAX_CHAIN = 6

#: Shared empty default for recursion-guard parameters (a constant, not
#: a call, so bugbear's call-in-default rule stays quiet).
_NO_QUALS: frozenset = frozenset()

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                             "BoundedSemaphore"})

#: ``subprocess`` module entry points that block until child exit.
_BLOCKING_SUBPROCESS = frozenset({"run", "call", "check_call",
                                  "check_output"})

#: Zero-timeout method names that block indefinitely on their receiver.
_BLOCKING_METHODS = frozenset({"recv", "recv_bytes", "accept",
                               "serve_forever", "communicate"})


# --------------------------------------------------------------------- #
# project model
# --------------------------------------------------------------------- #

@dataclass
class ModuleInfo:
    path: str
    module: str                    # dotted-name guess from the path
    tree: ast.Module
    lines: list[str]
    imports: ImportMap


@dataclass
class ClassInfo:
    qual: str                      # "module:ClassName"
    name: str
    module: str
    methods: dict[str, "FunctionInfo"] = field(default_factory=dict)
    #: attribute -> threading-lock-ness (assigned ``threading.Lock()`` …)
    lock_attrs: set[str] = field(default_factory=set)
    #: attribute -> ClassInfo.qual of the instance assigned to it
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    qual: str                      # "module:qualname"
    name: str
    module: str
    path: str
    node: ast.AST                  # FunctionDef / AsyncFunctionDef / Module
    cls: ClassInfo | None = None
    #: flow-event tree (see _Summarizer for the item alphabet)
    items: list = field(default_factory=list)
    #: (token, node) locks this function acquires directly
    acquires: list[tuple[str, ast.AST]] = field(default_factory=list)
    #: (outer, inner, node) direct nested-acquisition pairs
    lock_pairs: list[tuple[str, str, ast.AST]] = field(default_factory=list)
    #: (description, node, locks-held) direct blocking operations
    blocking: list[tuple[str, ast.AST, tuple[str, ...]]] = field(
        default_factory=list)
    #: (attr, node, under-class-lock, method-name) ``self.X`` writes
    writes: list[tuple[str, ast.AST, bool, str]] = field(
        default_factory=list)
    # -- fixpoint results ------------------------------------------------
    may_collect: bool = False
    collect_via: tuple[str, ...] = ()      # example call path to a collective
    may_block: dict = field(default_factory=dict)   # desc -> example path
    may_acquire: dict = field(default_factory=dict)  # token -> example path


@dataclass
class Project:
    modules: list[ModuleInfo] = field(default_factory=list)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: source lines per path (for finding snippets)
    lines: dict[str, list[str]] = field(default_factory=dict)

    # -- name resolution ------------------------------------------------ #
    def module_named(self, dotted: str) -> ModuleInfo | None:
        """Match a module by exact dotted name or dotted suffix, the same
        convention :mod:`repro.analysis.engine` uses for set-returning
        function signatures."""
        for m in self.modules:
            if m.module == dotted or m.module.endswith("." + dotted):
                return m
        return None

    def function_in(self, module: ModuleInfo | None,
                    name: str) -> FunctionInfo | None:
        if module is None:
            return None
        return self.functions.get(f"{module.module}:{name}")

    def class_named(self, module: ModuleInfo, name: str) -> ClassInfo | None:
        info = self.classes.get(f"{module.module}:{name}")
        if info is not None:
            return info
        member = module.imports.member_of(name)
        if member is not None:
            target = self.module_named(member[0])
            if target is not None:
                return self.classes.get(f"{target.module}:{member[1]}")
        return None


def _module_name(path: str) -> str:
    parts = path.replace("\\", "/").rstrip("/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return ".".join(p for p in parts if p not in ("", "."))


# --------------------------------------------------------------------- #
# build pass
# --------------------------------------------------------------------- #

def build_project(parsed: Iterable[tuple[str, str, ast.Module]]) -> Project:
    """Index functions, classes and attribute types for the whole scan.

    ``parsed`` yields ``(path, source, tree)`` triples (the engine's
    pass-1 output).  Summaries and fixpoints are computed here too, so
    the returned project is ready for the rule passes.
    """
    project = Project()
    for path, source, tree in parsed:
        module = ModuleInfo(
            path=path,
            module=_module_name(path),
            tree=tree,
            lines=source.splitlines(),
            imports=ImportMap(tree),
        )
        project.modules.append(module)
        project.lines[path] = module.lines
        _index_module(project, module)
    for module in project.modules:
        _infer_attr_types(project, module)
    for info in project.functions.values():
        _Summarizer(project, _module_of(project, info.path), info).run()
    _run_fixpoints(project)
    return project


def _module_of(project: Project, path: str) -> ModuleInfo:
    for m in project.modules:
        if m.path == path:
            return m
    raise KeyError(path)


def _index_module(project: Project, module: ModuleInfo) -> None:
    def add_function(node, qualname: str, cls: ClassInfo | None) -> None:
        info = FunctionInfo(
            qual=f"{module.module}:{qualname}",
            name=qualname.rpartition(".")[2],
            module=module.module,
            path=module.path,
            node=node,
            cls=cls,
        )
        project.functions[info.qual] = info
        if cls is not None:
            # only direct class-body defs reach here with cls set
            cls.methods[info.name] = info

    def visit(body: list[ast.stmt], prefix: str,
              cls: ClassInfo | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                add_function(node, qualname, cls)
                # nested defs get their own summaries, like v1
                visit(node.body, f"{qualname}.", None)
            elif isinstance(node, ast.ClassDef):
                sub_cls = ClassInfo(
                    qual=f"{module.module}:{prefix}{node.name}",
                    name=node.name,
                    module=module.module,
                )
                project.classes[sub_cls.qual] = sub_cls
                visit(node.body, f"{prefix}{node.name}.", sub_cls)

    visit(module.tree.body, "", None)
    # Module-level statements form a pseudo-function so import-time
    # collective flow is summarized like any other body.
    top = [s for s in module.tree.body
           if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef))]
    pseudo = ast.Module(body=top, type_ignores=[])
    add_function(pseudo, "<module>", None)


def _is_threading_lock_ctor(node: ast.expr, imports: ImportMap) -> bool:
    if not isinstance(node, ast.Call):
        return False
    f = node.func
    if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
        mod = imports.module_of(f.value.id) or f.value.id
        return mod == "threading" and f.attr in _LOCK_FACTORIES
    if isinstance(f, ast.Name):
        member = imports.member_of(f.id)
        return (member is not None and member[0] == "threading"
                and member[1] in _LOCK_FACTORIES)
    return False


def _ctor_class(project: Project, module: ModuleInfo,
                node: ast.expr) -> ClassInfo | None:
    """The project class instantiated by ``node``, if it is one."""
    if not isinstance(node, ast.Call):
        return None
    f = node.func
    if isinstance(f, ast.Name):
        return project.class_named(module, f.id)
    if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
        target = project.module_named(
            module.imports.module_of(f.value.id) or f.value.id)
        if target is not None:
            return project.classes.get(f"{target.module}:{f.attr}")
    return None


def _infer_attr_types(project: Project, module: ModuleInfo) -> None:
    """``self.x = ClassName(...)`` / ``self.x = threading.Lock()`` in any
    method types the attribute for the whole class."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        cls = project.classes.get(f"{module.module}:{node.name}")
        if cls is None:
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            for target in sub.targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                if _is_threading_lock_ctor(sub.value, module.imports):
                    cls.lock_attrs.add(target.attr)
                else:
                    ctor = _ctor_class(project, module, sub.value)
                    if ctor is not None:
                        cls.attr_types[target.attr] = ctor.qual


# --------------------------------------------------------------------- #
# call + lock + blocking classification
# --------------------------------------------------------------------- #

def _flock_call(node: ast.Call, imports: ImportMap) -> tuple[bool, bool]:
    """(is fcntl.flock, is exclusive/blocking: no LOCK_NB in the op)."""
    f = node.func
    named = False
    if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
        mod = imports.module_of(f.value.id) or f.value.id
        named = mod == "fcntl" and f.attr == "flock"
    elif isinstance(f, ast.Name):
        member = imports.member_of(f.id)
        named = member is not None and member == ("fcntl", "flock")
    if not named:
        return False, False
    op_text = " ".join(ast.unparse(a) for a in node.args[1:])
    return True, "LOCK_NB" not in op_text


class _Resolver:
    """Resolve a call expression to a project function, or ``None``."""

    def __init__(self, project: Project, module: ModuleInfo,
                 info: FunctionInfo) -> None:
        self.project = project
        self.module = module
        self.info = info
        #: local variable -> ClassInfo.qual, from `x = ClassName(...)`
        self.local_types: dict[str, str] = {}
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                ctor = _ctor_class(project, module, node.value)
                if ctor is not None:
                    self.local_types[node.targets[0].id] = ctor.qual

    def _class_of_expr(self, node: ast.expr) -> ClassInfo | None:
        if isinstance(node, ast.Name):
            if node.id == "self" and self.info.cls is not None:
                return self.info.cls
            qual = self.local_types.get(node.id)
            if qual is not None:
                return self.project.classes.get(qual)
            return None
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self" and self.info.cls is not None):
            qual = self.info.cls.attr_types.get(node.attr)
            if qual is not None:
                return self.project.classes.get(qual)
        return None

    def resolve(self, call: ast.Call) -> FunctionInfo | None:
        f = call.func
        if isinstance(f, ast.Name):
            # innermost enclosing scope first: mod:a.b.<name>, mod:a.<name>…
            prefix = self.info.qual.partition(":")[2]
            while prefix:
                prefix = prefix.rpartition(".")[0]
                scoped = self.project.functions.get(
                    f"{self.module.module}:{prefix}.{f.id}" if prefix
                    else f"{self.module.module}:{f.id}")
                if scoped is not None:
                    return scoped
                if not prefix:
                    break
            local = self.project.function_in(self.module, f.id)
            if local is not None:
                return local
            member = self.module.imports.member_of(f.id)
            if member is not None:
                return self.project.function_in(
                    self.project.module_named(member[0]), member[1])
            return None
        if isinstance(f, ast.Attribute):
            owner = self._class_of_expr(f.value)
            if owner is not None:
                method = owner.methods.get(f.attr)
                if method is not None:
                    return method
            if isinstance(f.value, ast.Name):
                target = self.project.module_named(
                    self.module.imports.module_of(f.value.id) or f.value.id)
                return self.project.function_in(target, f.attr)
        return None

    # -- lock tokens ---------------------------------------------------- #
    def lock_token(self, expr: ast.expr) -> str | None:
        """A stable cross-function identity for a lock-like expression.

        ``self.X`` where X is a known lock attribute (or merely *named*
        like one) is qualified by the owning class; a bare name by its
        module; any ``with f(...)`` whose callee reaches ``fcntl.flock``
        collapses to the single token ``"flock"`` — the sidecar-file
        pattern is one global discipline, not a per-path lock.
        """
        if isinstance(expr, ast.Call):
            is_flock, _ = _flock_call(expr, self.module.imports)
            if is_flock:
                return "flock"
            callee = self.resolve(expr)
            if callee is not None and _acquires_flock(callee):
                return "flock"
            return None
        text = ast.unparse(expr) if isinstance(
            expr, (ast.Name, ast.Attribute)) else ""
        if not text:
            return None
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and self.info.cls is not None):
            if (expr.attr in self.info.cls.lock_attrs
                    or "lock" in expr.attr.lower()):
                return f"{self.info.cls.qual}.{expr.attr}"
            return None
        if "lock" in text.lower():
            return f"{self.module.module}:{text}"
        return None

    # -- blocking calls ------------------------------------------------- #
    def blocking_desc(self, call: ast.Call) -> str | None:
        f = call.func
        has_timeout = any(kw.arg == "timeout" for kw in call.keywords)
        if isinstance(f, ast.Attribute):
            base = f.value
            mod = ""
            if isinstance(base, ast.Name):
                mod = self.module.imports.module_of(base.id) or base.id
            if f.attr == "sleep" and mod == "time":
                return "time.sleep"
            if mod == "subprocess" and f.attr in _BLOCKING_SUBPROCESS:
                return f"subprocess.{f.attr}"
            if f.attr == "wait" and not call.args and not call.keywords:
                return f"{ast.unparse(base)}.wait() with no timeout"
            if f.attr == "join" and not call.args and not call.keywords:
                return f"{ast.unparse(base)}.join() with no timeout"
            if f.attr in _BLOCKING_METHODS and not has_timeout:
                return f"{ast.unparse(base)}.{f.attr}()"
            if f.attr == "urlopen" and not has_timeout:
                return "urlopen() with no timeout"
        elif isinstance(f, ast.Name):
            member = self.module.imports.member_of(f.id)
            if member == ("time", "sleep"):
                return "time.sleep"
            if member is not None and member[0] == "subprocess" \
                    and member[1] in _BLOCKING_SUBPROCESS:
                return f"subprocess.{member[1]}"
            if member is not None and member[1] == "urlopen" \
                    and not has_timeout:
                return "urlopen() with no timeout"
        is_flock, exclusive = _flock_call(call, self.module.imports)
        if is_flock and exclusive:
            return "fcntl.flock(LOCK_EX)"
        return None


def _acquires_flock(info: FunctionInfo) -> bool:
    """Does this function *directly* call blocking ``fcntl.flock``?

    Used while resolving ``with helper(...):`` context managers before
    summaries exist, so it inspects the raw AST.
    """
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Attribute) and f.attr == "flock":
                return True
            if isinstance(f, ast.Name) and f.id == "flock":
                return True
    return False


# --------------------------------------------------------------------- #
# per-function summaries
# --------------------------------------------------------------------- #
#
# Item alphabet for FunctionInfo.items (a tree mirroring control flow):
#   ("coll", verb, tag, node, in_handler, locks)
#   ("call", qual|None, node, in_handler, locks)
#   ("if",   node, mentions_rank, then_items, else_items)
#   ("loop", body_items)
#   ("handler", body_items)            # except-handler body
#
# `locks` is the tuple of lock tokens held at the event, outermost
# first.  with/try bodies are flattened inline.

class _Summarizer:
    def __init__(self, project: Project, module: ModuleInfo,
                 info: FunctionInfo) -> None:
        self.project = project
        self.module = module
        self.info = info
        self.resolver = _Resolver(project, module, info)

    def run(self) -> None:
        body = getattr(self.info.node, "body", [])
        self.info.items = self._stmts(body, (), in_handler=False)

    # ------------------------------------------------------------------ #
    def _record_acquire(self, token: str, locks: tuple[str, ...],
                        node: ast.AST) -> None:
        self.info.acquires.append((token, node))
        for outer in locks:
            if outer != token:
                self.info.lock_pairs.append((outer, token, node))

    def _leaf(self, stmt: ast.stmt, locks: tuple[str, ...],
              in_handler: bool) -> list:
        """Collect events from a leaf statement's expression tree."""
        out: list = []
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call):
                continue
            coll = _collective_of(sub)
            if coll is not None:
                out.append(("coll", coll[0], coll[1], sub, in_handler,
                            locks))
                continue
            desc = self.resolver.blocking_desc(sub)
            if desc is not None:
                self.info.blocking.append((desc, sub, locks))
            is_flock, exclusive = _flock_call(sub, self.module.imports)
            if is_flock and exclusive:
                self._record_acquire("flock", locks, sub)
                continue
            if isinstance(sub.func, ast.Attribute) \
                    and sub.func.attr == "acquire":
                token = self.resolver.lock_token(sub.func.value)
                if token is not None:
                    self._record_acquire(token, locks, sub)
                    continue
            callee = self.resolver.resolve(sub)
            out.append(("call",
                        callee.qual if callee is not None else None,
                        sub, in_handler, locks))
        self._record_writes(stmt, locks)
        return out

    def _record_writes(self, stmt: ast.stmt, locks: tuple[str, ...]) -> None:
        if self.info.cls is None:
            return
        class_locks = {f"{self.info.cls.qual}.{a}"
                       for a in self.info.cls.lock_attrs}
        under = bool(class_locks.intersection(locks))

        def self_attr(target: ast.expr) -> str | None:
            # self.X, self.X[...], del self.X — all mutate attribute X
            node = target
            if isinstance(node, ast.Subscript):
                node = node.value
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                return node.attr
            return None

        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = stmt.targets
        for target in targets:
            attr = self_attr(target)
            if attr is not None:
                self.info.writes.append((attr, stmt, under, self.info.name))

    # ------------------------------------------------------------------ #
    def _stmts(self, body: list[ast.stmt], locks: tuple[str, ...],
               in_handler: bool) -> list:
        items: list = []
        i = 0
        while i < len(body):
            stmt = body[i]
            # `x.acquire()` as a bare statement opens a held region that
            # runs to the matching `x.release()` in this list (or its end).
            token = self._acquire_stmt_token(stmt)
            if token is not None:
                self._record_acquire(token, locks, stmt)
                region: list[ast.stmt] = []
                j = i + 1
                while j < len(body) and not self._is_release(body[j], token):
                    region.append(body[j])
                    j += 1
                items.extend(self._stmts(region, locks + (token,),
                                         in_handler))
                i = j + 1
                continue
            items.extend(self._stmt(stmt, locks, in_handler))
            i += 1
        return items

    def _acquire_stmt_token(self, stmt: ast.stmt) -> str | None:
        if (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "acquire"):
            return self.resolver.lock_token(stmt.value.func.value)
        return None

    def _is_release(self, stmt: ast.stmt, token: str) -> bool:
        return (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "release"
                and self.resolver.lock_token(stmt.value.func.value) == token)

    def _stmt(self, stmt: ast.stmt, locks: tuple[str, ...],
              in_handler: bool) -> list:
        if isinstance(stmt, ast.If):
            then_items = self._stmts(stmt.body, locks, in_handler)
            else_items = self._stmts(stmt.orelse, locks, in_handler)
            return [("if", stmt, _mentions_rank(stmt.test),
                     then_items, else_items)]
        if isinstance(stmt, ast.Try):
            items = self._stmts(stmt.body, locks, in_handler)
            for handler in stmt.handlers:
                items.append(("handler",
                              self._stmts(handler.body, locks,
                                          in_handler=True)))
            items.extend(self._stmts(stmt.orelse, locks, in_handler))
            items.extend(self._stmts(stmt.finalbody, locks, in_handler))
            return items
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            body = self._stmts(stmt.body, locks, in_handler)
            body.extend(self._stmts(stmt.orelse, locks, in_handler))
            # leaf events of the test/iter expressions still count once
            head = self._leaf_head(stmt, locks, in_handler)
            return head + ([("loop", body)] if body else [])
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = locks
            head: list = []
            for item in stmt.items:
                token = self.resolver.lock_token(item.context_expr)
                if token is not None:
                    self._record_acquire(token, inner, stmt)
                    # entering the lock still *calls* the context manager
                    # (e.g. a flock helper): record the call under the
                    # locks held while waiting, so may_block propagates.
                    if isinstance(item.context_expr, ast.Call):
                        callee = self.resolver.resolve(item.context_expr)
                        if callee is not None:
                            head.append((
                                "call", callee.qual, item.context_expr,
                                in_handler, inner))
                    inner = inner + (token,)
                else:
                    # non-lock context manager: still scan its expression
                    head.extend(self._scan_expr(item.context_expr, inner,
                                                in_handler))
            return head + self._stmts(stmt.body, inner, in_handler)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return []   # nested definitions get their own summaries
        return self._leaf(stmt, locks, in_handler)

    def _leaf_head(self, stmt, locks: tuple[str, ...],
                   in_handler: bool) -> list:
        expr = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) \
            else stmt.test
        return self._scan_expr(expr, locks, in_handler)

    def _scan_expr(self, expr: ast.expr, locks: tuple[str, ...],
                   in_handler: bool) -> list:
        fake = ast.Expr(value=expr)
        ast.copy_location(fake, expr)
        return self._leaf(fake, locks, in_handler)


# --------------------------------------------------------------------- #
# fixpoints
# --------------------------------------------------------------------- #

def _iter_calls(items: list):
    for item in items:
        kind = item[0]
        if kind == "call":
            yield item
        elif kind == "if":
            yield from _iter_calls(item[3])
            yield from _iter_calls(item[4])
        elif kind in ("loop", "handler"):
            yield from _iter_calls(item[1])


def _iter_colls(items: list):
    for item in items:
        kind = item[0]
        if kind == "coll":
            yield item
        elif kind == "if":
            yield from _iter_colls(item[3])
            yield from _iter_colls(item[4])
        elif kind in ("loop", "handler"):
            yield from _iter_colls(item[1])


def _run_fixpoints(project: Project) -> None:
    funcs = project.functions
    for info in funcs.values():
        if any(True for _ in _iter_colls(info.items)):
            info.may_collect = True
            info.collect_via = ()
        for desc, _node, _locks in info.blocking:
            info.may_block.setdefault(desc, ())
        for token, _node in info.acquires:
            info.may_acquire.setdefault(token, ())

    changed = True
    while changed:
        changed = False
        for info in funcs.values():
            for item in _iter_calls(info.items):
                callee = funcs.get(item[1]) if item[1] else None
                if callee is None or callee is info:
                    continue
                if callee.may_collect and not info.may_collect:
                    info.may_collect = True
                    info.collect_via = _extend_path(
                        callee.qual, callee.collect_via)
                    changed = True
                for desc, path in callee.may_block.items():
                    if desc not in info.may_block:
                        info.may_block[desc] = _extend_path(
                            callee.qual, path)
                        changed = True
                for token, path in callee.may_acquire.items():
                    if token not in info.may_acquire:
                        info.may_acquire[token] = _extend_path(
                            callee.qual, path)
                        changed = True


def _extend_path(qual: str, path: tuple[str, ...]) -> tuple[str, ...]:
    return ((qual,) + path)[:MAX_CHAIN]


def _render_chain(qual_path: tuple[str, ...]) -> str:
    if not qual_path:
        return ""
    names = [q.rpartition(":")[2] for q in qual_path]
    return " -> ".join(names)


# --------------------------------------------------------------------- #
# effective sequences (inlined callee summaries)
# --------------------------------------------------------------------- #

class _SeqExpander:
    """Fold a function's item tree into a flat collective sequence with
    callee summaries inlined, the comparison domain of R003 v2."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._memo: dict[str, tuple] = {}

    def of_function(self, qual: str,
                    stack: frozenset = _NO_QUALS) -> tuple:
        if qual in stack:
            return (("?rec", "?"),)
        if qual in self._memo:
            return self._memo[qual]
        info = self.project.functions.get(qual)
        if info is None:
            return ()
        seq = self.expand(info.items, stack | {qual})
        if not stack:              # only cache recursion-independent results
            self._memo[qual] = seq
        return seq

    def expand(self, items: list, stack: frozenset) -> tuple:
        out: list = []
        for item in items:
            kind = item[0]
            if kind == "coll":
                out.append((item[1], item[2]))
            elif kind == "call":
                if item[1]:
                    out.extend(self.of_function(item[1], stack))
            elif kind == "if":
                then_seq = self.expand(item[3], stack)
                else_seq = self.expand(item[4], stack)
                if then_seq == else_seq:
                    out.extend(then_seq)
                else:
                    out.append(("?branch", "?"))
            elif kind == "loop":
                if self.expand(item[1], stack):
                    out.append(("?loop", "?"))
            # handlers contribute nothing to the nominal sequence
            if len(out) > MAX_SEQ:
                return tuple(out[:MAX_SEQ]) + (("?trunc", "?"),)
        return tuple(out)


# --------------------------------------------------------------------- #
# rules: R003 (interprocedural) + R006
# --------------------------------------------------------------------- #

def run_collective_flow_rules(project: Project) -> list[Finding]:
    """R003 across call chains and branch arms; R006 collective-under-
    lock — both directly and through resolved calls."""
    findings: list[Finding] = []
    expander = _SeqExpander(project)
    for qual in sorted(project.functions):
        info = project.functions[qual]
        ctx = RuleContext(
            tree=None, path=info.path,
            source_lines=project.lines.get(info.path, []))
        _emit(project, info, info.items, ctx, expander)
        findings.extend(ctx.findings)
    return findings


def _emit(project: Project, info: FunctionInfo, items: list,
          ctx: RuleContext, expander: _SeqExpander) -> None:
    for item in items:
        kind = item[0]
        if kind == "coll":
            _verb, _tag, node, in_handler, locks = item[1], item[2], \
                item[3], item[4], item[5]
            if in_handler:
                ctx.add(
                    "R003", SEVERITY_ERROR, node,
                    f"collective {item[1]}(tag={item[2]!r}) inside an "
                    "except handler: exception delivery is rank-local, "
                    "so only some ranks reach this collective and the "
                    "others deadlock",
                    "move the collective out of the handler, or agree on "
                    "the error first (comm.agree) so every rank takes "
                    "the same path",
                )
            if locks:
                ctx.add(
                    "R006", SEVERITY_ERROR, node,
                    f"collective {item[1]}(tag={item[2]!r}) issued while "
                    f"holding lock {locks[-1]}: if any peer rank needs "
                    "that lock to reach its matching call, the mesh "
                    "deadlocks with the lock held",
                    "release the lock before the collective, or restrict "
                    "the lock to rank-local state",
                )
        elif kind == "call":
            qual, node, in_handler, locks = item[1], item[2], item[3], \
                item[4]
            callee = project.functions.get(qual) if qual else None
            if callee is None:
                continue
            if in_handler and callee.may_collect:
                chain = _render_chain((callee.qual,) + callee.collect_via)
                ctx.add(
                    "R003", SEVERITY_ERROR, node,
                    "call chain reaches a collective from inside an "
                    f"except handler (via {chain}): exception delivery "
                    "is rank-local, so only some ranks issue it",
                    "agree on the error first (comm.agree) so every rank "
                    "takes the same path",
                )
            if locks and callee.may_collect:
                chain = _render_chain((callee.qual,) + callee.collect_via)
                ctx.add(
                    "R006", SEVERITY_ERROR, node,
                    f"call chain reaches a collective while holding lock "
                    f"{locks[-1]} (via {chain}): if any peer rank needs "
                    "that lock to reach its matching call, the mesh "
                    "deadlocks with the lock held",
                    "release the lock before calling into collective-"
                    "issuing code",
                )
        elif kind == "if":
            node, mentions_rank, then_items, else_items = \
                item[1], item[2], item[3], item[4]
            if mentions_rank:
                then_seq = expander.expand(then_items,
                                           frozenset({info.qual}))
                else_seq = expander.expand(else_items,
                                           frozenset({info.qual}))
                if then_seq != else_seq:
                    arms = (f"then={list(then_seq) or '[]'}, "
                            f"else={list(else_seq) or '[]'}")
                    ctx.add(
                        "R003", SEVERITY_ERROR, node,
                        "rank-dependent branch issues different "
                        f"collective sequences ({arms}): ranks taking "
                        "different arms block in mismatched collectives",
                        "hoist the collective (or the call that issues "
                        "it) out of the branch, or make every rank take "
                        "the same collective path",
                    )
            _emit(project, info, then_items, ctx, expander)
            _emit(project, info, else_items, ctx, expander)
        elif kind in ("loop", "handler"):
            _emit(project, info, item[1], ctx, expander)
