"""SARIF 2.1.0 export for replicheck findings.

GitHub code scanning ingests SARIF; emitting it lets CI annotate PR
diffs with findings instead of burying them in a job log.  Only the
subset of the format code scanning actually reads is produced: one run,
one tool driver with the rule catalog, one result per finding with a
physical location and the replicheck fingerprint as a partial
fingerprint (so code scanning tracks findings across commits the same
way the committed baseline does).

Suppressed and baselined findings are included with a populated
``suppressions`` array — code scanning then shows them as closed
instead of flapping between present/absent as pragmas move.
"""

from __future__ import annotations

from repro.analysis.findings import Finding

__all__ = ["to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {"error": "error", "warning": "warning"}


def _result(finding: Finding, suppressed_kind: str | None) -> dict:
    result: dict = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {
            "text": finding.message + (
                f" (hint: {finding.hint})" if finding.hint else ""),
        },
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                },
                "region": {
                    "startLine": max(finding.line, 1),
                    "startColumn": finding.col + 1,
                },
            },
        }],
        "partialFingerprints": {
            "replicheck/v1": finding.fingerprint,
        },
    }
    if finding.snippet:
        result["locations"][0]["physicalLocation"]["region"]["snippet"] = {
            "text": finding.snippet,
        }
    if suppressed_kind is not None:
        result["suppressions"] = [{
            "kind": "inSource" if suppressed_kind == "suppressed"
            else "external",
        }]
    return result


def to_sarif(report, rules: dict[str, str],
             tool_version: str = "2.0") -> dict:
    """Render an :class:`~repro.analysis.engine.AnalysisReport` as a
    SARIF 2.1.0 log object (a plain dict ready for ``json.dump``)."""
    results = [_result(f, None) for f in report.findings]
    results.extend(_result(f, "suppressed") for f in report.suppressed)
    results.extend(_result(f, "baselined") for f in report.baselined)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "replicheck",
                    "informationUri":
                        "https://example.invalid/repro/docs/DETERMINISM",
                    "version": tool_version,
                    "rules": [
                        {
                            "id": rule_id,
                            "name": rule_id,
                            "shortDescription": {"text": description},
                        }
                        for rule_id, description in sorted(rules.items())
                    ],
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
