"""Concurrency rule pack (R007–R011) for the threaded service layer.

The serve/supervise/obs layers run a daemon scheduler loop, HTTP
handler threads, a monitor thread, flock sidecar files and SIGTERM
handlers — hazard classes the replica rules never looked at.  All five
rules consume the project model built by
:mod:`repro.analysis.callgraph`, so "blocking" and "acquires lock X"
propagate through resolved call chains:

* **R007** — a mutable attribute of a lock-owning class is written
  under the lock in one method and without it in another.  Ownership is
  inferred RacerD-style: writing ``self.x`` inside ``with self._lock``
  declares the lock owns ``x``; every other write must hold it too
  (methods only ever *called* with the lock held are fine).
* **R008** — two functions acquire the same pair of locks in opposite
  orders (including through calls): the classic ABBA in-process
  deadlock.  The flock sidecar discipline counts as one global lock.
* **R009** — a blocking operation (``Popen.wait``, ``recv`` with no
  timeout, ``time.sleep``, blocking ``fcntl.flock`` …) runs while a
  lock is held, directly or via a call chain.  Every other thread
  contending for that lock now waits on child processes / peers.
* **R010** — a durable artifact (manifest, baseline, checkpoint,
  diagnosis) is written without the tmp+fsync+rename discipline
  ``search/checkpoint.py`` established; a crash mid-write leaves a
  torn file that poisons recovery.
* **R011** — a signal handler (or something it calls) does
  non-async-signal-safe work: logging/printing, file writes, lock
  acquisition, blocking calls.  Handlers interrupt arbitrary frames —
  re-entering a held lock self-deadlocks.  Safe handlers set a flag or
  ``Event`` and let the main loop act.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import (
    FunctionInfo,
    Project,
    _iter_calls,
    _render_chain,
    _Resolver,
    _module_of,
    _NO_QUALS,
)
from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)
from repro.analysis.rules import ImportMap, RuleContext

__all__ = ["run_concurrency_rules"]

#: Attribute writes in these methods are object construction, not races.
_CTOR_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

#: Durable-artifact name tokens for R010; matched against the write
#: target expression and the enclosing function's qualified name.
_DURABLE_TOKENS = ("manifest", "baseline", "checkpoint", "diagnosis")


def run_concurrency_rules(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    findings.extend(_rule_r007(project))
    findings.extend(_rule_r008(project))
    findings.extend(_rule_r009(project))
    findings.extend(_rule_r010(project))
    findings.extend(_rule_r011(project))
    return findings


def _ctx_for(project: Project, path: str) -> RuleContext:
    return RuleContext(tree=None, path=path,
                       source_lines=project.lines.get(path, []))


# --------------------------------------------------------------------- #
# R007 — unprotected write to a lock-owned attribute
# --------------------------------------------------------------------- #

def _held_methods(project: Project, cls_methods: dict[str, FunctionInfo],
                  class_tokens: set[str]) -> tuple[set[str], set[str]]:
    """(held, sometimes-held) method names for one lock-owning class.

    *held* is a greatest fixpoint: start by assuming every method with
    at least one resolved call site is held, then demote any method
    with a call site that neither holds the lock nor sits in a
    (still-)held caller.  *sometimes-held* methods have at least one
    lock-holding call site — their writes still declare the attribute
    lock-owned (RacerD-style), even though the method itself is not
    safe to call unlocked.
    """
    quals = {m.qual: name for name, m in cls_methods.items()}
    sites: dict[str, list[tuple[str, tuple[str, ...]]]] = {
        q: [] for q in quals}
    for info in project.functions.values():
        for item in _iter_calls(info.items):
            if item[1] in sites:
                sites[item[1]].append((info.qual, item[4]))

    held = {q for q in quals if sites[q]}
    changed = True
    while changed:
        changed = False
        for q in sorted(held):
            for caller, locks in sites[q]:
                if class_tokens.intersection(locks):
                    continue
                if caller in held and caller != q:
                    continue
                held.discard(q)
                changed = True
                break
    sometimes = {q for q in quals
                 if any(class_tokens.intersection(locks)
                        for _caller, locks in sites[q])}
    return ({quals[q] for q in held},
            {quals[q] for q in sometimes | held})


def _rule_r007(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for cls_qual in sorted(project.classes):
        cls = project.classes[cls_qual]
        if not cls.lock_attrs:
            continue
        class_tokens = {f"{cls.qual}.{a}" for a in cls.lock_attrs}
        held, sometimes_held = _held_methods(project, cls.methods,
                                             class_tokens)
        protected: dict[str, str] = {}   # attr -> method that locks it
        for name, method in cls.methods.items():
            if name in _CTOR_METHODS:
                continue
            for attr, _node, under, _mname in method.writes:
                if under or name in sometimes_held:
                    protected.setdefault(attr, name)
        if not protected:
            continue
        for name, method in sorted(cls.methods.items()):
            if name in _CTOR_METHODS or name in held:
                continue
            ctx = _ctx_for(project, method.path)
            for attr, node, under, _mname in method.writes:
                if under or attr not in protected:
                    continue
                lock = sorted(cls.lock_attrs)[0]
                ctx.add(
                    "R007", SEVERITY_WARNING, node,
                    f"attribute self.{attr} of {cls.name} is written "
                    f"under self.{lock} in {protected[attr]}() but "
                    f"written here without holding it — a concurrent "
                    "locked reader/writer races this assignment",
                    f"wrap the write in `with self.{lock}:` (or document "
                    "single-thread ownership with a suppression)",
                )
            findings.extend(ctx.findings)
    return findings


# --------------------------------------------------------------------- #
# R008 — inconsistent lock-acquisition order
# --------------------------------------------------------------------- #

def _lock_pairs(project: Project,
                info: FunctionInfo) -> dict[tuple[str, str],
                                            tuple[ast.AST, str]]:
    """(outer, inner) -> (site, via-chain) pairs this function creates,
    directly or by calling something that acquires more locks."""
    pairs: dict[tuple[str, str], tuple[ast.AST, str]] = {}
    for outer, inner, node in info.lock_pairs:
        pairs.setdefault((outer, inner), (node, ""))
    for item in _iter_calls(info.items):
        qual, node, locks = item[1], item[2], item[4]
        callee = project.functions.get(qual) if qual else None
        if callee is None or not locks:
            continue
        for token, path in callee.may_acquire.items():
            for outer in locks:
                if outer != token:
                    chain = _render_chain((callee.qual,) + path)
                    pairs.setdefault((outer, token), (node, chain))
    return pairs


def _rule_r008(project: Project) -> list[Finding]:
    per_func: dict[str, dict] = {}
    order_sites: dict[tuple[str, str], list[str]] = {}
    for qual in sorted(project.functions):
        info = project.functions[qual]
        pairs = _lock_pairs(project, info)
        if pairs:
            per_func[qual] = pairs
            for pair in pairs:
                order_sites.setdefault(pair, []).append(qual)

    findings: list[Finding] = []
    for qual, pairs in per_func.items():
        info = project.functions[qual]
        ctx = _ctx_for(project, info.path)
        for (outer, inner), (node, chain) in sorted(
                pairs.items(), key=lambda kv: str(kv[0])):
            opposite = order_sites.get((inner, outer), [])
            others = [q for q in opposite if q != qual]
            if not others:
                continue
            other = _render_chain((others[0],))
            via = f" (via {chain})" if chain else ""
            ctx.add(
                "R008", SEVERITY_ERROR, node,
                f"lock order {outer} -> {inner}{via} is inverted by "
                f"{other}(), which acquires {inner} -> {outer}: two "
                "threads interleaving these paths deadlock",
                "pick one global acquisition order and release the "
                "first lock before taking the second elsewhere",
            )
        findings.extend(ctx.findings)
    return findings


# --------------------------------------------------------------------- #
# R009 — blocking while holding a lock
# --------------------------------------------------------------------- #

def _rule_r009(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for qual in sorted(project.functions):
        info = project.functions[qual]
        ctx = _ctx_for(project, info.path)
        seen: set[tuple[int, str]] = set()
        for desc, node, locks in info.blocking:
            if not locks or (id(node), desc) in seen:
                continue
            seen.add((id(node), desc))
            ctx.add(
                "R009", SEVERITY_WARNING, node,
                f"blocking operation {desc} while holding {locks[-1]}: "
                "every thread contending for that lock now waits on "
                "this call too",
                "move the blocking call outside the locked region, or "
                "bound it with a timeout",
            )
        for item in _iter_calls(info.items):
            call_qual, node, locks = item[1], item[2], item[4]
            callee = project.functions.get(call_qual) if call_qual else None
            if callee is None or not locks or not callee.may_block:
                continue
            desc = sorted(callee.may_block)[0]
            if (id(node), desc) in seen:
                continue
            seen.add((id(node), desc))
            chain = _render_chain(
                (callee.qual,) + callee.may_block[desc])
            ctx.add(
                "R009", SEVERITY_WARNING, node,
                f"call chain blocks on {desc} (via {chain}) while "
                f"holding {locks[-1]}: every thread contending for "
                "that lock now waits on this call too",
                "finish the blocking work outside the locked region, "
                "or bound it with a timeout",
            )
        findings.extend(ctx.findings)
    return findings


# --------------------------------------------------------------------- #
# R010 — non-atomic durable write
# --------------------------------------------------------------------- #

def _uses_atomic_replace(node: ast.AST, imports: ImportMap) -> bool:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        f = sub.func
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            mod = imports.module_of(f.value.id) or f.value.id
            if mod == "os" and f.attr in ("replace", "rename"):
                return True
        elif isinstance(f, ast.Name):
            member = imports.member_of(f.id)
            if member is not None and member[0] == "os" \
                    and member[1] in ("replace", "rename"):
                return True
    return False


def _write_target(call: ast.Call, imports: ImportMap) -> str | None:
    """The unparsed destination expression of a durable-write call."""
    f = call.func
    if isinstance(f, ast.Attribute) and f.attr in ("write_text",
                                                   "write_bytes"):
        return ast.unparse(f.value)
    if isinstance(f, ast.Attribute) and f.attr == "dump" \
            and isinstance(f.value, ast.Name) \
            and (imports.module_of(f.value.id) or f.value.id) == "json" \
            and len(call.args) >= 2:
        return ast.unparse(call.args[1])
    if isinstance(f, ast.Name) and f.id == "open" and call.args:
        mode = ""
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
            mode = str(call.args[1].value)
        for kw in call.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = str(kw.value.value)
        if any(c in mode for c in "wax"):
            return ast.unparse(call.args[0])
    return None


def _rule_r010(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for qual in sorted(project.functions):
        info = project.functions[qual]
        module = _module_of(project, info.path)
        body = getattr(info.node, "body", [])
        atomic = _uses_atomic_replace(info.node, module.imports)
        ctx = _ctx_for(project, info.path)
        for stmt in body:
            # nested defs are analyzed as their own entry
            for sub in _walk_shallow(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                target = _write_target(sub, module.imports)
                if target is None:
                    continue
                context_text = (target + " " + info.qual).lower()
                if "tmp" in target.lower():
                    continue
                token = next((t for t in _DURABLE_TOKENS
                              if t in context_text), None)
                if token is None or atomic:
                    continue
                ctx.add(
                    "R010", SEVERITY_WARNING, sub,
                    f"durable {token} file written in place ({target}): "
                    "a crash mid-write leaves a torn file that poisons "
                    "recovery",
                    "write a sibling .tmp, flush+fsync, then os.replace "
                    "(and fsync the directory) as search/checkpoint.py "
                    "does",
                )
        findings.extend(ctx.findings)
    return findings


# --------------------------------------------------------------------- #
# R011 — non-async-signal-safe signal handlers
# --------------------------------------------------------------------- #

def _walk_shallow(root: ast.AST):
    """ast.walk that does not descend into nested function bodies."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def _direct_unsafe(body_root: ast.AST, imports: ImportMap) -> str | None:
    """A human-readable reason this code is not async-signal-safe, or
    None.  Lock acquires and blocking calls are reported by the caller
    from the function summary; this covers I/O-ish work."""
    for node in _walk_shallow(body_root):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        if isinstance(f, ast.Name):
            if f.id == "print":
                return "print()"
            member = imports.member_of(f.id)
            if member is not None and member[0] == "subprocess":
                return f"subprocess.{member[1]}"
            if f.id == "open":
                return "open()"
        elif isinstance(f, ast.Attribute):
            base = f.value
            mod = ""
            if isinstance(base, ast.Name):
                mod = imports.module_of(base.id) or base.id
            if mod == "logging" or "logger" in ast.unparse(base).lower():
                return f"logging ({ast.unparse(f)})"
            if "log" in f.attr.lower() or f.attr == "print":
                return f"{ast.unparse(f)}()"
            if f.attr in ("write", "writelines", "flush") \
                    and "stderr" not in ast.unparse(base):
                return f"{ast.unparse(f)}()"
            if mod == "subprocess":
                return f"subprocess.{f.attr}"
            if mod == "os" and f.attr == "system":
                return "os.system"
    return None


def _function_unsafe(project: Project,
                     cache: dict[str, str | None],
                     qual: str,
                     stack: frozenset = _NO_QUALS) -> str | None:
    if qual in cache:
        return cache[qual]
    if qual in stack:
        return None
    info = project.functions.get(qual)
    if info is None:
        return None
    module = _module_of(project, info.path)
    reason = _direct_unsafe_body(info, module.imports)
    if reason is None:
        for item in _iter_calls(info.items):
            if not item[1]:
                continue
            sub = _function_unsafe(project, cache, item[1],
                                   stack | {qual})
            if sub is not None:
                callee = project.functions[item[1]]
                reason = f"{_render_chain((callee.qual,))} -> {sub}"
                break
    if not stack:
        cache[qual] = reason
    return reason


def _direct_unsafe_body(info: FunctionInfo,
                        imports: ImportMap) -> str | None:
    if info.acquires:
        return f"acquires lock {info.acquires[0][0]}"
    if info.blocking:
        return f"blocks on {info.blocking[0][0]}"
    body = getattr(info.node, "body", [])
    for stmt in body:
        reason = _direct_unsafe(stmt, imports)
        if reason is not None:
            return reason
    return None


def _signal_register_calls(module_tree: ast.Module, imports: ImportMap):
    for node in ast.walk(module_tree):
        if not isinstance(node, ast.Call) or len(node.args) < 2:
            continue
        f = node.func
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            if (imports.module_of(f.value.id) or f.value.id) == "signal" \
                    and f.attr == "signal":
                yield node
        elif isinstance(f, ast.Name):
            member = imports.member_of(f.id)
            if member == ("signal", "signal"):
                yield node


def _enclosing_function(project: Project, module,
                        call: ast.Call) -> FunctionInfo:
    """The innermost indexed function containing ``call`` (falls back to
    the module pseudo-function)."""
    best: FunctionInfo | None = None
    for info in project.functions.values():
        if info.path != module.path or info.name == "<module>":
            continue
        for sub in ast.walk(info.node):
            if sub is call:
                if best is None or len(info.qual) > len(best.qual):
                    best = info
                break
    if best is not None:
        return best
    return project.functions[f"{module.module}:<module>"]


def _rule_r011(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    cache: dict[str, str | None] = {}
    for module in project.modules:
        sig_calls = list(_signal_register_calls(module.tree,
                                                module.imports))
        if not sig_calls:
            continue
        ctx = RuleContext(tree=None, path=module.path,
                          source_lines=module.lines)
        for call in sig_calls:
            handler = call.args[1]
            owner = _enclosing_function(project, module, call)
            resolver = _Resolver(project, module, owner)
            reason: str | None = None
            name = ast.unparse(handler)
            if isinstance(handler, ast.Lambda):
                reason = _lambda_unsafe(project, cache, module, owner,
                                        handler)
                name = "lambda handler"
            else:
                target = _resolve_handler(project, module, resolver,
                                          handler)
                if target is not None:
                    reason = _function_unsafe(project, cache, target.qual)
                    name = f"handler {target.name}()"
            if reason is None:
                continue
            ctx.add(
                "R011", SEVERITY_ERROR, call,
                f"{name} does non-async-signal-safe work: {reason}. "
                "Signal handlers interrupt arbitrary frames — logging, "
                "I/O or lock use here can self-deadlock or corrupt state",
                "set a flag or threading.Event in the handler and do the "
                "real work in the main loop (see engines/cancel.py)",
            )
        findings.extend(ctx.findings)
    return findings


def _resolve_handler(project: Project, module, resolver: _Resolver,
                     handler: ast.expr) -> FunctionInfo | None:
    fake = ast.Call(func=handler, args=[], keywords=[])
    ast.copy_location(fake, handler)
    return resolver.resolve(fake)


def _lambda_unsafe(project: Project, cache, module, owner: FunctionInfo,
                   handler: ast.Lambda) -> str | None:
    reason = _direct_unsafe(handler.body, module.imports)
    if reason is not None:
        return reason
    resolver = _Resolver(project, module, owner)
    for node in ast.walk(handler.body):
        if not isinstance(node, ast.Call):
            continue
        callee = resolver.resolve(node)
        if callee is None:
            continue
        sub = _function_unsafe(project, cache, callee.qual)
        if sub is not None:
            return f"{callee.name}() -> {sub}"
    return None
