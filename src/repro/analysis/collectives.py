"""R003 — collective calls under rank- or exception-dependent branching.

The decentralized engine's correctness contract is that *every* rank
issues the same collective sequence with the same tags (PAPER.md:
replicas run in lockstep and meet at each ``MPI_Allreduce``).  A
collective guarded by ``if comm.rank == 0`` (or reached only from an
``except`` handler) breaks that contract: some ranks enter the
collective and block forever while the others sailed past — the classic
MPI deadlock that only reproduces at scale.

The rule works MPI-Checker-style, on a per-function *collective-sequence
summary*: each statement list is summarised to the ordered list of
``(verb, tag)`` collective events it issues, branches are summarised per
arm, and two checks fire findings:

* an ``if``/``else`` whose *test mentions a rank* and whose arms issue
  different collective sequences;
* any collective issued from inside an ``except`` handler (exception
  delivery is inherently rank-local).

Branches that differ but are *not* rank-dependent get no finding — data-
dependent branching is how iterative optimizers legitimately work, and
both replicas evaluate the same data the same way.  The arms still
collapse into a single opaque marker so sequences downstream stay
comparable.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import SEVERITY_ERROR, Finding
from repro.analysis.rules import RuleContext

__all__ = ["run_collective_rule", "COLLECTIVE_VERBS"]

#: Method names treated as collectives when called on a comm-like object.
COLLECTIVE_VERBS = frozenset({
    "allreduce", "bcast", "barrier", "agree", "shrink", "scatter",
    "allgather", "alltoall", "reduce", "gather",
})

# These verbs are common English / stdlib names (functools.reduce,
# itertools accumulate patterns, list gathering helpers) — only treat
# them as collectives when the receiver *looks like* a communicator.
_AMBIGUOUS_VERBS = frozenset({"reduce", "gather"})

_RANK_TOKENS = ("rank", "world_rank")


def _receiver_is_comm(node: ast.Attribute) -> bool:
    base = node.value
    name = ""
    if isinstance(base, ast.Name):
        name = base.id
    elif isinstance(base, ast.Attribute):
        name = base.attr
    low = name.lower()
    return "comm" in low or low in ("inner", "_inner")


def _collective_of(node: ast.expr) -> tuple[str, str] | None:
    """``(verb, tag)`` if this expression is a collective call."""
    if not isinstance(node, ast.Call):
        return None
    f = node.func
    if not isinstance(f, ast.Attribute) or f.attr not in COLLECTIVE_VERBS:
        return None
    if f.attr in _AMBIGUOUS_VERBS and not _receiver_is_comm(f):
        return None
    if f.attr not in _AMBIGUOUS_VERBS and not (
        _receiver_is_comm(f) or isinstance(f.value, (ast.Name, ast.Attribute))
    ):
        return None
    tag = "?"
    for kw in node.keywords:
        if kw.arg == "tag":
            if isinstance(kw.value, ast.Constant) and isinstance(
                kw.value.value, str
            ):
                tag = kw.value.value
            elif isinstance(kw.value, (ast.Name, ast.Attribute)):
                tag = ast.unparse(kw.value)
    return (f.attr, tag)


def _mentions_rank(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and any(
            t in node.attr.lower() for t in _RANK_TOKENS
        ):
            return True
        if isinstance(node, ast.Name) and any(
            t in node.id.lower() for t in _RANK_TOKENS
        ):
            return True
    return False


class _Summarizer:
    """Summarise statement lists to ordered collective-event sequences,
    emitting findings for divergent rank-guarded arms and collectives in
    exception handlers along the way."""

    def __init__(self, ctx: RuleContext) -> None:
        self.ctx = ctx

    def summarize(self, body: list[ast.stmt],
                  in_handler: bool = False) -> list[tuple[str, str]]:
        seq: list[tuple[str, str]] = []
        for stmt in body:
            seq.extend(self._stmt(stmt, in_handler))
        return seq

    # ------------------------------------------------------------------ #
    def _calls_in(self, node: ast.AST,
                  in_handler: bool) -> list[tuple[str, str]]:
        out: list[tuple[str, str]] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                c = _collective_of(sub)
                if c is not None:
                    out.append(c)
                    if in_handler:
                        self.ctx.add(
                            "R003", SEVERITY_ERROR, sub,
                            f"collective {c[0]}(tag={c[1]!r}) inside an "
                            "except handler: exception delivery is rank-"
                            "local, so only some ranks reach this "
                            "collective and the others deadlock",
                            "move the collective out of the handler, or "
                            "agree on the error first (comm.agree) so "
                            "every rank takes the same path",
                        )
        return out

    def _stmt(self, stmt: ast.stmt,
              in_handler: bool) -> list[tuple[str, str]]:
        if isinstance(stmt, ast.If):
            then_seq = self.summarize(stmt.body, in_handler)
            else_seq = self.summarize(stmt.orelse, in_handler)
            if then_seq != else_seq:
                if _mentions_rank(stmt.test):
                    arms = (f"then={then_seq or '[]'}, "
                            f"else={else_seq or '[]'}")
                    self.ctx.add(
                        "R003", SEVERITY_ERROR, stmt,
                        "rank-dependent branch issues different "
                        f"collective sequences ({arms}): ranks taking "
                        "different arms block in mismatched collectives",
                        "hoist the collective out of the branch, or make "
                        "every rank call it (collectives already "
                        "distinguish roles via root=)",
                    )
                # Data-dependent divergence: collapse to an opaque marker
                # so enclosing comparisons don't double-report.
                return [("?branch", "?")]
            return then_seq
        if isinstance(stmt, ast.Try):
            seq = self.summarize(stmt.body, in_handler)
            for handler in stmt.handlers:
                self.summarize(handler.body, in_handler=True)
            seq.extend(self.summarize(stmt.orelse, in_handler))
            seq.extend(self.summarize(stmt.finalbody, in_handler))
            return seq
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            body_seq = self.summarize(stmt.body, in_handler)
            body_seq.extend(self.summarize(stmt.orelse, in_handler))
            return [("?loop", "?")] if body_seq else []
        if isinstance(stmt, ast.With):
            return self.summarize(stmt.body, in_handler)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return []  # nested definitions get their own summary
        # Leaf statement: collect collectives from its expressions.
        return self._calls_in(stmt, in_handler)


def run_collective_rule(tree: ast.Module, path: str,
                        source_lines: list[str]) -> list[Finding]:
    """Run R003 over every function (and the module body) of one file."""
    ctx = RuleContext(tree=tree, path=path, source_lines=source_lines)
    summarizer = _Summarizer(ctx)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summarizer.summarize(node.body)
    # Module-level statements outside any function.
    top = [s for s in tree.body
           if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef))]
    summarizer.summarize(top)
    return ctx.findings
