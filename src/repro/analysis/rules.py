"""The replicheck rule catalog (R001, R002, R004, R005).

Every rule targets one way a supposedly bitwise-identical replica can
silently diverge (see ``docs/DETERMINISM.md`` for the invariants and
worked examples; R003, the collective-sequence rule, lives in
:mod:`repro.analysis.collectives` because it needs per-function
summaries rather than a single AST walk):

* **R001** — unseeded or global-state RNG.  ``random.*`` and the legacy
  ``np.random.*`` functions share hidden global state; two replicas that
  consume it in even slightly different order diverge forever.  Only an
  explicitly seeded ``np.random.Generator`` threaded through call
  signatures is replica-safe.
* **R002** — iteration over unordered containers.  ``set``/``frozenset``
  iteration order follows the per-process hash seed (``PYTHONHASHSEED``
  randomizes ``str`` hashes), and ``os.listdir``/``glob`` follow
  filesystem order; feeding either into tree traversal, reductions or
  collective payloads makes replicas disagree.
* **R004** — wall-clock reads outside the observability layer.  Time is
  the canonical rank-local value: any control flow derived from it
  (adaptive cutoffs, time-boxed loops) runs differently on every rank.
* **R005** — float accumulation over order-nondeterministic constructs.
  Float addition does not associate; ``sum()`` over a set produces a
  different bit pattern per iteration order even when the set contents
  are identical.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)

__all__ = [
    "RuleContext",
    "run_syntax_rules",
    "SetTracker",
    "ORDER_SAFE_CONSUMERS",
    "set_returning_functions",
]

#: Shared empty default for name-set parameters (a constant, not a
#: call, so bugbear's call-in-default rule stays quiet).
NO_NAMES: frozenset[str] = frozenset()

# Legacy numpy global-state RNG entry points (np.random.<name>).
_NP_LEGACY = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto",
    "permutation", "poisson", "power", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "set_state", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald",
    "weibull", "zipf",
})

# Seeded/explicit construction is fine.
_NP_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
    "MT19937", "SFC64", "BitGenerator", "RandomState",
})

_WALLCLOCK_TIME = frozenset({
    "time", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "time_ns", "clock_gettime", "process_time",
    "process_time_ns",
})
_WALLCLOCK_DATETIME = frozenset({"now", "utcnow", "today"})

# Filesystem-listing calls whose order is not specified.
_FS_LISTING_FUNCS = {("os", "listdir"), ("os", "scandir"),
                     ("glob", "glob"), ("glob", "iglob")}
_FS_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Consumers that make iteration order irrelevant (or restore an order).
ORDER_SAFE_CONSUMERS = frozenset({
    "sorted", "len", "min", "max", "any", "all", "set", "frozenset",
    "bool",
})


@dataclass
class RuleContext:
    """Everything the syntax rules need for one file."""

    tree: ast.Module
    path: str
    source_lines: list[str]
    findings: list[Finding] = field(default_factory=list)

    def snippet(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""

    def add(self, rule: str, severity: str, node: ast.AST, message: str,
            hint: str = "") -> None:
        self.findings.append(Finding(
            rule=rule,
            severity=severity,
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=hint,
            snippet=self.snippet(node),
        ))


# --------------------------------------------------------------------- #
# shared inference helpers
# --------------------------------------------------------------------- #

class ImportMap:
    """Which local names refer to which modules / module members."""

    def __init__(self, tree: ast.Module) -> None:
        self.modules: dict[str, str] = {}     # alias -> module path
        self.members: dict[str, tuple[str, str]] = {}  # alias -> (mod, name)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    self.modules[a.asname or a.name.split(".")[0]] = a.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for a in node.names:
                    self.members[a.asname or a.name] = (node.module, a.name)

    def module_of(self, name: str) -> str | None:
        return self.modules.get(name)

    def member_of(self, name: str) -> tuple[str, str] | None:
        return self.members.get(name)


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted-name rendering of an attribute chain."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_annotation(ann: ast.expr) -> bool:
    if isinstance(ann, ast.Name):
        return ann.id in ("set", "frozenset")
    if isinstance(ann, ast.Subscript):
        return _is_set_annotation(ann.value)
    if isinstance(ann, ast.Attribute):
        return ann.attr in ("Set", "FrozenSet", "AbstractSet")
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value.lstrip().startswith(
            ("set", "frozenset", "Set", "FrozenSet")
        )
    return False


def set_returning_functions(tree: ast.Module) -> set[str]:
    """Names of functions in this module annotated to return a set."""
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.returns is not None
        and _is_set_annotation(node.returns)
    }


class SetTracker:
    """Local, syntactic inference of which expressions are unordered.

    Tracks names assigned set-typed values anywhere in the file (scopes
    are not modelled — replicheck is a reviewer's assistant, not a type
    checker, and a name that holds a set *somewhere* is suspicious
    everywhere).  ``set_fns`` is the per-file set of callable names that
    return sets: locally defined set-annotated functions plus imported
    ones the engine resolved from its project-wide signature index.
    """

    def __init__(self, tree: ast.Module, imports: ImportMap,
                 set_fns: frozenset[str] = NO_NAMES) -> None:
        self.imports = imports
        self.set_fns = set(set_fns) | set_returning_functions(tree)
        self.set_names: set[str] = set()
        # set-annotated parameters and variables
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (args.posonlyargs + args.args
                            + args.kwonlyargs):
                    if arg.annotation is not None and _is_set_annotation(
                        arg.annotation
                    ):
                        self.set_names.add(arg.arg)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ) and _is_set_annotation(node.annotation):
                self.set_names.add(node.target.id)
        changed = True
        # fixpoint over simple assignments so `a = set(); b = a` resolves
        while changed:
            changed = False
            for node in ast.walk(tree):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.AugAssign):
                    # s |= other keeps set-ness
                    targets, value = [node.target], node.target
                if value is None:
                    continue
                if self.is_unordered(value):
                    for t in targets:
                        if isinstance(t, ast.Name) and t.id not in self.set_names:
                            self.set_names.add(t.id)
                            changed = True

    # -- classification ---------------------------------------------------- #
    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Name) and (
                f.id in ("set", "frozenset") or f.id in self.set_fns
            ):
                return True
            if isinstance(f, ast.Attribute) and f.attr in (
                "union", "intersection", "difference",
                "symmetric_difference",
            ) and self.is_unordered(f.value):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Name) and node.id in self.set_names:
            return True
        return False

    def is_fs_listing(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        f = node.func
        if isinstance(f, ast.Attribute):
            if f.attr in _FS_LISTING_METHODS and not isinstance(
                f.value, ast.Name
            ):
                return True
            dotted = _dotted(f)
            if dotted:
                head, _, attr = dotted.rpartition(".")
                module = self.imports.module_of(head.split(".")[0]) or head
                if (module.split(".")[0], attr) in _FS_LISTING_FUNCS:
                    return True
            if f.attr in _FS_LISTING_METHODS:
                return True
        elif isinstance(f, ast.Name):
            member = self.imports.member_of(f.id)
            if member is not None and (
                member[0].split(".")[0], member[1]
            ) in _FS_LISTING_FUNCS:
                return True
        return False

    def is_unordered(self, node: ast.expr) -> bool:
        return self.is_set_expr(node) or self.is_fs_listing(node)

    def describe(self, node: ast.expr) -> str:
        if self.is_fs_listing(node):
            return "a filesystem listing"
        return "a set"


def _build_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


# --------------------------------------------------------------------- #
# R001 — unseeded / global RNG
# --------------------------------------------------------------------- #

def _enclosing_none_default_params(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> set[str]:
    """Parameter names of the enclosing function that default to None."""
    cur: ast.AST | None = node
    while cur is not None and not isinstance(
        cur, (ast.FunctionDef, ast.AsyncFunctionDef)
    ):
        cur = parents.get(cur)
    if cur is None:
        return set()
    args = cur.args
    out: set[str] = set()
    pos = args.posonlyargs + args.args
    for arg, default in zip(pos[len(pos) - len(args.defaults):],
                            args.defaults, strict=True):
        if isinstance(default, ast.Constant) and default.value is None:
            out.add(arg.arg)
    for arg, default in zip(args.kwonlyargs, args.kw_defaults,
                            strict=True):
        if (default is not None and isinstance(default, ast.Constant)
                and default.value is None):
            out.add(arg.arg)
    return out


def _rule_r001(ctx: RuleContext, imports: ImportMap,
               parents: dict[ast.AST, ast.AST]) -> None:
    hint = ("thread an explicitly seeded np.random.Generator "
            "(np.random.default_rng(seed)) through the call signature")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        # random.<fn>(...) on the stdlib module
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            mod = imports.module_of(f.value.id)
            if mod == "random":
                if f.attr == "Random" and node.args:
                    continue  # random.Random(seed) is explicit state
                ctx.add("R001", SEVERITY_ERROR, node,
                        f"call to global-state RNG random.{f.attr}()", hint)
                continue
        # from random import shuffle; shuffle(...)
        if isinstance(f, ast.Name):
            member = imports.member_of(f.id)
            if member is not None and member[0] == "random":
                ctx.add("R001", SEVERITY_ERROR, node,
                        f"call to global-state RNG random.{member[1]}()",
                        hint)
                continue
        # np.random.<fn>(...)
        dotted = _dotted(f) if isinstance(f, ast.Attribute) else ""
        if not dotted:
            continue
        head, _, attr = dotted.rpartition(".")
        root = head.split(".")[0] if head else ""
        resolved_head = imports.module_of(root) or root
        is_np_random = (
            head.endswith("random") and resolved_head in ("numpy", "np")
        ) or resolved_head == "numpy.random"
        if not is_np_random:
            continue
        if attr in _NP_LEGACY:
            ctx.add("R001", SEVERITY_ERROR, node,
                    f"call to legacy global-state RNG np.random.{attr}()",
                    hint)
        elif attr == "default_rng":
            arg = node.args[0] if node.args else None
            if arg is None or (isinstance(arg, ast.Constant)
                               and arg.value is None):
                ctx.add("R001", SEVERITY_ERROR, node,
                        "np.random.default_rng() without a seed draws OS "
                        "entropy — every replica gets a different stream",
                        hint)
            elif isinstance(arg, ast.Name) and arg.id in (
                _enclosing_none_default_params(node, parents)
            ):
                ctx.add("R001", SEVERITY_WARNING, node,
                        f"np.random.default_rng({arg.id}) where "
                        f"{arg.id!r} defaults to None — callers that omit "
                        "it silently get OS entropy",
                        "make the None fallback an explicit fixed seed")


# --------------------------------------------------------------------- #
# R002 — iteration over unordered containers
# --------------------------------------------------------------------- #

def _is_sum_func(func: ast.expr) -> bool:
    """Syntactic match for accumulators R005 owns (so R002 defers)."""
    if isinstance(func, ast.Name):
        return func.id in ("sum", "fsum")
    return isinstance(func, ast.Attribute) and func.attr in ("sum", "fsum")


def _order_safe_parent(node: ast.AST,
                       parents: dict[ast.AST, ast.AST],
                       order_safe: frozenset[str] = NO_NAMES) -> bool:
    """Is this expression consumed by an order-insensitive construct?

    ``order_safe`` extends the built-in consumer allowlist with names
    the scan target vouches for (e.g. ``Counter``, ``approx_equal``
    helpers in tests).
    """
    parent = parents.get(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        f = parent.func
        if isinstance(f, ast.Name) and (
                f.id in ORDER_SAFE_CONSUMERS or f.id in order_safe):
            return True
        if isinstance(f, ast.Attribute) and f.attr in order_safe:
            return True
        if isinstance(f, ast.Attribute) and f.attr in (
            "union", "update", "intersection", "difference", "join",
        ):
            # order-insensitive set algebra; join of sorted handled upstream
            return f.attr != "join"
    if isinstance(parent, ast.Compare):
        # membership tests
        return any(isinstance(op, (ast.In, ast.NotIn)) for op in parent.ops)
    return False


def _rule_r002(ctx: RuleContext, sets: SetTracker,
               parents: dict[ast.AST, ast.AST],
               order_safe: frozenset[str] = NO_NAMES) -> None:
    hint = "wrap the iterable in sorted(...) with a deterministic key"

    def flag(iter_node: ast.expr, where: ast.AST) -> None:
        what = sets.describe(iter_node)
        ctx.add("R002", SEVERITY_ERROR, where,
                f"iteration over {what}: order varies per process "
                "(hash seed / filesystem order), so replicas disagree",
                hint)

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For) and sets.is_unordered(node.iter):
            flag(node.iter, node)
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp,
                               ast.SetComp)):
            for comp in node.generators:
                if not sets.is_unordered(comp.iter):
                    continue
                if isinstance(node, ast.SetComp):
                    continue  # set -> set keeps (non-)order, no new hazard
                if isinstance(node, ast.GeneratorExp) and _order_safe_parent(
                    node, parents, order_safe
                ):
                    continue
                # sum(...) over unordered is R005's (more specific) finding
                parent = parents.get(node)
                if isinstance(parent, ast.Call) and _is_sum_func(
                    parent.func
                ):
                    continue
                flag(comp.iter, node)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("list", "tuple", "iter", "enumerate",
                                "reversed") and node.args:
                if sets.is_unordered(node.args[0]) and not (
                    order_safe and _order_safe_parent(node, parents,
                                                      order_safe)
                ):
                    flag(node.args[0], node)


# --------------------------------------------------------------------- #
# R004 — wall clock in replica paths
# --------------------------------------------------------------------- #

def _in_control_flow(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    """Does this expression (transitively) feed an if/while test or a
    comparison?"""
    cur: ast.AST | None = node
    while cur is not None:
        parent = parents.get(cur)
        if isinstance(parent, (ast.If, ast.While)) and cur is parent.test:
            return True
        if isinstance(parent, (ast.Compare, ast.BoolOp, ast.IfExp)):
            return True
        if isinstance(parent, ast.stmt):
            return False
        cur = parent
    return False


def _rule_r004(ctx: RuleContext, imports: ImportMap,
               parents: dict[ast.AST, ast.AST]) -> None:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        name: str | None = None
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            mod = imports.module_of(f.value.id) or f.value.id
            if mod == "time" and f.attr in _WALLCLOCK_TIME:
                name = f"time.{f.attr}"
            elif mod == "datetime" and f.attr in _WALLCLOCK_DATETIME:
                name = f"datetime.{f.attr}"
        elif isinstance(f, ast.Attribute) and isinstance(
            f.value, ast.Attribute
        ):
            # datetime.datetime.now(), datetime.date.today()
            dotted = _dotted(f)
            if dotted.startswith("datetime.") and f.attr in _WALLCLOCK_DATETIME:
                name = dotted
        elif isinstance(f, ast.Name):
            member = imports.member_of(f.id)
            if member is not None:
                if member[0] == "time" and member[1] in _WALLCLOCK_TIME:
                    name = f"time.{member[1]}"
        if name is None:
            continue
        in_flow = _in_control_flow(node, parents)
        ctx.add(
            "R004",
            SEVERITY_ERROR if in_flow else SEVERITY_WARNING,
            node,
            f"wall-clock read {name}() "
            + ("feeds control flow — replicas will branch differently"
               if in_flow else
               "in a replica path — any decision derived from it is "
               "rank-local"),
            "keep timing in the obs/ layer, or derive decisions from "
            "replicated state (iteration counts, collective results)",
        )


# --------------------------------------------------------------------- #
# R005 — order-nondeterministic float accumulation
# --------------------------------------------------------------------- #

def _rule_r005(ctx: RuleContext, sets: SetTracker, imports: ImportMap) -> None:
    hint = ("accumulate in a deterministic order: sum(sorted(...)) or a "
            "rank-ordered reduction")

    def is_sum_call(node: ast.Call) -> str | None:
        f = node.func
        if isinstance(f, ast.Name):
            if f.id == "sum":
                return "sum"
            member = imports.member_of(f.id)
            if member is not None and member == ("math", "fsum"):
                return "math.fsum"
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            mod = imports.module_of(f.value.id) or f.value.id
            if mod == "math" and f.attr == "fsum":
                return "math.fsum"
            if mod in ("numpy", "np") and f.attr == "sum":
                return "np.sum"
        return None

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        kind = is_sum_call(node)
        if kind is None:
            continue
        arg = node.args[0]
        unordered = sets.is_unordered(arg)
        if not unordered and isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            unordered = any(
                sets.is_unordered(c.iter) for c in arg.generators
            )
        if unordered:
            ctx.add("R005", SEVERITY_ERROR, node,
                    f"{kind}() over an unordered iterable: float addition "
                    "is not associative, so the result is a function of "
                    "the per-process iteration order", hint)


def run_syntax_rules(tree: ast.Module, path: str,
                     source_lines: list[str],
                     skip_r004: bool = False,
                     set_fns: frozenset[str] = NO_NAMES,
                     order_safe: frozenset[str] = NO_NAMES,
                     ) -> list[Finding]:
    """Run R001/R002/R004/R005 over one parsed file."""
    ctx = RuleContext(tree=tree, path=path, source_lines=source_lines)
    imports = ImportMap(tree)
    sets = SetTracker(tree, imports, set_fns)
    parents = _build_parents(tree)
    _rule_r001(ctx, imports, parents)
    _rule_r002(ctx, sets, parents, order_safe)
    if not skip_r004:
        _rule_r004(ctx, imports, parents)
    _rule_r005(ctx, sets, imports)
    return ctx.findings
