"""Findings, suppressions and the committed baseline for replicheck.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* is content-addressed — rule id, file path and the
normalized source snippet (plus an occurrence index for repeated
identical snippets) — so baselines survive unrelated line-number churn.

Two suppression mechanisms exist:

* **inline** — ``# replicheck: ignore[R001] -- justification`` on the
  flagged line (or as a standalone comment on the line directly above).
  The justification after ``--`` is mandatory in spirit: replica-safety
  exemptions must say *why* the code is safe, and the analyzer reports
  justification-less suppressions so review can push back.
* **baseline** — a committed JSON file of tolerated fingerprints; the
  CLI gate fails only on findings *not* in the baseline, so the tool can
  land on a codebase with pre-existing debt and still block new debt.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Finding",
    "Suppression",
    "parse_suppressions",
    "Baseline",
    "assign_fingerprints",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_SUPPRESS_RE = re.compile(
    r"#\s*replicheck:\s*ignore\[([A-Z0-9,\s]+)\]"
    r"(?:\s*--\s*(?P<why>.*?))?\s*$"
)


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    snippet: str = ""
    fingerprint: str = ""

    def format(self) -> str:
        out = (f"{self.path}:{self.line}:{self.col + 1}: "
               f"{self.rule} {self.severity}: {self.message}")
        if self.hint:
            out += f" (hint: {self.hint})"
        return out

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


def assign_fingerprints(findings: list[Finding]) -> None:
    """Content-address every finding in place.

    The digest covers (rule, path, normalized snippet, occurrence index)
    — deliberately *not* the line number, so reformatting elsewhere in
    the file does not invalidate a committed baseline.
    """
    seen: dict[tuple[str, str, str], int] = {}
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (f.rule, f.path, " ".join(f.snippet.split()))
        index = seen.get(key, 0)
        seen[key] = index + 1
        h = hashlib.blake2b(digest_size=8)
        h.update("\x1f".join([key[0], key[1], key[2], str(index)]).encode())
        f.fingerprint = h.hexdigest()


@dataclass(frozen=True)
class Suppression:
    """An inline ``replicheck: ignore`` pragma."""

    line: int          # the source line the pragma exempts
    rules: frozenset[str]
    justification: str
    pragma_line: int   # where the comment itself sits

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract inline suppressions from ``source``.

    A pragma at the end of a code line exempts that line; a pragma on a
    comment-only line exempts the next line (useful when the flagged
    statement is long).  Only real ``COMMENT`` tokens count — pragma
    text quoted inside strings or docstrings is documentation, not a
    suppression.
    """
    out: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _SUPPRESS_RE.search(tok.string)
        if not m:
            continue
        rules = frozenset(
            r.strip() for r in m.group(1).split(",") if r.strip()
        )
        lineno = tok.start[0]
        standalone = tok.line.lstrip().startswith("#")
        out.append(Suppression(
            line=lineno + 1 if standalone else lineno,
            rules=rules,
            justification=(m.group("why") or "").strip(),
            pragma_line=lineno,
        ))
    return out


@dataclass
class Baseline:
    """The committed set of tolerated finding fingerprints."""

    fingerprints: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        p = Path(path)
        if not p.exists():
            return cls()
        data = json.loads(p.read_text())
        entries = data.get("findings", [])
        return cls(fingerprints={e["fingerprint"]: e for e in entries})

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(fingerprints={
            f.fingerprint: {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
            }
            for f in findings
        })

    def save(self, path: str | Path) -> None:
        entries = [self.fingerprints[k] for k in sorted(self.fingerprints)]
        payload = json.dumps(
            {"version": 1, "findings": entries}, indent=2) + "\n"
        # tmp + fsync + rename: the baseline gates CI, so a torn write
        # must not be able to pass (or fail) a build.
        final = Path(path)
        tmp = final.with_name(final.name + ".tmp")
        try:
            with open(tmp, "w") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints

    def __len__(self) -> int:
        return len(self.fingerprints)
