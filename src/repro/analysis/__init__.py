"""replicheck — determinism & collective-consistency static analysis.

The decentralized engine relies on every rank running a bitwise-
identical replica of the tree search (PAPER.md).  This package checks,
at review time, the code properties that invariant depends on; the
runtime complement is :class:`repro.par.sanitize.SanitizingComm`.

Entry points: :func:`analyze_paths` (CLI + tests) and the rule catalog
in :data:`RULES`.  See ``docs/DETERMINISM.md`` for the rule catalog
with examples and the suppression/baseline workflow.
"""

from repro.analysis.engine import (
    PROFILES,
    RULES,
    AnalysisReport,
    analyze_paths,
    analyze_source,
)
from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Baseline,
    Finding,
    Suppression,
    parse_suppressions,
)
from repro.analysis.sarif import to_sarif

__all__ = [
    "RULES",
    "PROFILES",
    "AnalysisReport",
    "analyze_paths",
    "analyze_source",
    "Baseline",
    "Finding",
    "Suppression",
    "parse_suppressions",
    "to_sarif",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
]
