"""Machine descriptions for the performance model.

:data:`HITS_CLUSTER` mirrors the paper's test platform (Section IV-A): 50
AMD Magny-Cours nodes, 6 × Opteron 6174 (48 cores) per node, QLogic
InfiniBand, 46 nodes with 128 GB and 4 with 256 GB of RAM.

The kernel cost constants express that likelihood computation is *memory
bandwidth bound* (paper, Section V): each CLV entry is touched with only a
handful of floating point operations, so throughput per core is far below
peak FLOPS.  Constants are in nanoseconds per pattern·category and were
chosen so that absolute single-node runtimes land in the paper's range;
every claim we verify is about *relative* behaviour, which is insensitive
to the exact values (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.par.ledger import OpKind

__all__ = ["MachineSpec", "HITS_CLUSTER"]

GIB = 1024**3


def _default_op_costs() -> dict[OpKind, float]:
    return {
        OpKind.NEWVIEW: 14.0,
        OpKind.EVALUATE: 6.0,
        OpKind.SUMTABLE: 8.0,
        OpKind.DERIVATIVE: 4.0,
        OpKind.PMATRIX: 0.5,
        OpKind.PSR_SCAN: 14.0,
    }


@dataclass(frozen=True)
class MachineSpec:
    """A cluster for the analytic performance model.

    Attributes
    ----------
    op_cost_ns:
        Nanoseconds per pattern·category for each kernel op on one core.
    psr_site_factor:
        Extra per-pattern cost multiplier for site-specific (PSR) kernels,
        which compute one P matrix per site instead of one per category.
    inter_latency_s / inter_bandwidth_bps:
        Per-message latency and bandwidth of the node interconnect.
    intra_latency_s / intra_bandwidth_bps:
        Same for the intra-node (shared-memory) stage of hierarchical
        collectives.
    ram_per_node_bytes:
        Usable RAM per node for the working set.
    mem_overhead_factor:
        Real resident footprint over the raw CLV bytes (allocator slack,
        tip data, sumtables, P-matrix workspaces, OS).
    swap_slowdown:
        Compute-time multiplier per unit of footprint excess beyond RAM
        (models the paging degradation the paper observed for Γ on 1–2
        nodes in Figure 3).
    """

    name: str
    n_nodes: int
    cores_per_node: int
    ram_per_node_bytes: float
    op_cost_ns: dict[OpKind, float] = field(default_factory=_default_op_costs)
    psr_site_factor: float = 1.7
    inter_latency_s: float = 8.0e-6
    inter_bandwidth_bps: float = 2.6e9
    intra_latency_s: float = 2.0e-6
    intra_bandwidth_bps: float = 7.0e9
    reduce_flop_s_per_byte: float = 2.5e-10
    #: Seconds per byte the fork-join master spends serially assembling,
    #: packing and staging broadcast payloads (descriptors, parameter
    #: arrays) while every worker idles.  This is the master-bottleneck
    #: term the de-centralized scheme eliminates: each replica derives its
    #: traversal locally and touches only its own partitions' bookkeeping.
    master_pack_s_per_byte: float = 60.0e-9
    #: Fixed per-parallel-region synchronization overhead at the reference
    #: rank count (192): OS-noise amplification, MPI progress and the wait
    #: for the slowest rank.  Scales with log2(ranks); both schemes pay it
    #: at every region where they synchronize.
    sync_noise_s: float = 2.2e-4
    mem_overhead_factor: float = 2.5
    swap_slowdown: float = 9.0
    #: Peak double-precision FLOP/s of one core (roofline ceiling).
    #: Default: Opteron 6174 at 2.2 GHz × 4 DP FLOPs/cycle (SSE FMA-less
    #: 2-wide mul+add) = 8.8 GFLOP/s.
    peak_flops_per_core: float = 8.8e9
    #: Sustained memory bandwidth available to one core when all cores
    #: stream (roofline slope).  Default: ≈85 GB/s STREAM per
    #: Magny-Cours node / 48 cores ≈ 1.8 GB/s.
    mem_bandwidth_per_core_bps: float = 1.8e9

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.cores_per_node < 1:
            raise ReproError("machine needs at least one node and core")
        if self.ram_per_node_bytes <= 0:
            raise ReproError("RAM must be positive")

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.cores_per_node

    def region_sync_noise(self, n_ranks: int) -> float:
        """Per-synchronizing-region noise for a given rank count."""
        import math

        if n_ranks <= 1:
            return 0.0
        return self.sync_noise_s * math.log2(n_ranks) / math.log2(192)

    def nodes_for_ranks(self, n_ranks: int) -> int:
        """Nodes occupied when ranks are packed densely."""
        if n_ranks < 1:
            raise ReproError("need at least one rank")
        if n_ranks > self.total_cores:
            raise ReproError(
                f"{n_ranks} ranks exceed {self.total_cores} cores of {self.name}"
            )
        return -(-n_ranks // self.cores_per_node)

    @property
    def ridge_intensity(self) -> float:
        """Arithmetic intensity (FLOP/B) where the roofline's bandwidth
        slope meets the compute ceiling; kernels left of it are memory
        bound on this machine."""
        return self.peak_flops_per_core / self.mem_bandwidth_per_core_bps

    def attainable_flops(self, intensity: float) -> float:
        """Roofline ceiling (FLOP/s per core) at a given intensity:
        ``min(peak, intensity × bandwidth)``."""
        if intensity <= 0:
            return 0.0
        return min(
            self.peak_flops_per_core,
            intensity * self.mem_bandwidth_per_core_bps,
        )

    def with_ram(self, ram_per_node_bytes: float) -> "MachineSpec":
        """Same machine with different per-node RAM (the paper's runs used
        the four 256 GB nodes for low node counts)."""
        from dataclasses import replace

        return replace(self, ram_per_node_bytes=ram_per_node_bytes)


#: The paper's cluster (Section IV-A), with the 256 GB "fat" node RAM as
#: default — Figure 3's low-node-count runs were placed on those nodes.
HITS_CLUSTER = MachineSpec(
    name="HITS Magny-Cours",
    n_nodes=50,
    cores_per_node=48,
    ram_per_node_bytes=256 * GIB,
)
