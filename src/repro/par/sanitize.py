"""Runtime replica sanitizer: cross-rank collective-consistency checks.

:class:`SanitizingComm` is the dynamic complement to the replicheck
static analyzer (:mod:`repro.analysis`).  Wrapped around any
communicator, it prepends every collective with a small control round
that cross-checks what each rank *thinks* it is doing:

1. each rank builds a record of the impending call — call index, verb,
   Table-I ``tag``, reduce op, root, a structural payload signature
   (shape/dtype, never values: allreduce *contributions* legitimately
   differ per rank, only their shapes must agree), the hash of the
   previous collective's rank-symmetric result, and the application
   call site;
2. the records are gathered at rank 0 (tag ``__sanitize__``) and a
   verdict is broadcast back;
3. on a mismatch *every* rank raises
   :class:`~repro.errors.ReplicaDivergenceError` naming the first
   diverging collective and the minority ranks — *before* entering the
   real collective, where the divergence would otherwise surface as a
   value drift or a deadlock-then-timeout at rank 512.

Scope and limits:

* Built for the **decentralized** engine, whose replicas are symmetric
  by construction.  The fork-join scheme is intentionally asymmetric
  (master broadcasts Table-I-tagged commands, workers post
  ``tag="command"`` receives), so sanitizing it would only report its
  design.
* ``send``/``recv`` and the recovery verbs ``agree``/``shrink`` pass
  through unchecked: point-to-point traffic and failure recovery are
  legitimately rank-asymmetric.
* If replicas diverge so far that one rank stops issuing collectives
  entirely, the check's own gather blocks until the communicator's
  failure detection trips — the sanitizer turns value divergence and
  sequence mismatches into immediate errors, but cannot conjure a
  missing peer.

Fault-tolerance interaction: the check rounds use the same
failure-aware primitives as the payload collectives, so a rank death
during a check surfaces as the usual
:class:`~repro.errors.RankFailureError` and recovery proceeds.  On
:meth:`shrink`, the rewrapped sanitizer resets its call counter and
result hash — survivors may have been torn out of adjacent collectives,
so the pre-failure chain must not poison the first post-recovery check.
"""

from __future__ import annotations

import hashlib
import pickle
import sys
from typing import Any

import numpy as np

from repro.errors import RankFailureError, ReplicaDivergenceError
from repro.par.comm import Comm, ReduceOp

__all__ = ["SanitizingComm", "SANITIZE_TAG"]

#: Tag carried by the sanitizer's own control rounds — visible in
#: ``bytes_by_tag``/``calls_by_tag`` so its overhead is accountable (and
#: so tests can assert it is absent when sanitizing is off).
SANITIZE_TAG = "__sanitize__"

#: Sentinel prev-result hash after launch/shrink and for verbs whose
#: result is legitimately rank-asymmetric (reduce/gather return None on
#: non-root ranks).
_NO_HASH = "-"

# Record fields compared across ranks.  The call site is deliberately
# reported but NOT compared: identical code on every rank means it only
# adds context, and line numbers must not decide divergence.
_COMPARED = ("index", "verb", "tag", "op", "root", "sig", "prev")


def _stable_hash(obj: Any) -> str:
    h = hashlib.blake2b(digest_size=8)
    _feed(h, obj)
    return h.hexdigest()


def _feed(h, obj: Any) -> None:
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, np.ndarray):
        h.update(b"A")
        h.update(str(obj.dtype).encode())
        h.update(str(obj.shape).encode())
        h.update(obj.tobytes())
    elif isinstance(obj, (bool, int, float, str, bytes,
                          np.floating, np.integer)):
        h.update(repr(obj).encode())
    elif isinstance(obj, (list, tuple)):
        h.update(b"L%d" % len(obj))
        for item in obj:
            _feed(h, item)
    elif isinstance(obj, dict):
        h.update(b"D%d" % len(obj))
        for key in sorted(obj, key=repr):
            _feed(h, key)
            _feed(h, obj[key])
    else:
        h.update(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _payload_sig(obj: Any, depth: int = 0) -> str:
    """Structural signature: shapes and dtypes, never values."""
    if obj is None:
        return "none"
    if isinstance(obj, np.ndarray):
        return f"ndarray[{obj.dtype.str}]{tuple(obj.shape)}"
    if isinstance(obj, (bool, np.bool_)):
        return "bool"
    if isinstance(obj, (int, np.integer)):
        return "int"
    if isinstance(obj, (float, np.floating)):
        return "float"
    if isinstance(obj, str):
        return f"str[{len(obj)}]"
    if isinstance(obj, (list, tuple)):
        kind = type(obj).__name__
        if depth >= 2 or len(obj) > 8:
            return f"{kind}[{len(obj)}]"
        inner = ",".join(_payload_sig(x, depth + 1) for x in obj)
        return f"{kind}({inner})"
    if isinstance(obj, dict):
        return f"dict[{len(obj)}]"
    return type(obj).__name__


def _call_site() -> str:
    """First stack frame outside the communication/observability layers."""
    frame = sys._getframe(1)
    while frame is not None:
        fname = frame.f_code.co_filename.replace("\\", "/")
        if not any(part in fname for part in ("/par/", "/obs/")):
            return f"{fname}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


def _format_records(records: list[dict]) -> str:
    lines = []
    for rank, rec in enumerate(records):
        lines.append(
            f"  rank {rank}: #{rec['index']} {rec['verb']}"
            f"(tag={rec['tag']!r}, op={rec['op']}, root={rec['root']}, "
            f"payload={rec['sig']}, prev_result={rec['prev']}) "
            f"at {rec['site']}"
        )
    return "\n".join(lines)


class SanitizingComm(Comm):
    """Cross-rank collective-consistency checking wrapper."""

    def __init__(self, inner: Comm) -> None:
        self.inner = inner
        self.calls = 0
        self._prev = _NO_HASH

    # -- delegation -------------------------------------------------------- #
    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def bytes_by_tag(self):
        return self.inner.bytes_by_tag

    @property
    def calls_by_tag(self):
        return self.inner.calls_by_tag

    def world_rank(self, rank: int) -> int:
        return self.inner.world_rank(rank)

    def world_ranks(self, ranks) -> tuple[int, ...]:
        return self.inner.world_ranks(ranks)

    # -- the check --------------------------------------------------------- #
    def _check(self, verb: str, tag: str, op: ReduceOp | None,
               root: int | None, sig: str) -> int:
        """One control round; returns this collective's call index."""
        index = self.calls
        self.calls += 1
        if self.inner.size <= 1:
            return index
        record = {
            "index": index,
            "verb": verb,
            "tag": tag,
            "op": op.value if op is not None else "-",
            "root": root if root is not None else "-",
            "sig": sig,
            "prev": self._prev,
            "site": _call_site(),
        }
        try:
            records = self.inner.gather(record, root=0, tag=SANITIZE_TAG)
            verdict = None
            if self.inner.rank == 0:
                keys = [tuple(r[k] for k in _COMPARED) for r in records]
                if len(set(keys)) > 1:
                    counts: dict[tuple, int] = {}
                    for key in keys:
                        counts[key] = counts.get(key, 0) + 1
                    majority = max(counts, key=lambda k: counts[k])
                    verdict = {
                        "index": index,
                        "diverging": [r for r, key in enumerate(keys)
                                      if key != majority],
                        "details": _format_records(records),
                    }
            verdict = self.inner.bcast(verdict, root=0, tag=SANITIZE_TAG)
        except RankFailureError:
            # A peer died mid-check; the chain up to here is unusable for
            # the survivors' next comparison.
            self._prev = _NO_HASH
            raise
        if verdict is not None:
            raise ReplicaDivergenceError(
                call_index=verdict["index"],
                diverging_ranks=verdict["diverging"],
                details=verdict["details"],
            )
        return index

    def _run(self, call, symmetric_result: bool) -> Any:
        """Run the payload collective; chain rank-symmetric results into
        the next check via their hash."""
        try:
            result = call()
        except RankFailureError:
            self._prev = _NO_HASH
            raise
        self._prev = _stable_hash(result) if symmetric_result else _NO_HASH
        return result

    # -- checked collectives ------------------------------------------------ #
    def bcast(self, obj: Any, root: int = 0, tag: str = "generic") -> Any:
        # Payload signature is root-only by design — not compared.
        self._check("bcast", tag, None, root, _NO_HASH)
        return self._run(lambda: self.inner.bcast(obj, root, tag),
                         symmetric_result=True)

    def reduce(self, obj: Any, op: ReduceOp = ReduceOp.SUM, root: int = 0,
               tag: str = "generic") -> Any:
        self._check("reduce", tag, op, root, _payload_sig(obj))
        return self._run(lambda: self.inner.reduce(obj, op, root, tag),
                         symmetric_result=False)

    def allreduce(self, obj: Any, op: ReduceOp = ReduceOp.SUM,
                  tag: str = "generic") -> Any:
        self._check("allreduce", tag, op, None, _payload_sig(obj))
        return self._run(lambda: self.inner.allreduce(obj, op, tag),
                         symmetric_result=True)

    def barrier(self, tag: str = "generic") -> None:
        self._check("barrier", tag, None, None, "none")
        return self._run(lambda: self.inner.barrier(tag),
                         symmetric_result=True)

    def gather(self, obj: Any, root: int = 0, tag: str = "generic"):
        self._check("gather", tag, None, root, _payload_sig(obj))
        return self._run(lambda: self.inner.gather(obj, root, tag),
                         symmetric_result=False)

    def scatter(self, objs: list[Any] | None, root: int = 0,
                tag: str = "generic") -> Any:
        self._check("scatter", tag, None, root, _NO_HASH)
        return self._run(lambda: self.inner.scatter(objs, root, tag),
                         symmetric_result=False)

    # -- unchecked passthrough --------------------------------------------- #
    # Point-to-point and recovery verbs are legitimately rank-asymmetric.
    def send(self, obj: Any, dest: int, tag: str = "generic") -> None:
        return self.inner.send(obj, dest, tag)

    def recv(self, source: int, tag: str = "generic") -> Any:
        return self.inner.recv(source, tag)

    def agree(self, failed) -> frozenset[int]:
        return self.inner.agree(failed)

    def shrink(self, failed) -> "SanitizingComm":
        """Shrink the wrapped communicator; sanitizing survives on the
        renumbered communicator with a fresh call counter and result
        chain (survivors may have been torn out of *adjacent*
        collectives, so neither is comparable across the failure)."""
        return SanitizingComm(self.inner.shrink(failed))
