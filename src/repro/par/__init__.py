"""Virtual-MPI layer: the Comm API, real multiprocessing backend,
lock-step simulation backend, collective cost models and machine specs."""

from repro.par.ledger import OpKind, ComputeItem, WorkLedger
from repro.par.comm import Comm, ReduceOp
from repro.par.seqcomm import SequentialComm
from repro.par.machine import MachineSpec, HITS_CLUSTER

__all__ = [
    "OpKind",
    "ComputeItem",
    "WorkLedger",
    "Comm",
    "ReduceOp",
    "SequentialComm",
    "MachineSpec",
    "HITS_CLUSTER",
]
