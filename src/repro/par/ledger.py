"""Work accounting for the performance model.

Every likelihood kernel invocation is described by a :class:`ComputeItem`:
which operation ran, on which partition, over how many (virtual) site
patterns and rate categories.  The engines attach these items to the
parallel region that triggered them; the performance model later converts
items into per-rank seconds for any data distribution and machine.

Virtual pattern counts make the scaled workloads work: a partition that
computes on 1,000 real patterns standing in for 1,000,000 charges the
ledger with the full 1,000,000 (see ``DESIGN.md``, substitutions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["OpKind", "ComputeItem", "WorkLedger"]


class OpKind(enum.Enum):
    """Kinds of likelihood work, with distinct per-pattern costs."""

    #: one CLV update (Felsenstein pruning step) at one node
    NEWVIEW = "newview"
    #: log-likelihood evaluation at the virtual root
    EVALUATE = "evaluate"
    #: eigen-basis sumtable construction for a branch
    SUMTABLE = "sumtable"
    #: one Newton–Raphson derivative evaluation
    DERIVATIVE = "derivative"
    #: transition-matrix (P) computation for one branch
    PMATRIX = "pmatrix"
    #: PSR per-site rate scan (per candidate rate, includes its traversal)
    PSR_SCAN = "psr_scan"


@dataclass(frozen=True)
class ComputeItem:
    """One batch of kernel work on one partition.

    ``n_patterns`` is the *virtual* pattern count (real count × scale) and
    ``count`` the number of identical kernel invocations batched here
    (e.g. 5 NEWVIEW ops of a traversal).
    """

    op: OpKind
    partition: int
    n_patterns: float
    n_cats: int
    count: int = 1
    #: PSR kernels build one P matrix per site; the cost model charges a
    #: machine-specific multiplier for such items.
    site_specific: bool = False

    @property
    def pattern_ops(self) -> float:
        """Total pattern·category units of work in this item."""
        return self.n_patterns * self.n_cats * self.count


@dataclass
class WorkLedger:
    """Cumulative kernel-work account (used for whole-run statistics).

    The engines additionally keep per-region item lists; this ledger is
    the global aggregate a run reports at the end.
    """

    totals: dict[tuple[OpKind, int], tuple[float, int]] = field(default_factory=dict)

    def charge(self, item: ComputeItem) -> None:
        key = (item.op, item.partition)
        pats, cnt = self.totals.get(key, (0.0, 0))
        self.totals[key] = (pats + item.pattern_ops, cnt + item.count)

    def charge_many(self, items: list[ComputeItem]) -> None:
        for item in items:
            self.charge(item)

    def pattern_ops(self, op: OpKind | None = None) -> float:
        """Total pattern·category work, optionally filtered by op kind."""
        return sum(
            pats
            for (kind, _), (pats, _) in self.totals.items()
            if op is None or kind is op
        )

    def invocations(self, op: OpKind | None = None) -> int:
        return sum(
            cnt
            for (kind, _), (_, cnt) in self.totals.items()
            if op is None or kind is op
        )

    def clear(self) -> None:
        self.totals.clear()

    def merge(self, other: "WorkLedger") -> None:
        for key, (pats, cnt) in other.totals.items():
            mine = self.totals.get(key, (0.0, 0))
            self.totals[key] = (mine[0] + pats, mine[1] + cnt)
