"""Single-rank communicator (the sequential reference).

All collectives are identities; byte counters still run so sequential
runs can sanity-check the accounting code paths.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.errors import CommError
from repro.par.comm import Comm, ReduceOp, apply_reduce, payload_nbytes

__all__ = ["SequentialComm"]


class SequentialComm(Comm):
    """A ``size == 1`` communicator; useful as the no-parallelism baseline."""

    def __init__(self) -> None:
        self.bytes_by_tag: dict[str, int] = defaultdict(int)
        self.calls_by_tag: dict[str, int] = defaultdict(int)

    @property
    def rank(self) -> int:
        return 0

    @property
    def size(self) -> int:
        return 1

    def _account(self, obj: Any, tag: str) -> None:
        self.bytes_by_tag[tag] += payload_nbytes(obj)
        self.calls_by_tag[tag] += 1

    def bcast(self, obj: Any, root: int = 0, tag: str = "generic") -> Any:
        self._account(obj, tag)
        return obj

    def reduce(self, obj, op: ReduceOp = ReduceOp.SUM, root: int = 0, tag: str = "generic"):
        self._account(obj, tag)
        return apply_reduce(op, [obj])

    def allreduce(self, obj, op: ReduceOp = ReduceOp.SUM, tag: str = "generic"):
        self._account(obj, tag)
        return apply_reduce(op, [obj])

    def barrier(self, tag: str = "generic") -> None:
        self.calls_by_tag[tag] += 1

    def gather(self, obj, root: int = 0, tag: str = "generic"):
        self._account(obj, tag)
        return [obj]

    def scatter(self, objs, root: int = 0, tag: str = "generic"):
        if objs is None or len(objs) != 1:
            raise CommError("scatter needs exactly one element on one rank")
        self._account(objs[0], tag)
        return objs[0]

    def send(self, obj, dest: int, tag: str = "generic") -> None:
        raise CommError("point-to-point send to self is not supported")

    def recv(self, source: int, tag: str = "generic"):
        raise CommError("point-to-point recv from self is not supported")
