"""The virtual-MPI communicator interface.

A deliberately small subset of MPI, sufficient for both parallelization
schemes of the paper:

* fork-join (RAxML-Light) needs ``bcast`` + ``reduce`` (master-rooted);
* de-centralized (ExaML) needs ``allreduce`` (and a couple of point-to-point
  calls for the initial data distribution).

Every call takes a ``tag`` labelling the *purpose* of the message — the
categories of the paper's Table I — so backends can account communication
bytes per category exactly.

Reductions over float arrays are performed in **fixed rank order**.  The
paper stresses that ``MPI_Allreduce`` must yield bitwise-identical values
on every rank, otherwise the replicated search algorithms diverge; rank-
ordered summation gives us that property on every backend.
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from repro.errors import CommError

__all__ = ["ReduceOp", "Comm", "payload_nbytes"]


class ReduceOp(enum.Enum):
    SUM = "sum"
    MAX = "max"
    MIN = "min"


def apply_reduce(op: ReduceOp, values: list[Any]) -> Any:
    """Combine per-rank contributions in rank order (deterministic)."""
    if not values:
        raise CommError("nothing to reduce")
    first = values[0]
    if isinstance(first, np.ndarray):
        acc = first.astype(np.float64, copy=True)
        for val in values[1:]:
            if op is ReduceOp.SUM:
                acc += val
            elif op is ReduceOp.MAX:
                np.maximum(acc, val, out=acc)
            else:
                np.minimum(acc, val, out=acc)
        return acc
    acc = first
    for val in values[1:]:
        if op is ReduceOp.SUM:
            acc = acc + val
        elif op is ReduceOp.MAX:
            acc = max(acc, val)
        else:
            acc = min(acc, val)
    return acc


def payload_nbytes(obj: Any) -> int:
    """Approximate on-wire size of a payload in bytes.

    NumPy arrays count their raw buffer; scalars count 8; structured
    payloads (tuples/lists/dicts) count the sum of their parts plus a
    small framing overhead — matching how the paper counts, e.g., an
    allreduce of three doubles as 24 bytes.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, np.floating, np.integer)):
        return 8
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (tuple, list)):
        return 4 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 4 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    if hasattr(obj, "nbytes_wire"):
        return int(obj.nbytes_wire())
    # fallback: pickle size
    import pickle

    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class Comm:
    """Abstract communicator.  Ranks are ``0 .. size-1``."""

    @property
    def rank(self) -> int:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError

    def bcast(self, obj: Any, root: int = 0, tag: str = "generic") -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns the object."""
        raise NotImplementedError

    def reduce(
        self, obj: Any, op: ReduceOp = ReduceOp.SUM, root: int = 0,
        tag: str = "generic",
    ) -> Any:
        """Reduce to ``root``; non-root ranks return ``None``."""
        raise NotImplementedError

    def allreduce(
        self, obj: Any, op: ReduceOp = ReduceOp.SUM, tag: str = "generic"
    ) -> Any:
        """Reduce and distribute the result to all ranks."""
        raise NotImplementedError

    def barrier(self, tag: str = "generic") -> None:
        raise NotImplementedError

    def gather(self, obj: Any, root: int = 0, tag: str = "generic") -> list[Any] | None:
        """Gather per-rank objects at ``root`` (rank order)."""
        raise NotImplementedError

    def scatter(self, objs: list[Any] | None, root: int = 0, tag: str = "generic") -> Any:
        """Scatter a list (one element per rank) from ``root``."""
        raise NotImplementedError

    def send(self, obj: Any, dest: int, tag: str = "generic") -> None:
        raise NotImplementedError

    def recv(self, source: int, tag: str = "generic") -> Any:
        raise NotImplementedError

    # -- fault tolerance (ULFM-style; optional) ----------------------------- #
    # Communicators that cannot lose ranks (sequential, mocks) inherit the
    # identity behaviour; the multiprocess backend overrides all four.

    def world_rank(self, rank: int) -> int:
        """Map ``rank`` in this communicator to its original world rank."""
        return rank

    def world_ranks(self, ranks) -> tuple[int, ...]:
        """Map a set of ranks to original world ranks (sorted)."""
        return tuple(sorted(self.world_rank(int(r)) for r in ranks))

    def agree(self, failed) -> frozenset[int]:
        """Agree on the failed set across survivors (``MPI_Comm_agree``)."""
        return frozenset(int(r) for r in failed)

    def shrink(self, failed) -> "Comm":
        """Return a renumbered survivor communicator (``MPI_Comm_shrink``)."""
        raise CommError(
            f"{type(self).__name__} cannot shrink (no rank can fail)"
        )
