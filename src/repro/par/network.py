"""Analytic cost models for MPI collectives.

Hierarchical α–β models: a collective over ``P`` ranks packed onto ``N``
nodes runs an intra-node (shared-memory) stage over up to
``cores_per_node`` ranks and an inter-node stage over ``N`` nodes.

* broadcast / reduce: binomial tree, ``⌈log₂ n⌉`` rounds of ``α + mβ``;
* allreduce: recursive doubling for small messages
  (``⌈log₂ n⌉ (α + mβ + mγ)``), Rabenseifner's reduce-scatter +
  allgather (``2 log₂ n · α + 2m β + m γ``) for large ones — the standard
  mvapich2 algorithm switch;
* barrier: ``⌈log₂ n⌉ α``.

These are the textbook models (Thakur/Rabenseifner/Gropp, IJHPCA 2005) and
they capture exactly the effect the paper exploits: per-region cost has a
latency floor *plus a bandwidth term proportional to message size*, so
shrinking fork-join's broadcast payloads (traversal descriptors, parameter
arrays) is worth more than shaving the region count alone.
"""

from __future__ import annotations

import math

from repro.errors import ReproError
from repro.par.machine import MachineSpec

__all__ = [
    "bcast_time",
    "reduce_time",
    "allreduce_time",
    "barrier_time",
    "collective_time",
]

#: Message size (bytes) where allreduce switches from recursive doubling
#: to Rabenseifner (mvapich2 switches in this region).
_ALLREDUCE_SWITCH = 16 * 1024


def _stage_rounds(n: int) -> int:
    return int(math.ceil(math.log2(n))) if n > 1 else 0


def _split(machine: MachineSpec, n_ranks: int) -> tuple[int, int]:
    """(intra-node group size, number of nodes) for densely packed ranks."""
    if n_ranks < 1:
        raise ReproError("need at least one rank")
    n_nodes = machine.nodes_for_ranks(n_ranks)
    intra = min(n_ranks, machine.cores_per_node)
    return intra, n_nodes


def bcast_time(machine: MachineSpec, n_ranks: int, nbytes: float) -> float:
    """Binomial-tree broadcast: inter-node stage then intra-node stage."""
    if nbytes < 0:
        raise ReproError("negative message size")
    intra, nodes = _split(machine, n_ranks)
    t = _stage_rounds(nodes) * (
        machine.inter_latency_s + nbytes / machine.inter_bandwidth_bps
    )
    t += _stage_rounds(intra) * (
        machine.intra_latency_s + nbytes / machine.intra_bandwidth_bps
    )
    return t


def reduce_time(machine: MachineSpec, n_ranks: int, nbytes: float) -> float:
    """Binomial-tree reduce (adds the combine cost per hop)."""
    if nbytes < 0:
        raise ReproError("negative message size")
    intra, nodes = _split(machine, n_ranks)
    gamma = machine.reduce_flop_s_per_byte
    t = _stage_rounds(intra) * (
        machine.intra_latency_s
        + nbytes / machine.intra_bandwidth_bps
        + nbytes * gamma
    )
    t += _stage_rounds(nodes) * (
        machine.inter_latency_s
        + nbytes / machine.inter_bandwidth_bps
        + nbytes * gamma
    )
    return t


def _allreduce_stage(
    n: int, nbytes: float, latency: float, bandwidth: float, gamma: float
) -> float:
    rounds = _stage_rounds(n)
    if rounds == 0:
        return 0.0
    if nbytes <= _ALLREDUCE_SWITCH:
        # recursive doubling
        return rounds * (latency + nbytes / bandwidth + nbytes * gamma)
    # Rabenseifner: reduce-scatter + allgather
    return (
        2 * rounds * latency
        + 2 * nbytes / bandwidth * (n - 1) / n
        + nbytes * gamma * (n - 1) / n
    )


def allreduce_time(machine: MachineSpec, n_ranks: int, nbytes: float) -> float:
    """Hierarchical allreduce: intra-node reduce, inter-node allreduce,
    intra-node broadcast."""
    if nbytes < 0:
        raise ReproError("negative message size")
    intra, nodes = _split(machine, n_ranks)
    gamma = machine.reduce_flop_s_per_byte
    t = _stage_rounds(intra) * (
        machine.intra_latency_s
        + nbytes / machine.intra_bandwidth_bps
        + nbytes * gamma
    )
    t += _allreduce_stage(
        nodes, nbytes, machine.inter_latency_s, machine.inter_bandwidth_bps, gamma
    )
    t += _stage_rounds(intra) * (
        machine.intra_latency_s + nbytes / machine.intra_bandwidth_bps
    )
    return t


def barrier_time(machine: MachineSpec, n_ranks: int) -> float:
    """Dissemination barrier."""
    intra, nodes = _split(machine, n_ranks)
    return (
        _stage_rounds(intra) * machine.intra_latency_s
        + _stage_rounds(nodes) * machine.inter_latency_s
    )


def collective_time(
    machine: MachineSpec,
    n_ranks: int,
    kind: str,
    nbytes: float = 0.0,
) -> float:
    """Dispatch by collective name (used by the runtime synthesizer)."""
    if kind == "bcast":
        return bcast_time(machine, n_ranks, nbytes)
    if kind == "reduce":
        return reduce_time(machine, n_ranks, nbytes)
    if kind == "allreduce":
        return allreduce_time(machine, n_ranks, nbytes)
    if kind == "barrier":
        return barrier_time(machine, n_ranks)
    raise ReproError(f"unknown collective {kind!r}")
