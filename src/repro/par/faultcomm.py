"""Deterministic rank-failure injection for the multiprocess backend.

:class:`FaultInjectingComm` wraps any :class:`~repro.par.comm.Comm` and
kills (or hangs) the process at a scheduled point, so the fault-tolerance
machinery can be exercised reproducibly:

* **die** — the process exits immediately (``os._exit``), closing its
  pipe ends; peers observe EOF, the fail-stop model of ULFM.
* **hang** — the process goes silent for ``hang_seconds`` and then
  exits; peers can only detect this through bounded receive timeouts.
* **slow** — the process sleeps ``hang_seconds`` once and then
  *continues normally*: a transient straggler, not a failure.  Nothing
  to detect or recover — the injection exists so the live monitor's
  straggler-vs-stall classification can be exercised deterministically.

Schedules are expressed as a :class:`FaultPlan`: either explicit
``rank @ call-number`` triggers (the call number counts that rank's
communicator operations — deterministic because the engines are
deterministic), or a seeded per-call probability, which is equally
reproducible under a fixed seed.

The wrapper counts *top-level* calls on the interface it wraps (an
``allreduce`` is one call even though the underlying implementation
composes a reduce and a bcast).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import CommError
from repro.par.comm import Comm, ReduceOp

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjectingComm",
    "FAULT_EXIT_CODE",
    "MODE_DIE",
    "MODE_HANG",
    "MODE_SLOW",
    "WHEN_ANY",
    "WHEN_RECOVERY",
]

#: Exit code of a fault-injected death (distinguishes injected kills from
#: genuine crashes in process tables / CI logs).
FAULT_EXIT_CODE = 77

MODE_DIE = "die"
MODE_HANG = "hang"
MODE_SLOW = "slow"
_MODES = (MODE_DIE, MODE_HANG, MODE_SLOW)

#: Trigger scopes: ``any`` counts every communicator call since launch;
#: ``recovery`` arms only once this rank enters its first recovery and
#: counts recovery operations (``agree`` is call 1, ``shrink`` call 2,
#: then every post-resume collective) — the knob that injects a *second*
#: fault during agree/shrink or right after a resume.
WHEN_ANY = "any"
WHEN_RECOVERY = "recovery"
_WHENS = (WHEN_ANY, WHEN_RECOVERY)


@dataclass(frozen=True)
class FaultSpec:
    """Kill ``rank`` when it issues its ``at_call``-th communicator call.

    With ``when="recovery"`` the counter is the rank's *recovery* call
    counter instead: it starts at the rank's first ``agree`` (so
    ``at_call=1`` dies entering agreement, ``at_call=2`` dies inside the
    shrink, ``at_call=3`` dies on the first post-resume collective...),
    which expresses multi-fault schedules where a second failure lands
    while the mesh is still repairing the first.
    """

    rank: int
    at_call: int
    mode: str = MODE_DIE
    when: str = WHEN_ANY

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise CommError("fault rank must be non-negative")
        if self.at_call < 1:
            raise CommError("fault call number counts from 1")
        if self.mode not in _MODES:
            raise CommError(f"unknown fault mode {self.mode!r}")
        if self.when not in _WHENS:
            raise CommError(f"unknown fault trigger scope {self.when!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of rank failures.

    Either a tuple of explicit :class:`FaultSpec` triggers, or a seeded
    per-call ``probability`` (each rank draws from its own
    ``default_rng(seed + rank)`` stream, so firing points are a pure
    function of ``(seed, rank, call history)``).
    """

    specs: tuple[FaultSpec, ...] = ()
    probability: float = 0.0
    seed: int | None = None
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise CommError("fault probability must be in [0, 1]")
        if self.probability > 0.0 and self.seed is None:
            raise CommError("probabilistic fault plans need a seed")
        if self.hang_seconds <= 0:
            raise CommError("hang_seconds must be positive")

    @classmethod
    def kill(cls, rank: int, at_call: int, mode: str = MODE_DIE,
             hang_seconds: float = 30.0, when: str = WHEN_ANY) -> "FaultPlan":
        """Kill one rank at one deterministic point."""
        return cls(specs=(FaultSpec(rank, at_call, mode, when),),
                   hang_seconds=hang_seconds)

    @classmethod
    def random(cls, probability: float, seed: int,
               hang_seconds: float = 30.0) -> "FaultPlan":
        """Seeded per-call kill probability on every rank."""
        return cls(probability=probability, seed=seed,
                   hang_seconds=hang_seconds)

    @classmethod
    def parse(cls, text: str, hang_seconds: float = 30.0) -> "FaultPlan":
        """Parse the CLI syntax ``RANK@CALL[:MODE[:WHEN]][,...]``.

        Examples: ``"2@40"`` (rank 2 dies at its 40th comm call),
        ``"1@25:hang"`` (rank 1 goes silent), ``"2@30:slow"`` (rank 2
        straggles once, then continues), ``"0@10,3@80"`` (two faults),
        ``"2@40,1@2:die:recovery"`` (rank 1 dies inside the shrink that
        recovery from rank 2's death triggers).
        """
        specs = []
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            body, _, rest = item.partition(":")
            mode, _, when = rest.partition(":")
            rank_s, sep, call_s = body.partition("@")
            if not sep:
                raise CommError(
                    f"bad fault spec {item!r}: expected RANK@CALL[:MODE[:WHEN]]"
                )
            try:
                rank, at_call = int(rank_s), int(call_s)
            except ValueError as exc:
                raise CommError(f"bad fault spec {item!r}: {exc}") from exc
            specs.append(FaultSpec(rank, at_call, mode or MODE_DIE,
                                   when or WHEN_ANY))
        if not specs:
            raise CommError(f"no fault specs in {text!r}")
        return cls(specs=tuple(specs), hang_seconds=hang_seconds)

    def describe(self) -> str:
        if self.probability > 0.0:
            return (f"p={self.probability} per call "
                    f"(seed {self.seed})")

        def one(s: FaultSpec) -> str:
            out = f"{s.rank}@{s.at_call}"
            if s.mode != MODE_DIE or s.when != WHEN_ANY:
                out += f":{s.mode}"
            if s.when != WHEN_ANY:
                out += f":{s.when}"
            return out

        return ",".join(one(s) for s in self.specs)


def _default_fire(mode: str, hang_seconds: float) -> None:
    """Actually take the process down (or silent)."""
    if mode == MODE_SLOW:
        # A transient straggler: stall this rank's compute once, then
        # resume.  Peers just wait (no failure, nothing to recover).
        time.sleep(hang_seconds)
        return
    if mode == MODE_HANG:
        # Go silent: peers must detect this via receive timeouts.  The
        # eventual exit bounds how long an orchestrating ``run_mpi``
        # waits for this rank's (never-coming) result.
        time.sleep(hang_seconds)
    os._exit(FAULT_EXIT_CODE)


class FaultInjectingComm(Comm):
    """A communicator that dies on schedule.

    Delegates everything to ``inner``; before each top-level call it
    advances the per-rank call counter and fires the plan if a trigger
    matches.  ``plan_rank`` pins the identity used for trigger matching
    to the rank's *original* (world) number, so schedules stay meaningful
    across :meth:`shrink` renumbering.  ``on_fire`` exists for in-process
    tests (the default really exits).
    """

    def __init__(
        self,
        inner: Comm,
        plan: FaultPlan,
        plan_rank: int | None = None,
        calls: int = 0,
        recovery_calls: int = 0,
        on_fire: Callable[[str, float], None] = _default_fire,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.plan_rank = inner.rank if plan_rank is None else plan_rank
        self.calls = calls
        #: Recovery-scoped counter: 0 until this rank's first ``agree``,
        #: then every recovery step and post-resume collective counts.
        self.recovery_calls = recovery_calls
        self._on_fire = on_fire
        self._rng = (
            np.random.default_rng(plan.seed + self.plan_rank)
            if plan.probability > 0.0
            else None
        )

    # -- trigger ----------------------------------------------------------- #
    def _tick(self) -> None:
        self.calls += 1
        if self.recovery_calls:
            self.recovery_calls += 1
        mode = self._firing_mode()
        if mode is not None:
            self._on_fire(mode, self.plan.hang_seconds)

    def _tick_recovery(self) -> None:
        """Advance only the recovery counter (``agree``/``shrink`` are
        control operations, not application collectives — the primary
        call counter must stay aligned with the undisturbed schedule)."""
        self.recovery_calls += 1
        mode = self._firing_mode()
        if mode is not None:
            self._on_fire(mode, self.plan.hang_seconds)

    def _firing_mode(self) -> str | None:
        for spec in self.plan.specs:
            if spec.rank != self.plan_rank:
                continue
            counter = (self.recovery_calls if spec.when == WHEN_RECOVERY
                       else self.calls)
            if spec.at_call == counter:
                return spec.mode
        if self._rng is not None:
            if float(self._rng.random()) < self.plan.probability:
                return MODE_DIE
        return None

    # -- delegation -------------------------------------------------------- #
    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def bytes_by_tag(self):
        return self.inner.bytes_by_tag

    @property
    def calls_by_tag(self):
        return self.inner.calls_by_tag

    def world_rank(self, rank: int) -> int:
        return self.inner.world_rank(rank)

    def world_ranks(self, ranks) -> tuple[int, ...]:
        return self.inner.world_ranks(ranks)

    def send(self, obj: Any, dest: int, tag: str = "generic") -> None:
        self._tick()
        self.inner.send(obj, dest, tag)

    def recv(self, source: int, tag: str = "generic") -> Any:
        self._tick()
        return self.inner.recv(source, tag)

    def bcast(self, obj: Any, root: int = 0, tag: str = "generic") -> Any:
        self._tick()
        return self.inner.bcast(obj, root, tag)

    def reduce(self, obj: Any, op: ReduceOp = ReduceOp.SUM, root: int = 0,
               tag: str = "generic") -> Any:
        self._tick()
        return self.inner.reduce(obj, op, root, tag)

    def allreduce(self, obj: Any, op: ReduceOp = ReduceOp.SUM,
                  tag: str = "generic") -> Any:
        self._tick()
        return self.inner.allreduce(obj, op, tag)

    def barrier(self, tag: str = "generic") -> None:
        self._tick()
        self.inner.barrier(tag)

    def gather(self, obj: Any, root: int = 0, tag: str = "generic"):
        self._tick()
        return self.inner.gather(obj, root, tag)

    def scatter(self, objs: list[Any] | None, root: int = 0,
                tag: str = "generic") -> Any:
        self._tick()
        return self.inner.scatter(objs, root, tag)

    # -- recovery (wrapper preserved, recovery-scoped triggers fire) ------- #
    def agree(self, failed) -> frozenset[int]:
        """Entering agreement is recovery call 1: a ``when="recovery"``
        spec with ``at_call=1`` takes this rank down mid-consensus."""
        self._tick_recovery()
        return self.inner.agree(failed)

    def shrink(self, failed) -> "FaultInjectingComm":
        """Shrink the inner communicator; the wrapper (with its original
        plan identity and running call counters) survives, so later
        triggers for this rank still fire after recovery.  Entering the
        shrink is recovery call 2 — the fault-during-shrink point."""
        self._tick_recovery()
        shrunk = self.inner.shrink(failed)
        return FaultInjectingComm(
            shrunk, self.plan, plan_rank=self.plan_rank, calls=self.calls,
            recovery_calls=self.recovery_calls, on_fire=self._on_fire,
        )
