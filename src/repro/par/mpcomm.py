"""Real multi-process communicator (the "actually parallel" backend).

``run_mpi(n, fn, payloads)`` forks ``n`` OS processes connected by a full
mesh of pipes and runs ``fn(comm, payload)`` on every rank, mpiexec-style.
Collectives are implemented rank-rooted with **rank-ordered reductions**,
so results are bitwise deterministic — the reproducibility property the
paper requires of ``MPI_Allreduce`` (Section III-B).

This backend exists to prove the engines genuinely run distributed (the
consistency tests execute both schemes on 2–4 ranks and compare against
the sequential reference); the performance model uses the lock-step
simulator instead.

Fault tolerance (paper Section V, ULFM-style)
---------------------------------------------
Every receive is bounded: a peer whose pipe reaches EOF (process death)
or that stays silent past ``detect_timeout`` raises
:class:`~repro.errors.RankFailureError` instead of hanging the mesh.
The rank that detects a failure inside a collective notifies the other
participants, so the whole mesh surfaces the failure within one
detection timeout.  Survivors then

* :meth:`MPComm.agree` on the failed set (the ``MPI_Comm_agree``
  analogue — a rank-ordered round coordinated by the lowest surviving
  rank), and
* :meth:`MPComm.shrink` the communicator (the ``MPI_Comm_shrink``
  analogue — survivors drain stale in-flight messages and renumber
  densely, preserving rank-ordered determinism).

Every process holds *only* its own pipe ends: both the parent and each
child close every inherited descriptor that is not theirs, which is what
makes EOF-based death detection possible in the first place (a forked
sibling holding a duplicate write end would keep the pipe alive forever).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
import traceback
from collections import defaultdict
from typing import Any, Callable

from repro.errors import CommError, RankFailureError
from repro.par.comm import Comm, ReduceOp, apply_reduce, payload_nbytes

__all__ = [
    "MPComm",
    "run_mpi",
    "DEFAULT_DETECT_TIMEOUT",
    "DEPENDENT_WAIT_SCALE",
]

#: Default seconds a receive may stay silent before the peer is declared dead.
DEFAULT_DETECT_TIMEOUT = 60.0

#: Timeout multiplier for *dependent* waits — receives whose sender may
#: itself be blocked detecting a third rank (the bcast half of an
#: allreduce, a barrier release, agreement results, shrink marks).  Only
#: *direct* waits on a rank's own contribution use ``detect_timeout``
#: unscaled; everything downstream waits longer, so a genuine
#: detection's failure notice always outruns a dependent waiter's own
#: timeout.  Without the stagger, symmetric timeouts expire together and
#: a waiter one hop from the hung rank can misdeclare the *relaying*
#: rank dead — survivors then agree on disjoint failed sets and the
#: mesh partitions (observed live via the heartbeat channel:
#: ``repro infer --monitor`` showed rank 1 blaming rank 0 two
#: milliseconds before rank 0's own notice arrived).
DEPENDENT_WAIT_SCALE = 2.0

_FAILURE = "__rank_failure__"
_AGREE_REQ = "__agree_req__"
_AGREE_RESULT = "__agree_result__"
_SHRINK_MARK = "__shrink_mark__"
_BARRIER = "__barrier__"


def _is_ctrl(msg: Any, kind: str) -> bool:
    return isinstance(msg, tuple) and len(msg) == 2 and msg[0] == kind


class MPComm(Comm):
    """Mesh-of-pipes communicator for one rank.

    ``world`` maps this communicator's ranks back to the ranks of the
    original (pre-:meth:`shrink`) communicator, for reporting.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        conns: dict[int, Any],
        detect_timeout: float | None = DEFAULT_DETECT_TIMEOUT,
        world: tuple[int, ...] | None = None,
    ) -> None:
        self._rank = rank
        self._size = size
        self._conns = conns
        self._detect_timeout = detect_timeout
        self._world = tuple(world) if world is not None else tuple(range(size))
        self.bytes_by_tag: dict[str, int] = defaultdict(int)
        self.calls_by_tag: dict[str, int] = defaultdict(int)
        #: Called with the failed ranks' *world* numbers when this rank
        #: shrinks past them.  ``run_mpi`` hooks this so the parent can
        #: reap hung processes the mesh has agreed to exclude, instead of
        #: waiting out their silence.
        self.on_failure: Callable[[tuple[int, ...]], None] | None = None

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def world_rank(self, rank: int) -> int:
        """Original (pre-shrink) rank number of ``rank``."""
        return self._world[rank]

    def world_ranks(self, ranks) -> tuple[int, ...]:
        return tuple(sorted(self._world[int(r)] for r in ranks))

    def _account(self, obj: Any, tag: str) -> None:
        self.bytes_by_tag[tag] += payload_nbytes(obj)
        self.calls_by_tag[tag] += 1

    # -- failure-aware primitives ----------------------------------------- #
    def _recv_raw(self, source: int, intercept: bool = True,
                  timeout_scale: float = 1.0) -> Any:
        """Receive from ``source`` with death/silence detection.

        Raises :class:`RankFailureError` on pipe EOF, on OS-level pipe
        errors, on silence past ``detect_timeout * timeout_scale``, and
        (when ``intercept``) on an incoming peer failure notice.
        Dependent waits pass ``timeout_scale=DEPENDENT_WAIT_SCALE`` so a
        direct detection one hop away is always relayed (as a failure
        notice on this very pipe) before this wait gives up.
        """
        conn = self._conns[source]
        try:
            if self._detect_timeout is not None and not conn.poll(
                self._detect_timeout * timeout_scale
            ):
                raise RankFailureError(
                    {source},
                    f"rank {source} (world {self._world[source]}) silent for "
                    f"{self._detect_timeout * timeout_scale:.1f}s",
                )
            msg = conn.recv()
        except (EOFError, OSError) as exc:
            raise RankFailureError(
                {source},
                f"lost connection to rank {source} "
                f"(world {self._world[source]}): {exc!r}",
            ) from exc
        if intercept and _is_ctrl(msg, _FAILURE):
            raise RankFailureError(msg[1], "peer reported rank failure")
        return msg

    def _send_raw(self, dest: int, obj: Any) -> None:
        try:
            self._conns[dest].send(obj)
        except (BrokenPipeError, OSError) as exc:
            raise RankFailureError(
                {dest},
                f"cannot send to rank {dest} "
                f"(world {self._world[dest]}): {exc!r}",
            ) from exc

    def _abort_collective(self, failed) -> None:
        """Notify every presumed-alive peer of ``failed``, then raise.

        This is what turns one rank's local detection into a mesh-wide
        event: peers blocked waiting on *us* (e.g. for the broadcast half
        of an allreduce) receive the notice instead of data and raise in
        turn.
        """
        failed = {int(r) for r in failed}
        for r in range(self._size):
            if r == self._rank or r in failed:
                continue
            try:
                self._conns[r].send((_FAILURE, tuple(sorted(failed))))
            except OSError:
                failed.add(r)
        raise RankFailureError(failed)

    # -- point to point -------------------------------------------------- #
    def send(self, obj: Any, dest: int, tag: str = "generic") -> None:
        if dest == self._rank:
            raise CommError("send to self")
        self._account(obj, tag)
        self._send_raw(dest, obj)

    def recv(self, source: int, tag: str = "generic") -> Any:
        if source == self._rank:
            raise CommError("recv from self")
        return self._recv_raw(source)

    # -- collectives ------------------------------------------------------ #
    def bcast(self, obj: Any, root: int = 0, tag: str = "generic") -> Any:
        # replicheck: ignore[R003] -- collective implementation: root/non-root asymmetry IS the bcast protocol, matched by construction
        if self._rank == root:
            self._account(obj, tag)
            try:
                for r in range(self._size):
                    if r != root:
                        self._send_raw(r, obj)
            except RankFailureError as exc:
                self._abort_collective(exc.failed_ranks)
            return obj
        # dependent wait: the root may be mid-detection of another rank
        return self._recv_raw(root, timeout_scale=DEPENDENT_WAIT_SCALE)

    def reduce(
        self, obj: Any, op: ReduceOp = ReduceOp.SUM, root: int = 0,
        tag: str = "generic",
    ) -> Any:
        # replicheck: ignore[R003] -- collective implementation: root gathers, leaves send; the asymmetric arms are the two halves of one reduce
        if self._rank == root:
            contributions = []
            try:
                for r in range(self._size):
                    contributions.append(
                        obj if r == root else self._recv_raw(r)
                    )
            except RankFailureError as exc:
                self._abort_collective(exc.failed_ranks)
            self._account(obj, tag)
            return apply_reduce(op, contributions)
        self._account(obj, tag)
        self._send_raw(root, obj)
        return None

    def allreduce(self, obj: Any, op: ReduceOp = ReduceOp.SUM, tag: str = "generic") -> Any:
        result = self.reduce(obj, op, root=0, tag=tag)
        return self.bcast(result, root=0, tag=tag)

    def barrier(self, tag: str = "generic") -> None:
        self.calls_by_tag[tag] += 1
        if self._rank == 0:
            try:
                for r in range(1, self._size):
                    self._recv_raw(r)
                for r in range(1, self._size):
                    self._send_raw(r, (_BARRIER,))
            except RankFailureError as exc:
                self._abort_collective(exc.failed_ranks)
        else:
            self._send_raw(0, (_BARRIER,))
            # dependent wait: rank 0 may be mid-detection of another rank
            self._recv_raw(0, timeout_scale=DEPENDENT_WAIT_SCALE)

    def gather(self, obj: Any, root: int = 0, tag: str = "generic") -> list[Any] | None:
        if self._rank == root:
            out = []
            try:
                for r in range(self._size):
                    out.append(obj if r == root else self._recv_raw(r))
            except RankFailureError as exc:
                self._abort_collective(exc.failed_ranks)
            return out
        self._account(obj, tag)
        self._send_raw(root, obj)
        return None

    def scatter(self, objs: list[Any] | None, root: int = 0, tag: str = "generic") -> Any:
        # replicheck: ignore[R003] -- collective implementation: root sends one share per rank, non-roots receive; asymmetry is the scatter protocol
        if self._rank == root:
            if objs is None or len(objs) != self._size:
                raise CommError("scatter needs one element per rank")
            try:
                for r in range(self._size):
                    if r != root:
                        self._account(objs[r], tag)
                        self._send_raw(r, objs[r])
            except RankFailureError as exc:
                self._abort_collective(exc.failed_ranks)
            return objs[root]
        # dependent wait: the root may be mid-detection of another rank
        return self._recv_raw(root, timeout_scale=DEPENDENT_WAIT_SCALE)

    # -- ULFM-style recovery ---------------------------------------------- #
    def _recv_ctrl(self, source: int, want: str, known: set[int]) -> set[int]:
        """Receive a typed control message, discarding stale in-flight
        data (aborted-collective contributions, duplicate failure
        notices) that may precede it on the FIFO pipe.

        Control waits are always dependent waits: the peer may still be
        inside its own (scaled) detection window, or collecting
        agreement contributions from a rank it has not yet declared
        dead, before it can send us anything."""
        while True:
            msg = self._recv_raw(source, intercept=False,
                                 timeout_scale=DEPENDENT_WAIT_SCALE)
            if _is_ctrl(msg, want):
                return {int(r) for r in msg[1]}
            if _is_ctrl(msg, _FAILURE):
                known.update(int(r) for r in msg[1])
                continue
            # anything else is stale data from an aborted collective

    def agree(self, failed) -> frozenset[int]:
        """Agree with the other survivors on the set of failed ranks.

        The ``MPI_Comm_agree`` analogue: the lowest presumed-surviving
        rank coordinates, unions every survivor's locally-detected failed
        set (a survivor that stays silent past the detection timeout is
        itself added), and distributes the result.  If the coordinator
        dies mid-agreement the round restarts under the next survivor.
        """
        known = {int(r) for r in failed}
        known.discard(self._rank)
        while True:
            survivors = [r for r in range(self._size) if r not in known]
            if not survivors:  # pragma: no cover - defensive
                raise CommError("agreement failed: no surviving ranks")
            if survivors == [self._rank]:
                return frozenset(known)
            coord = survivors[0]
            try:
                if self._rank == coord:
                    for r in survivors[1:]:
                        if r in known:
                            continue
                        try:
                            known |= self._recv_ctrl(r, _AGREE_REQ, known)
                        except RankFailureError as exc:
                            known.update(int(x) for x in exc.failed_ranks)
                    known.discard(self._rank)
                    out = tuple(sorted(known))
                    for r in range(self._size):
                        if r == self._rank or r in known:
                            continue
                        try:
                            self._conns[r].send((_AGREE_RESULT, out))
                        except OSError:
                            # died after contributing; the shrink drain
                            # (or the next collective) will surface it
                            pass
                    return frozenset(known)
                self._send_raw(coord, (_AGREE_REQ, tuple(sorted(known))))
                return frozenset(self._recv_ctrl(coord, _AGREE_RESULT, known))
            except RankFailureError as exc:
                known.update(int(r) for r in exc.failed_ranks)
                known.discard(self._rank)

    def shrink(self, failed) -> "MPComm":
        """Return a densely renumbered communicator over the survivors.

        The ``MPI_Comm_shrink`` analogue.  Survivors exchange a shrink
        mark and drain every pairwise pipe up to it, flushing stale
        messages of the aborted collective, so the new communicator
        starts clean; survivor order is preserved, keeping rank-ordered
        reductions bitwise deterministic.  Byte/call accounting carries
        over.  A survivor dying mid-shrink raises
        :class:`RankFailureError`; callers should re-agree and retry.
        """
        failed = {int(r) for r in failed}
        if self._rank in failed:
            raise CommError("cannot shrink: own rank is in the failed set")
        if not failed:
            return self
        survivors = [r for r in range(self._size) if r not in failed]
        mark = (_SHRINK_MARK, tuple(sorted(failed)))
        for r in survivors:
            if r != self._rank:
                self._send_raw(r, mark)
        for r in survivors:
            if r == self._rank:
                continue
            while True:
                # dependent wait: the peer may still be finishing its
                # own agreement round before it sends the mark
                msg = self._recv_raw(r, intercept=False,
                                     timeout_scale=DEPENDENT_WAIT_SCALE)
                if _is_ctrl(msg, _SHRINK_MARK):
                    break
        for r in sorted(failed):
            conn = self._conns.pop(r, None)
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already gone
                    pass
        new_conns = {
            new_r: self._conns[old_r]
            for new_r, old_r in enumerate(survivors)
            if old_r != self._rank
        }
        shrunk = MPComm(
            survivors.index(self._rank),
            len(survivors),
            new_conns,
            detect_timeout=self._detect_timeout,
            world=tuple(self._world[r] for r in survivors),
        )
        # accounting continues across the failure, in the same dicts
        shrunk.bytes_by_tag = self.bytes_by_tag
        shrunk.calls_by_tag = self.calls_by_tag
        shrunk.on_failure = self.on_failure
        if self.on_failure is not None:
            try:
                self.on_failure(tuple(self._world[r] for r in sorted(failed)))
            except OSError:  # pragma: no cover - parent gone
                pass
        return shrunk


def _child(
    rank: int,
    size: int,
    all_ends: dict[int, dict[int, Any]],
    result_pipes: list,
    fn: Callable,
    payload: Any,
    detect_timeout: float | None,
) -> None:
    # Close every inherited descriptor that is not ours: without this a
    # dead sibling's pipes would be held open by our duplicate fds and
    # its peers (and the parent) would never observe EOF.
    for q, peer_conns in all_ends.items():
        if q == rank:
            continue
        for conn in peer_conns.values():
            conn.close()
    for q, (recv_end, send_end) in enumerate(result_pipes):
        recv_end.close()
        if q != rank:
            send_end.close()
    result_conn = result_pipes[rank][1]
    comm = MPComm(rank, size, all_ends[rank], detect_timeout=detect_timeout)
    comm.on_failure = lambda world_failed: result_conn.send(
        ("failure_notice", world_failed, {})
    )
    try:
        result = fn(comm, payload)
        result_conn.send(("ok", result, dict(comm.bytes_by_tag)))
    except RankFailureError as exc:
        result_conn.send(("failed", tuple(sorted(exc.failed_ranks)), {}))
    except BaseException:
        result_conn.send(("error", traceback.format_exc(), {}))
    finally:
        result_conn.close()


def run_mpi(
    n_ranks: int,
    fn: Callable[[Comm, Any], Any],
    payloads: list[Any] | None = None,
    timeout: float = 600.0,
    detect_timeout: float | None = None,
    allow_failures: bool = False,
    forward_sigterm: bool = False,
) -> list[Any]:
    """Run ``fn(comm, payloads[rank])`` on ``n_ranks`` forked processes.

    Returns the per-rank results in rank order.  Any rank raising makes
    the whole call raise :class:`CommError` with the child traceback.

    ``detect_timeout`` bounds how long any in-mesh receive may wait on a
    silent peer before raising :class:`RankFailureError` (defaults to
    ``min(60, timeout)``).  A rank dying without reporting raises
    :class:`RankFailureError` naming the dead ranks — unless
    ``allow_failures`` is set, in which case dead ranks simply yield
    ``None`` results (the mode the fault-tolerant launchers use: the
    survivors' results carry the recovery story).

    ``forward_sigterm`` makes the launching process relay a ``SIGTERM``
    it receives to every live rank (and keep reaping results) instead of
    dying and orphaning the mesh — the parent half of cooperative
    cancellation (see :mod:`repro.engines.cancel`).  Only effective when
    called from the main thread, which owns signal handling.
    """
    if n_ranks < 1:
        raise CommError("need at least one rank")
    if payloads is None:
        payloads = [None] * n_ranks
    if len(payloads) != n_ranks:
        raise CommError("one payload per rank required")
    if n_ranks == 1:
        from repro.engines.cancel import install_sigterm_flag, restore_sigterm
        from repro.par.seqcomm import SequentialComm

        prev = install_sigterm_flag() if forward_sigterm else None
        try:
            return [fn(SequentialComm(), payloads[0])]
        finally:
            if forward_sigterm:
                restore_sigterm(prev)
    if detect_timeout is None:
        detect_timeout = min(DEFAULT_DETECT_TIMEOUT, timeout)

    ctx = mp.get_context("fork")
    # full mesh of duplex pipes
    ends: dict[int, dict[int, Any]] = {r: {} for r in range(n_ranks)}
    for i in range(n_ranks):
        for j in range(i + 1, n_ranks):
            a, b = ctx.Pipe(duplex=True)
            ends[i][j] = a
            ends[j][i] = b
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(n_ranks)]
    procs = []
    for r in range(n_ranks):
        proc = ctx.Process(
            target=_child,
            args=(r, n_ranks, ends, result_pipes, fn, payloads[r],
                  detect_timeout),
        )
        proc.start()
        procs.append(proc)
    # Drop the parent's copies of every child-side descriptor so that a
    # rank's death closes its pipes for good (EOF-based detection).
    for r in range(n_ranks):
        for conn in ends[r].values():
            conn.close()
        result_pipes[r][1].close()

    results: list[Any] = [None] * n_ranks
    errors: list[str] = []
    failed: set[int] = set()
    pending = set(range(n_ranks))
    prev_sigterm: Any = None
    sigterm_installed = False
    if forward_sigterm and threading.current_thread() is threading.main_thread():
        def _relay(signum: int, frame: Any) -> None:
            # Relay only — the ranks stop cooperatively at the next
            # iteration boundary and report results; the parent keeps
            # reaping.  Dead procs are skipped (ESRCH races are benign).
            for proc in procs:
                if proc.is_alive() and proc.pid:
                    try:
                        os.kill(proc.pid, signal.SIGTERM)
                    except OSError:  # pragma: no cover - reaped mid-loop
                        pass

        prev_sigterm = signal.signal(signal.SIGTERM, _relay)
        sigterm_installed = True
        from repro.engines.cancel import cancel_requested

        if cancel_requested():
            # a SIGTERM landed before the relay existed (caught by an
            # earlier flag handler, e.g. the CLI's); the ranks forked
            # after the flag was set inherited it, but a signal arriving
            # between fork and here did not — deliver it once now
            _relay(signal.SIGTERM, None)
    try:
        # Poll all ranks round-robin so one rank's early crash surfaces
        # immediately instead of deadlocking its peers until the timeout.
        # replicheck: ignore[R004] -- run_mpi is the parent orchestrator, not a replica; failure detection is intentionally time-based
        deadline = time.monotonic() + timeout
        # replicheck: ignore[R004] -- parent-side liveness tracking, not replica control flow
        last_progress = time.monotonic()
        while pending:
            progressed = False
            for r in sorted(pending):
                recv_end = result_pipes[r][0]
                if recv_end.poll(0.05):
                    progressed = True
                    try:
                        status, value, _bytes = recv_end.recv()
                    except (EOFError, OSError):
                        # the rank died without reporting
                        failed.add(r)
                        pending.discard(r)
                        continue
                    if status == "failure_notice":
                        # survivors agreed these ranks are out of the
                        # mesh; reap hung ones instead of waiting out
                        # their silence (r itself still owes a result)
                        for x in value:
                            x = int(x)
                            failed.add(x)
                            if x in pending and procs[x].is_alive():
                                procs[x].terminate()
                        continue
                    pending.discard(r)
                    if status == "ok":
                        results[r] = value
                    elif status == "failed":
                        # a survivor aborted because of dead peers
                        failed.update(int(x) for x in value)
                    else:
                        errors.append(f"rank {r}:\n{value}")
            # replicheck: ignore[R004] -- parent-side hang detection deadline, not replica control flow
            now = time.monotonic()
            if progressed:
                last_progress = now
            if errors:
                break  # peers of a crashed rank may hang; bail out now
            if failed and now - last_progress > (
                (1.0 + DEPENDENT_WAIT_SCALE) * detect_timeout + 5.0
            ):
                # a failure happened and nothing has moved for a full
                # detection window (direct wait plus the scaled
                # dependent wait a relayed detection may add): whatever
                # is left is wedged
                failed.update(pending)
                break
            if now > deadline:
                if failed:
                    failed.update(pending)
                else:
                    errors.append(
                        f"ranks {sorted(pending)}: timeout after {timeout}s"
                    )
                break
    finally:
        if sigterm_installed:
            signal.signal(signal.SIGTERM, prev_sigterm)
        # A hung or aborted mesh cannot be joined politely: terminate
        # whatever is still alive first, then reap, then close our pipe
        # ends so nothing leaks across tests.
        if errors or pending or failed:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - terminate() refused
                proc.kill()
                proc.join()
        for r in range(n_ranks):
            try:
                result_pipes[r][0].close()
            except OSError:  # pragma: no cover
                pass
    if errors:
        raise CommError("distributed run failed:\n" + "\n".join(errors))
    if failed and not allow_failures:
        raise RankFailureError(
            failed, f"rank(s) {sorted(failed)} failed during distributed run"
        )
    return results
