"""Real multi-process communicator (the "actually parallel" backend).

``run_mpi(n, fn, payloads)`` forks ``n`` OS processes connected by a full
mesh of pipes and runs ``fn(comm, payload)`` on every rank, mpiexec-style.
Collectives are implemented rank-rooted with **rank-ordered reductions**,
so results are bitwise deterministic — the reproducibility property the
paper requires of ``MPI_Allreduce`` (Section III-B).

This backend exists to prove the engines genuinely run distributed (the
consistency tests execute both schemes on 2–4 ranks and compare against
the sequential reference); the performance model uses the lock-step
simulator instead.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from collections import defaultdict
from typing import Any, Callable

from repro.errors import CommError
from repro.par.comm import Comm, ReduceOp, apply_reduce, payload_nbytes

__all__ = ["MPComm", "run_mpi"]


class MPComm(Comm):
    """Mesh-of-pipes communicator for one rank."""

    def __init__(self, rank: int, size: int, conns: dict[int, Any]) -> None:
        self._rank = rank
        self._size = size
        self._conns = conns
        self.bytes_by_tag: dict[str, int] = defaultdict(int)
        self.calls_by_tag: dict[str, int] = defaultdict(int)

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def _account(self, obj: Any, tag: str) -> None:
        self.bytes_by_tag[tag] += payload_nbytes(obj)
        self.calls_by_tag[tag] += 1

    # -- point to point -------------------------------------------------- #
    def send(self, obj: Any, dest: int, tag: str = "generic") -> None:
        if dest == self._rank:
            raise CommError("send to self")
        self._account(obj, tag)
        self._conns[dest].send(obj)

    def recv(self, source: int, tag: str = "generic") -> Any:
        if source == self._rank:
            raise CommError("recv from self")
        return self._conns[source].recv()

    # -- collectives ------------------------------------------------------ #
    def bcast(self, obj: Any, root: int = 0, tag: str = "generic") -> Any:
        if self._rank == root:
            self._account(obj, tag)
            for r in range(self._size):
                if r != root:
                    self._conns[r].send(obj)
            return obj
        return self._conns[root].recv()

    def reduce(
        self, obj: Any, op: ReduceOp = ReduceOp.SUM, root: int = 0,
        tag: str = "generic",
    ) -> Any:
        if self._rank == root:
            contributions = []
            for r in range(self._size):
                contributions.append(obj if r == root else self._conns[r].recv())
            self._account(obj, tag)
            return apply_reduce(op, contributions)
        self._account(obj, tag)
        self._conns[root].send(obj)
        return None

    def allreduce(self, obj: Any, op: ReduceOp = ReduceOp.SUM, tag: str = "generic") -> Any:
        result = self.reduce(obj, op, root=0, tag=tag)
        return self.bcast(result, root=0, tag=tag)

    def barrier(self, tag: str = "generic") -> None:
        self.calls_by_tag[tag] += 1
        if self._rank == 0:
            for r in range(1, self._size):
                self._conns[r].recv()
            for r in range(1, self._size):
                self._conns[r].send(("__barrier__",))
        else:
            self._conns[0].send(("__barrier__",))
            self._conns[0].recv()

    def gather(self, obj: Any, root: int = 0, tag: str = "generic") -> list[Any] | None:
        if self._rank == root:
            out = []
            for r in range(self._size):
                out.append(obj if r == root else self._conns[r].recv())
            return out
        self._account(obj, tag)
        self._conns[root].send(obj)
        return None

    def scatter(self, objs: list[Any] | None, root: int = 0, tag: str = "generic") -> Any:
        if self._rank == root:
            if objs is None or len(objs) != self._size:
                raise CommError("scatter needs one element per rank")
            for r in range(self._size):
                if r != root:
                    self._account(objs[r], tag)
                    self._conns[r].send(objs[r])
            return objs[root]
        return self._conns[root].recv()


def _child(
    rank: int,
    size: int,
    conns: dict[int, Any],
    result_conn: Any,
    fn: Callable,
    payload: Any,
) -> None:
    comm = MPComm(rank, size, conns)
    try:
        result = fn(comm, payload)
        result_conn.send(("ok", result, dict(comm.bytes_by_tag)))
    except BaseException:
        result_conn.send(("error", traceback.format_exc(), {}))
    finally:
        result_conn.close()


def run_mpi(
    n_ranks: int,
    fn: Callable[[Comm, Any], Any],
    payloads: list[Any] | None = None,
    timeout: float = 600.0,
) -> list[Any]:
    """Run ``fn(comm, payloads[rank])`` on ``n_ranks`` forked processes.

    Returns the per-rank results in rank order.  Any rank raising makes
    the whole call raise :class:`CommError` with the child traceback.
    """
    if n_ranks < 1:
        raise CommError("need at least one rank")
    if payloads is None:
        payloads = [None] * n_ranks
    if len(payloads) != n_ranks:
        raise CommError("one payload per rank required")
    if n_ranks == 1:
        from repro.par.seqcomm import SequentialComm

        return [fn(SequentialComm(), payloads[0])]

    ctx = mp.get_context("fork")
    # full mesh of duplex pipes
    ends: dict[int, dict[int, Any]] = {r: {} for r in range(n_ranks)}
    for i in range(n_ranks):
        for j in range(i + 1, n_ranks):
            a, b = ctx.Pipe(duplex=True)
            ends[i][j] = a
            ends[j][i] = b
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(n_ranks)]
    procs = []
    for r in range(n_ranks):
        proc = ctx.Process(
            target=_child,
            args=(r, n_ranks, ends[r], result_pipes[r][1], fn, payloads[r]),
        )
        proc.start()
        procs.append(proc)
    results: list[Any] = [None] * n_ranks
    errors: list[str] = []
    try:
        # Poll all ranks round-robin so one rank's early crash surfaces
        # immediately instead of deadlocking its peers until the timeout.
        import time as _time

        pending = set(range(n_ranks))
        deadline = _time.monotonic() + timeout
        while pending:
            progressed = False
            for r in sorted(pending):
                recv_end = result_pipes[r][0]
                if recv_end.poll(0.05):
                    status, value, _bytes = recv_end.recv()
                    pending.discard(r)
                    progressed = True
                    if status == "ok":
                        results[r] = value
                    else:
                        errors.append(f"rank {r}:\n{value}")
            if errors:
                break  # peers of a crashed rank may hang; bail out now
            if not progressed and _time.monotonic() > deadline:
                errors.append(f"ranks {sorted(pending)}: timeout after {timeout}s")
                break
    finally:
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join()
    if errors:
        raise CommError("distributed run failed:\n" + "\n".join(errors))
    return results
