"""Deterministic-by-default RNG construction.

``np.random.default_rng(None)`` draws OS entropy, which breaks the
replica-consistency contract: every decentralized rank must build the
*same* starting tree, bootstrap weights, etc. from the same inputs
(replicheck rule R001).  :func:`ensure_rng` is the repo-wide fallback:
an omitted seed means the fixed :data:`DEFAULT_SEED`, never entropy —
callers wanting varied streams must say so with an explicit seed or
Generator.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_SEED", "ensure_rng"]

#: The fallback seed used whenever a caller omits one.
DEFAULT_SEED = 42


def ensure_rng(
    rng: np.random.Generator | int | None,
) -> np.random.Generator:
    """Coerce ``rng`` to a Generator; ``None`` means the fixed
    :data:`DEFAULT_SEED`, not OS entropy."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(DEFAULT_SEED if rng is None else rng)
