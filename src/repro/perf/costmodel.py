"""Compute-cost and memory models.

The kernels are modeled as memory-bandwidth-bound streaming over CLV
entries: per kernel invocation on a partition, a rank spends

    ``ns(op) × owned_patterns × n_cats × (psr_site_factor if PSR)``

nanoseconds.  The memory model charges, per rank,

    ``(n_taxa − 2) CLVs × owned_patterns × n_cats × n_states × 8 B``

times an overhead factor — the quantity behind the paper's observations
that the 150×20M Γ run needs ≈4× the PSR footprint and swaps on one and
two 256 GB nodes (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dist.distributions import DataDistribution
from repro.errors import ReproError
from repro.par.ledger import OpKind
from repro.par.machine import MachineSpec

__all__ = [
    "WorkloadMeta",
    "rank_second_vectors",
    "memory_footprint_per_node",
    "swap_multiplier",
    "modeled_flops",
    "modeled_bytes",
    "modeled_gflops",
]


@dataclass(frozen=True)
class WorkloadMeta:
    """Static per-partition facts the performance model needs."""

    n_taxa: int
    cost_patterns: np.ndarray  # (p,) virtual patterns per partition
    n_cats: np.ndarray  # (p,)
    site_specific: np.ndarray  # (p,) bool
    n_states: int = 4

    def __post_init__(self) -> None:
        p = self.cost_patterns.shape[0]
        if self.n_cats.shape != (p,) or self.site_specific.shape != (p,):
            raise ReproError("inconsistent workload metadata shapes")
        if self.n_taxa < 3:
            raise ReproError("need at least 3 taxa")

    @property
    def n_partitions(self) -> int:
        return int(self.cost_patterns.shape[0])

    @classmethod
    def from_likelihood(cls, lik) -> "WorkloadMeta":
        return cls(
            n_taxa=len(lik.taxa),
            cost_patterns=np.array([p.cost_patterns for p in lik.parts]),
            n_cats=np.array([p.n_cats for p in lik.parts]),
            site_specific=np.array([p.site_specific for p in lik.parts]),
            n_states=lik.parts[0].model.n_states,
        )


def _weighted_patterns(meta: WorkloadMeta, machine: MachineSpec) -> np.ndarray:
    """Per-partition cost weight per owned pattern: categories × PSR factor."""
    weight = meta.n_cats.astype(np.float64)
    weight = np.where(meta.site_specific, weight * machine.psr_site_factor, weight)
    return weight


def rank_second_vectors(
    meta: WorkloadMeta, machine: MachineSpec, dist: DataDistribution
) -> dict[OpKind, np.ndarray]:
    """``B[op][r]`` = seconds rank ``r`` spends on ONE invocation of ``op``
    over every partition's owned patterns.

    A region that performs ``c`` invocations of ``op`` per partition costs
    ``max_r c · B[op][r]`` (uniform case); the synthesizer uses these
    precomputed vectors to price tens of thousands of regions cheaply.
    """
    weight = _weighted_patterns(meta, machine)
    base = dist.owned @ weight  # (n_ranks,) pattern·category units
    return {
        op: ns * 1.0e-9 * base for op, ns in machine.op_cost_ns.items()
    }


def rank_second_vector_custom(
    meta: WorkloadMeta,
    machine: MachineSpec,
    dist: DataDistribution,
    op: OpKind,
    per_partition_counts: np.ndarray,
) -> np.ndarray:
    """Exact per-rank seconds for a region with non-uniform op counts."""
    weight = _weighted_patterns(meta, machine) * per_partition_counts
    return machine.op_cost_ns[op] * 1.0e-9 * (dist.owned @ weight)


def memory_footprint_per_node(
    meta: WorkloadMeta, machine: MachineSpec, dist: DataDistribution
) -> np.ndarray:
    """Resident bytes per occupied node (ranks packed densely)."""
    clv_entries = meta.n_taxa - 2  # inner-node CLVs held per rank
    per_pattern_bytes = meta.n_cats.astype(np.float64) * meta.n_states * 8.0
    rank_bytes = dist.owned @ per_pattern_bytes * clv_entries
    # alignment storage: one byte-code per pattern per taxon
    rank_bytes += dist.owned.sum(axis=1) * meta.n_taxa
    rank_bytes *= machine.mem_overhead_factor
    n_ranks = dist.n_ranks
    n_nodes = machine.nodes_for_ranks(n_ranks)
    node_bytes = np.zeros(n_nodes)
    for node in range(n_nodes):
        lo = node * machine.cores_per_node
        hi = min(n_ranks, lo + machine.cores_per_node)
        node_bytes[node] = rank_bytes[lo:hi].sum()
    return node_bytes


def _op_name(op: OpKind | str) -> str:
    return op.value if isinstance(op, OpKind) else op


def modeled_flops(op: OpKind | str, units: float, n_states: int = 4) -> float:
    """Analytic FLOPs for ``units`` work units of kernel op ``op``.

    Units follow the work-ledger convention (pattern·category; transition
    matrices for ``pmatrix``), so feeding ``WorkLedger.pattern_ops`` or an
    :class:`~repro.obs.hotspots.OpProfiler`'s accumulated units here gives
    identical totals by construction.
    """
    from repro.likelihood.kernel import flops_per_unit

    return flops_per_unit(_op_name(op), n_states) * units


def modeled_bytes(op: OpKind | str, units: float, n_states: int = 4) -> float:
    """Analytic first-order memory traffic (bytes) for ``units`` units."""
    from repro.likelihood.kernel import bytes_per_unit

    return bytes_per_unit(_op_name(op), n_states) * units


def modeled_gflops(
    machine: MachineSpec,
    op: OpKind | str,
    n_states: int = 4,
    site_specific: bool = False,
) -> float:
    """GFLOP/s per core implied by the machine's ``op_cost_ns`` price for
    ``op`` — the throughput the analytic runtime model assumes, to set
    against measured throughput in a hotspot report."""
    from repro.likelihood.kernel import flops_per_unit

    name = _op_name(op)
    ns = machine.op_cost_ns[OpKind(name)]
    if site_specific:
        ns *= machine.psr_site_factor
    return flops_per_unit(name, n_states) / ns


def swap_multiplier(
    meta: WorkloadMeta, machine: MachineSpec, dist: DataDistribution
) -> float:
    """Compute-time multiplier when a node's working set exceeds its RAM.

    1.0 when everything fits; grows linearly in the overcommit ratio with
    slope ``machine.swap_slowdown`` — a simple but effective model of the
    paging degradation in Figure 3's low-node-count Γ runs.
    """
    node_bytes = memory_footprint_per_node(meta, machine, dist)
    worst = float(node_bytes.max())
    excess = worst / machine.ram_per_node_bytes - 1.0
    if excess <= 0:
        return 1.0
    return 1.0 + machine.swap_slowdown * excess
