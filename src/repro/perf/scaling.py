"""Model-predicted scaling curves for the measured-scaling harness.

``repro scale`` (:mod:`repro.obs.scaling`) measures speedup/efficiency
from live traced runs; this module produces the *analytic* counterpart
from the same deterministic search — replayed once on a
:class:`~repro.engines.recording.RecordingBackend` and priced with both
engines' communication models on a reference machine — so the measured
report can state whether the paper's predicted ordering (de-centralized
beats fork-join, and by how much per rank count) holds empirically.

Absolute seconds are for the modeled cluster, not the test host; only
the *orderings* and *trends* (which engine is comm-heavier, how speedup
bends with rank count) are comparable with measurement, and that is what
:func:`predicted_ordering` extracts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.dist.distributions import auto_distribution
from repro.par.machine import HITS_CLUSTER, MachineSpec
from repro.perf.costmodel import WorkloadMeta
from repro.perf.runtime_sim import RuntimeReport, simulate_runtime

__all__ = [
    "PredictedScaling",
    "predict_scaling",
    "predicted_ordering",
]


@dataclass
class PredictedScaling:
    """Analytic runtimes for both engines across rank counts."""

    dist_kind: str
    machine: str
    #: engine → ranks → RuntimeReport
    reports: dict[str, dict[int, RuntimeReport]] = field(default_factory=dict)

    def total_s(self, engine: str, ranks: int) -> float:
        return self.reports[engine][ranks].total_s

    def speedup(self, engine: str, ranks: int) -> float:
        base = min(self.reports[engine])
        return (self.total_s(engine, base) * base
                / self.total_s(engine, ranks))

    def to_dict(self) -> dict[str, Any]:
        return {
            "dist": self.dist_kind,
            "machine": self.machine,
            "engines": {
                engine: {
                    str(n): {
                        "total_s": rep.total_s,
                        "compute_s": rep.compute_s,
                        "comm_s": rep.comm_s,
                        "speedup": self.speedup(engine, n),
                    }
                    for n, rep in sorted(per_ranks.items())
                }
                for engine, per_ranks in self.reports.items()
            },
        }


def predict_scaling(
    parts,
    taxa,
    start_newick: str,
    config,
    ranks_list: list[int],
    dist_kind: str = "cyclic",
    n_branch_sets: int = 1,
    machine: MachineSpec = HITS_CLUSTER,
) -> PredictedScaling:
    """Replay the search once, price both engines at every rank count."""
    from repro.engines.decentral import DecentralizedCommModel
    from repro.engines.forkjoin import ForkJoinCommModel
    from repro.engines.recording import RecordingBackend
    from repro.likelihood.partitioned import PartitionedLikelihood
    from repro.search.search import hill_climb
    from repro.tree.newick import parse_newick

    tree = parse_newick(start_newick, n_branch_sets)
    if n_branch_sets > 1:
        tree.set_n_branch_sets(n_branch_sets)
    # private copies: the replay must not disturb the caller's partitions
    parts = [p.subset(np.arange(p.n_patterns)) for p in parts]
    lik = PartitionedLikelihood(tree, parts, list(taxa))
    backend = RecordingBackend(lik)
    hill_climb(backend, config)
    meta = WorkloadMeta.from_likelihood(lik)

    models = {
        "decentralized": DecentralizedCommModel(),
        "forkjoin": ForkJoinCommModel(),
    }
    out = PredictedScaling(dist_kind=dist_kind, machine=machine.name)
    for engine, model in models.items():
        per_ranks: dict[int, RuntimeReport] = {}
        for n in sorted(set(ranks_list)):
            dist = auto_distribution(
                meta.cost_patterns, n, use_mps=(dist_kind == "mps")
            )
            per_ranks[n] = simulate_runtime(
                backend.log, model, meta, machine, dist, engine_name=engine
            )
        out.reports[engine] = per_ranks
    return out


def predicted_ordering(pred: PredictedScaling) -> dict[str, Any]:
    """The model's machine-independent claims, for checking against
    measurement:

    * ``comm_heavier`` — per rank count, the engine the model predicts
      spends more time in collectives (the paper: fork-join, always);
    * ``faster`` — per rank count, the engine with the lower predicted
      total (ties go to ``decentralized``, the paper's winner).
    """
    engines = sorted(pred.reports)
    ranks = sorted(set.intersection(
        *(set(pred.reports[e]) for e in engines)
    ))
    comm_heavier: dict[str, str] = {}
    faster: dict[str, str] = {}
    for n in ranks:
        by_comm = max(engines, key=lambda e: pred.reports[e][n].comm_s)
        comm_heavier[str(n)] = by_comm
        best = min(engines,
                   key=lambda e: (pred.reports[e][n].total_s,
                                  e != "decentralized"))
        faster[str(n)] = best
    return {"comm_heavier": comm_heavier, "faster": faster}
