"""Human-readable tables mirroring the paper's artifacts."""

from __future__ import annotations

from repro.engines.events import EventLog
from repro.engines.forkjoin import (
    CAT_BL_OPT,
    CAT_LIKELIHOOD,
    CAT_MODEL,
    CAT_TRAVERSAL,
    ForkJoinCommModel,
)
from repro.perf.runtime_sim import RuntimeReport

__all__ = ["format_table1", "format_runtime_table", "table1_rows"]

_MB = 1024.0 * 1024.0


def table1_rows(log: EventLog) -> dict[str, float]:
    """Table I quantities for one fork-join run: per-category percentages,
    region count and total MB."""
    model = ForkJoinCommModel()
    totals = model.byte_totals(log)
    grand = sum(totals.values())
    rows = {
        f"{cat} [%]": (100.0 * totals[cat] / grand if grand else 0.0)
        for cat in (CAT_BL_OPT, CAT_LIKELIHOOD, CAT_MODEL, CAT_TRAVERSAL)
    }
    rows["# parallel regions"] = float(model.region_count(log))
    rows["# bytes communicated (MB)"] = grand / _MB
    return rows


def format_table1(columns: dict[str, EventLog]) -> str:
    """Render Table I: one column per run configuration."""
    names = list(columns)
    data = {name: table1_rows(log) for name, log in columns.items()}
    row_labels = [
        f"{CAT_BL_OPT} [%]",
        f"{CAT_LIKELIHOOD} [%]",
        f"{CAT_MODEL} [%]",
        f"{CAT_TRAVERSAL} [%]",
        "# parallel regions",
        "# bytes communicated (MB)",
    ]
    width = max(len(r) for r in row_labels) + 2
    colw = max(14, max(len(n) for n in names) + 2)
    out = [" " * width + "".join(f"{n:>{colw}}" for n in names)]
    for label in row_labels:
        cells = []
        for name in names:
            val = data[name][label]
            if label.startswith("#"):
                cells.append(f"{val:>{colw}.0f}")
            else:
                cells.append(f"{val:>{colw}.2f}")
        out.append(f"{label:<{width}}" + "".join(cells))
    return "\n".join(out)


def format_runtime_table(
    rows: list[tuple[str, RuntimeReport, RuntimeReport]],
) -> str:
    """Render runtime comparisons: (label, ExaML report, RAxML-Light report)."""
    out = [
        f"{'configuration':<28}{'ExaML [s]':>12}{'RAxML-Light [s]':>17}"
        f"{'speedup':>9}"
    ]
    for label, examl, light in rows:
        ratio = light.total_s / examl.total_s if examl.total_s > 0 else float("nan")
        out.append(
            f"{label:<28}{examl.total_s:>12.1f}{light.total_s:>17.1f}{ratio:>9.2f}"
        )
    return "\n".join(out)
