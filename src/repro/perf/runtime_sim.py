"""Runtime synthesis: region stream × machine × distribution → seconds.

For every recorded region the synthesizer prices

* **compute**: the maximum over ranks of the modeled kernel seconds the
  region's per-partition op counts imply under the given data
  distribution (times the swap multiplier when the working set exceeds
  node RAM);
* **communication**: the analytic cost of the collectives the engine's
  communication model assigns to that region.

Fork-join synchronizes at *every* region; the de-centralized scheme only
at its allreduce sites — non-communicating regions' compute is folded
into the interval ending at the next allreduce, which under identical
data distributions yields the same compute total but strictly less
communication time: the paper's effect, reproduced mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engines.events import EventLog
from repro.errors import ReproError
from repro.par.machine import MachineSpec
from repro.par.network import collective_time
from repro.perf.costmodel import (
    WorkloadMeta,
    rank_second_vectors,
    rank_second_vector_custom,
    swap_multiplier,
)

__all__ = ["RuntimeReport", "simulate_runtime"]


@dataclass
class RuntimeReport:
    """Simulated timing of one (engine, rank count) configuration."""

    engine: str
    n_ranks: int
    compute_s: float
    comm_s: float
    swap_factor: float
    n_regions: int
    n_communicating_regions: int
    bytes_by_category: dict[str, float] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes_by_category.values())

    def __repr__(self) -> str:
        return (
            f"RuntimeReport({self.engine}, ranks={self.n_ranks}, "
            f"total={self.total_s:.1f}s = {self.compute_s:.1f}s compute + "
            f"{self.comm_s:.3f}s comm, swap×{self.swap_factor:.2f})"
        )


def simulate_runtime(
    log: EventLog,
    comm_model,
    meta: WorkloadMeta,
    machine: MachineSpec,
    dist,
    engine_name: str | None = None,
) -> RuntimeReport:
    """Price a recorded run for one engine on one machine configuration."""
    if dist.n_partitions != meta.n_partitions:
        raise ReproError("distribution does not match workload")
    n_ranks = dist.n_ranks
    if n_ranks > machine.total_cores:
        raise ReproError(f"{n_ranks} ranks exceed machine size")

    second_vectors = rank_second_vectors(meta, machine, dist)
    # Uniform-region fast path: max_r of (sum_op c_op * B_op[r]).  All the
    # B_op share the same per-rank shape (they differ by the scalar ns), so
    # the argmax rank is identical and we can pre-reduce to scalars.
    max_seconds_per_op = {op: float(vec.max()) for op, vec in second_vectors.items()}

    sfactor = swap_multiplier(meta, machine, dist)
    compute_s = 0.0
    comm_s = 0.0
    bytes_by_cat: dict[str, float] = {}
    n_communicating = 0

    for region in log:
        kernel_ops = region.kernel_ops()
        region_compute = 0.0
        for op, count in kernel_ops.items():
            if isinstance(count, np.ndarray):
                vec = rank_second_vector_custom(meta, machine, dist, op, count)
                region_compute += float(vec.max())
            elif count:
                region_compute += count * max_seconds_per_op[op]
        compute_s += region_compute

        events = comm_model.region_events(region)
        if events:
            n_communicating += 1
            comm_s += machine.region_sync_noise(n_ranks)
        serial = getattr(comm_model, "serial_bytes", None)
        if serial is not None and n_ranks > 1:
            comm_s += serial(region) * machine.master_pack_s_per_byte
        for ev in events:
            comm_s += collective_time(machine, n_ranks, ev.collective, ev.nbytes)
            bytes_by_cat[ev.category] = bytes_by_cat.get(ev.category, 0.0) + ev.nbytes

    return RuntimeReport(
        engine=engine_name or getattr(comm_model, "name", "engine"),
        n_ranks=n_ranks,
        compute_s=compute_s * sfactor,
        comm_s=comm_s,
        swap_factor=sfactor,
        n_regions=len(log),
        n_communicating_regions=n_communicating,
        bytes_by_category=bytes_by_cat,
    )
