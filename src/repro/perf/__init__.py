"""Performance model: converts a recorded region stream plus a machine
description and data distribution into simulated wall-clock time,
communication-byte breakdowns and memory footprints."""

from repro.perf.costmodel import WorkloadMeta, memory_footprint_per_node, swap_multiplier
from repro.perf.runtime_sim import RuntimeReport, simulate_runtime
from repro.perf.report import format_table1, format_runtime_table
from repro.perf.scaling import PredictedScaling, predict_scaling, predicted_ordering

__all__ = [
    "WorkloadMeta",
    "memory_footprint_per_node",
    "swap_multiplier",
    "RuntimeReport",
    "simulate_runtime",
    "format_table1",
    "format_runtime_table",
    "PredictedScaling",
    "predict_scaling",
    "predicted_ordering",
]
