"""Multiple-sequence alignments and site-pattern compression.

Identical alignment columns contribute identical per-site likelihood terms,
so the likelihood is computed once per *unique pattern* and weighted by the
pattern's multiplicity.  The paper highlights this: its 150 × 20,000,000 bp
dataset compresses to 12,597,450 unique patterns, and it is the pattern
count that governs memory and compute.  Compression is performed *within*
each partition because partitions carry independent models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError
from repro.seq.alphabet import DNA, Alphabet

__all__ = ["Alignment", "PatternAlignment", "compress_columns"]


class Alignment:
    """A taxa × sites alignment of bit-mask encoded characters.

    Parameters
    ----------
    taxa:
        Taxon labels, in row order.  Must be unique and non-empty.
    data:
        ``uint32`` array of shape ``(n_taxa, n_sites)`` holding alphabet bit
        masks (see :class:`repro.seq.alphabet.Alphabet`).
    alphabet:
        The alphabet the masks belong to.
    """

    def __init__(
        self, taxa: list[str], data: np.ndarray, alphabet: Alphabet = DNA
    ) -> None:
        if len(taxa) != len(set(taxa)):
            raise AlignmentError("taxon labels must be unique")
        if not taxa:
            raise AlignmentError("alignment needs at least one taxon")
        data = np.asarray(data, dtype=np.uint32)
        if data.ndim != 2 or data.shape[0] != len(taxa):
            raise AlignmentError(
                f"data shape {data.shape} does not match {len(taxa)} taxa"
            )
        if data.shape[1] == 0:
            raise AlignmentError("alignment has zero sites")
        if np.any(data == 0) or np.any(data > alphabet.gap_mask):
            raise AlignmentError("data contains masks outside the alphabet")
        self.taxa = list(taxa)
        self.data = data
        self.alphabet = alphabet

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_sequences(
        cls, sequences: dict[str, str] | list[tuple[str, str]], alphabet: Alphabet = DNA
    ) -> "Alignment":
        """Build an alignment from ``{taxon: sequence}`` character data."""
        items = list(sequences.items()) if isinstance(sequences, dict) else list(sequences)
        if not items:
            raise AlignmentError("no sequences given")
        lengths = {len(seq) for _, seq in items}
        if len(lengths) != 1:
            raise AlignmentError(f"ragged alignment: row lengths {sorted(lengths)}")
        taxa = [name for name, _ in items]
        rows = [alphabet.encode(seq) for _, seq in items]
        return cls(taxa, np.vstack(rows), alphabet)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def n_taxa(self) -> int:
        return len(self.taxa)

    @property
    def n_sites(self) -> int:
        return int(self.data.shape[1])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alignment):
            return NotImplemented
        return (
            self.taxa == other.taxa
            and self.alphabet.name == other.alphabet.name
            and np.array_equal(self.data, other.data)
        )

    def __repr__(self) -> str:
        return (
            f"Alignment({self.n_taxa} taxa x {self.n_sites} sites, "
            f"{self.alphabet.name})"
        )

    def sequence(self, taxon: str) -> str:
        """Decode one row back to characters."""
        try:
            row = self.taxa.index(taxon)
        except ValueError as exc:
            raise AlignmentError(f"unknown taxon {taxon!r}") from exc
        return self.alphabet.decode(self.data[row])

    def slice_sites(self, sites: np.ndarray | slice) -> "Alignment":
        """Sub-alignment restricted to the given site columns."""
        sub = self.data[:, sites]
        if sub.ndim != 2 or sub.shape[1] == 0:
            raise AlignmentError("site selection produced an empty alignment")
        return Alignment(self.taxa, sub, self.alphabet)

    # ------------------------------------------------------------------ #
    # pattern compression
    # ------------------------------------------------------------------ #
    def compress(self) -> "PatternAlignment":
        """Collapse identical columns into weighted unique site patterns."""
        patterns, weights, site_map = compress_columns(self.data)
        return PatternAlignment(
            taxa=self.taxa,
            patterns=patterns,
            weights=weights,
            alphabet=self.alphabet,
            site_map=site_map,
        )

    def empirical_frequencies(self) -> np.ndarray:
        """Empirical base frequencies, distributing ambiguity mass evenly.

        A character with ambiguity mask covering *k* states contributes
        ``1/k`` to each covered state, mirroring common practice.
        """
        n = self.alphabet.n_states
        bits = (self.data[..., None] >> np.arange(n)) & 1
        counts = bits.astype(np.float64)
        counts /= counts.sum(axis=-1, keepdims=True)
        freqs = counts.sum(axis=(0, 1))
        total = freqs.sum()
        if total <= 0:  # pragma: no cover - defensive
            raise AlignmentError("cannot derive frequencies from empty data")
        return freqs / total


def compress_columns(
    data: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Find unique columns of ``data`` preserving first-occurrence order.

    Returns
    -------
    patterns:
        ``(n_taxa, n_patterns)`` array of the unique columns.
    weights:
        ``(n_patterns,)`` multiplicities (``float64``; likelihood code
        treats weights as real numbers so scaled virtual alignments work).
    site_map:
        ``(n_sites,)`` index of each original site's pattern.

    Ordering by first occurrence (rather than :func:`numpy.unique`'s sorted
    order) keeps pattern indices stable and human-predictable, which the
    tests and the deterministic parallel replicas rely on.
    """
    cols = np.ascontiguousarray(data.T)
    _, first_idx, inverse, counts = np.unique(
        cols, axis=0, return_index=True, return_inverse=True, return_counts=True
    )
    inverse = inverse.reshape(-1)
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.size)
    patterns = data[:, first_idx[order]]
    weights = counts[order].astype(np.float64)
    site_map = rank[inverse]
    return patterns, weights, site_map


@dataclass
class PatternAlignment:
    """A compressed alignment: unique site patterns plus multiplicities.

    Attributes
    ----------
    taxa:
        Taxon labels (row order matches ``patterns``).
    patterns:
        ``(n_taxa, n_patterns)`` bit-mask array of unique columns.
    weights:
        ``(n_patterns,)`` pattern multiplicities.  Real-valued so that
        *scaled* workloads (a sub-sample standing in for a huge alignment)
        can carry fractional or inflated weights.
    alphabet:
        Source alphabet.
    site_map:
        Optional ``(n_sites,)`` map from original site to pattern index.
    """

    taxa: list[str]
    patterns: np.ndarray
    weights: np.ndarray
    alphabet: Alphabet = DNA
    site_map: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.patterns = np.asarray(self.patterns, dtype=np.uint32)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.patterns.ndim != 2:
            raise AlignmentError("patterns must be 2-D")
        if self.patterns.shape[0] != len(self.taxa):
            raise AlignmentError("pattern rows do not match taxa")
        if self.weights.shape != (self.patterns.shape[1],):
            raise AlignmentError("weights do not match pattern count")
        if np.any(self.weights <= 0):
            raise AlignmentError("pattern weights must be positive")

    @property
    def n_taxa(self) -> int:
        return len(self.taxa)

    @property
    def n_patterns(self) -> int:
        return int(self.patterns.shape[1])

    @property
    def n_sites(self) -> float:
        """Total (possibly virtual) site count represented by the patterns."""
        return float(self.weights.sum())

    def tip_vector(self, taxon_index: int) -> np.ndarray:
        """0/1 tip conditional-likelihood matrix ``(n_patterns, n_states)``."""
        return self.alphabet.tip_vectors(self.patterns[taxon_index])

    def subset(self, pattern_idx: np.ndarray) -> "PatternAlignment":
        """Pattern-subset view used by data distribution (site splitting)."""
        pattern_idx = np.asarray(pattern_idx, dtype=np.intp)
        return PatternAlignment(
            taxa=self.taxa,
            patterns=self.patterns[:, pattern_idx],
            weights=self.weights[pattern_idx],
            alphabet=self.alphabet,
            site_map=None,
        )
