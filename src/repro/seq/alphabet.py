"""Molecular alphabets with ambiguity-code support.

States are encoded as bit masks over the concrete states, the classical
trick used by RAxML and most likelihood codes: ``A = 0b0001``,
``C = 0b0010``, ``G = 0b0100``, ``T = 0b1000``; an ambiguity code is the OR
of its constituents (``R = A|G = 0b0101``) and a gap/unknown is the all-ones
mask.  A tip's conditional likelihood vector is then simply the mask
expanded to 0/1 floats, which makes ambiguity handling free inside the
likelihood kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AlignmentError

__all__ = ["Alphabet", "DNA", "AMINO_ACIDS"]


@dataclass(frozen=True)
class Alphabet:
    """An alphabet of ``n_states`` concrete states plus ambiguity codes.

    Parameters
    ----------
    name:
        Human-readable name (``"DNA"``).
    states:
        The concrete state characters in canonical order.
    ambiguities:
        Mapping from extra characters to tuples of concrete state characters
        they may represent.  Gap characters map to the full state set.
    """

    name: str
    states: str
    ambiguities: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.states)) != len(self.states):
            raise AlignmentError(f"duplicate states in alphabet {self.name!r}")
        if len(self.states) < 2:
            raise AlignmentError("an alphabet needs at least two states")
        # Precompute the char -> bitmask table once; stored via object.__setattr__
        # because the dataclass is frozen.
        table = np.zeros(256, dtype=np.uint32)
        index = {c: i for i, c in enumerate(self.states)}
        for ch, i in index.items():
            table[ord(ch)] = 1 << i
            table[ord(ch.lower())] = 1 << i
        for ch, expansion in self.ambiguities.items():
            mask = 0
            for c in expansion:
                if c not in index:
                    raise AlignmentError(
                        f"ambiguity {ch!r} expands to unknown state {c!r}"
                    )
                mask |= 1 << index[c]
            table[ord(ch)] = mask
            table[ord(ch.lower())] = mask
        object.__setattr__(self, "_mask_table", table)
        object.__setattr__(self, "_index", index)

    @property
    def n_states(self) -> int:
        """Number of concrete states (4 for DNA)."""
        return len(self.states)

    @property
    def gap_mask(self) -> int:
        """Bit mask representing total uncertainty (gap / unknown)."""
        return (1 << self.n_states) - 1

    def encode(self, sequence: str) -> np.ndarray:
        """Encode a character sequence into a ``uint32`` bit-mask array.

        Raises
        ------
        AlignmentError
            If the sequence contains a character that is neither a state nor
            a registered ambiguity code.
        """
        raw = np.frombuffer(sequence.encode("ascii", errors="strict"), dtype=np.uint8)
        masks = self._mask_table[raw]  # type: ignore[attr-defined]
        if np.any(masks == 0):
            bad_pos = int(np.nonzero(masks == 0)[0][0])
            raise AlignmentError(
                f"unknown character {sequence[bad_pos]!r} at position {bad_pos} "
                f"for alphabet {self.name}"
            )
        return masks

    def decode(self, masks: np.ndarray) -> str:
        """Decode bit masks back to characters (ambiguities round-trip)."""
        inverse: dict[int, str] = {}
        for i, c in enumerate(self.states):
            inverse[1 << i] = c
        for ch, expansion in self.ambiguities.items():
            mask = 0
            for c in expansion:
                mask |= 1 << self._index[c]  # type: ignore[attr-defined]
            inverse.setdefault(mask, ch)
        try:
            return "".join(inverse[int(m)] for m in masks)
        except KeyError as exc:  # pragma: no cover - defensive
            raise AlignmentError(f"cannot decode mask {exc}") from exc

    def tip_vectors(self, masks: np.ndarray) -> np.ndarray:
        """Expand bit masks into 0/1 tip conditional-likelihood rows.

        Returns an array of shape ``(len(masks), n_states)`` of float64.
        """
        bits = (masks[:, None] >> np.arange(self.n_states)[None, :]) & 1
        return bits.astype(np.float64)

    def state_index(self, char: str) -> int:
        """Index of a concrete state character."""
        try:
            return self._index[char.upper()]  # type: ignore[attr-defined]
        except KeyError as exc:
            raise AlignmentError(f"{char!r} is not a concrete state") from exc


#: The DNA alphabet with the full IUPAC ambiguity set.
DNA = Alphabet(
    name="DNA",
    states="ACGT",
    ambiguities={
        "U": "T",
        "R": "AG",
        "Y": "CT",
        "S": "CG",
        "W": "AT",
        "K": "GT",
        "M": "AC",
        "B": "CGT",
        "D": "AGT",
        "H": "ACT",
        "V": "ACG",
        "N": "ACGT",
        "?": "ACGT",
        "-": "ACGT",
        "X": "ACGT",
        "O": "ACGT",
    },
)

#: The 20-state protein alphabet (kept for substrate completeness; the
#: paper's experiments are DNA-only).
AMINO_ACIDS = Alphabet(
    name="AA",
    states="ARNDCQEGHILKMFPSTWYV",
    ambiguities={
        "B": "ND",
        "Z": "QE",
        "J": "IL",
        "X": "ARNDCQEGHILKMFPSTWYV",
        "?": "ARNDCQEGHILKMFPSTWYV",
        "-": "ARNDCQEGHILKMFPSTWYV",
        "*": "ARNDCQEGHILKMFPSTWYV",
        "U": "C",
    },
)
