"""Binary alignment format.

The paper's future-work section mentions a binary data format for storing
input alignments (to accelerate start-up and data redistribution via
parallel I/O).  This module implements it: a small header, the taxon
table, and the bit-mask matrix packed two DNA characters per byte.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path

import numpy as np

from repro.errors import AlignmentError
from repro.seq.alignment import Alignment
from repro.seq.alphabet import DNA

__all__ = ["write_binary_alignment", "read_binary_alignment", "MAGIC"]

MAGIC = b"RBA1"  # Repro Binary Alignment, version 1


def write_binary_alignment(alignment: Alignment, path: str | Path) -> int:
    """Serialize an alignment; returns the number of bytes written."""
    if alignment.alphabet.n_states != 4:
        raise AlignmentError("the binary format stores DNA (4-bit codes)")
    buf = io.BytesIO()
    buf.write(MAGIC)
    buf.write(struct.pack("<II", alignment.n_taxa, alignment.n_sites))
    for taxon in alignment.taxa:
        raw = taxon.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise AlignmentError(f"taxon name too long: {taxon[:32]}…")
        buf.write(struct.pack("<H", len(raw)))
        buf.write(raw)
    codes = alignment.data.astype(np.uint8)  # masks are 1..15
    n_sites = alignment.n_sites
    if n_sites % 2:
        codes = np.concatenate(
            [codes, np.zeros((alignment.n_taxa, 1), dtype=np.uint8)], axis=1
        )
    packed = (codes[:, 0::2] << 4) | codes[:, 1::2]
    buf.write(packed.tobytes())
    data = buf.getvalue()
    Path(path).write_bytes(data)
    return len(data)


def read_binary_alignment(path: str | Path) -> Alignment:
    """Read an alignment written by :func:`write_binary_alignment`."""
    raw = Path(path).read_bytes()
    if raw[:4] != MAGIC:
        raise AlignmentError("not a repro binary alignment (bad magic)")
    off = 4
    n_taxa, n_sites = struct.unpack_from("<II", raw, off)
    off += 8
    taxa = []
    for _ in range(n_taxa):
        (ln,) = struct.unpack_from("<H", raw, off)
        off += 2
        taxa.append(raw[off : off + ln].decode("utf-8"))
        off += ln
    padded = n_sites + (n_sites % 2)
    expected = n_taxa * padded // 2
    body = np.frombuffer(raw, dtype=np.uint8, offset=off)
    if body.size != expected:
        raise AlignmentError(
            f"truncated binary alignment: {body.size} != {expected} bytes"
        )
    packed = body.reshape(n_taxa, padded // 2)
    codes = np.empty((n_taxa, padded), dtype=np.uint8)
    codes[:, 0::2] = packed >> 4
    codes[:, 1::2] = packed & 0x0F
    codes = codes[:, :n_sites]
    if np.any(codes == 0):
        raise AlignmentError("corrupt binary alignment: zero state code")
    return Alignment(taxa, codes.astype(np.uint32), DNA)
