"""Sequence substrate: alphabets, alignments, site-pattern compression,
FASTA/PHYLIP I/O, partition schemes and sequence simulation."""

from repro.seq.alphabet import DNA, AMINO_ACIDS, Alphabet
from repro.seq.alignment import Alignment, PatternAlignment
from repro.seq.partitions import Partition, PartitionScheme

__all__ = [
    "DNA",
    "AMINO_ACIDS",
    "Alphabet",
    "Alignment",
    "PatternAlignment",
    "Partition",
    "PartitionScheme",
]
