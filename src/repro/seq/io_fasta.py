"""FASTA reading and writing."""

from __future__ import annotations

import io
from pathlib import Path

from repro.errors import AlignmentError
from repro.seq.alignment import Alignment
from repro.seq.alphabet import DNA, Alphabet

__all__ = ["read_fasta", "write_fasta", "parse_fasta"]


def parse_fasta(text: str, alphabet: Alphabet = DNA) -> Alignment:
    """Parse FASTA-formatted text into an :class:`Alignment`.

    Headers are truncated at the first whitespace (the common convention);
    sequence lines may be wrapped arbitrarily.
    """
    names: list[str] = []
    chunks: list[list[str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            name = line[1:].split()[0] if len(line) > 1 else ""
            if not name:
                raise AlignmentError(f"empty FASTA header at line {lineno}")
            names.append(name)
            chunks.append([])
        else:
            if not names:
                raise AlignmentError(
                    f"sequence data before any FASTA header at line {lineno}"
                )
            chunks[-1].append(line)
    if not names:
        raise AlignmentError("no FASTA records found")
    seqs = {name: "".join(parts) for name, parts in zip(names, chunks)}
    if len(seqs) != len(names):
        raise AlignmentError("duplicate FASTA headers")
    return Alignment.from_sequences(seqs, alphabet)


def read_fasta(path: str | Path, alphabet: Alphabet = DNA) -> Alignment:
    """Read a FASTA file from disk."""
    return parse_fasta(Path(path).read_text(), alphabet)


def write_fasta(alignment: Alignment, path: str | Path, width: int = 70) -> None:
    """Write an alignment as wrapped FASTA."""
    if width <= 0:
        raise AlignmentError("line width must be positive")
    buf = io.StringIO()
    for taxon in alignment.taxa:
        buf.write(f">{taxon}\n")
        seq = alignment.sequence(taxon)
        for start in range(0, len(seq), width):
            buf.write(seq[start : start + width])
            buf.write("\n")
    Path(path).write_text(buf.getvalue())
