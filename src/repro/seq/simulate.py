"""Sequence simulation along a tree (the dataset generator).

The paper's large benchmark alignment is itself *simulated* (150 taxa ×
20,000,000 bp), so simulation is part of the reproduced system, not a
shortcut.  We evolve sites independently down a rooted version of the tree
under a GTR model with optional Gamma-distributed per-site rate
multipliers, which produces alignments with realistic pattern diversity
and per-gene heterogeneity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError, TreeError
from repro.rng import ensure_rng
from repro.seq.alignment import Alignment
from repro.seq.alphabet import DNA, Alphabet
from repro.model.substitution import SubstitutionModel
from repro.tree.topology import Node, Tree

__all__ = ["simulate_alignment", "simulate_partitioned_alignment"]


def _draw_states(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Vectorized categorical draw: one state per row of ``probs``."""
    cdf = np.cumsum(probs, axis=-1)
    cdf[..., -1] = 1.0  # guard against round-off
    u = rng.random(probs.shape[:-1])
    return (u[..., None] > cdf).sum(axis=-1)


def simulate_alignment(
    tree: Tree,
    model: SubstitutionModel,
    n_sites: int,
    rng: np.random.Generator | int | None = None,
    site_rates: np.ndarray | None = None,
    gamma_alpha: float | None = None,
    alphabet: Alphabet = DNA,
) -> Alignment:
    """Simulate an alignment of ``n_sites`` sites along ``tree``.

    Works for any alphabet whose state count matches the model (DNA by
    default; pass :data:`repro.seq.alphabet.AMINO_ACIDS` with a 20-state
    model for proteins).

    Parameters
    ----------
    site_rates:
        Optional explicit per-site rate multipliers (length ``n_sites``).
    gamma_alpha:
        If given (and ``site_rates`` is not), draw iid per-site rates from
        Gamma(α, α), the continuous counterpart of the Γ model.
    """
    if n_sites <= 0:
        raise ModelError("n_sites must be positive")
    if model.n_states != alphabet.n_states:
        raise ModelError(
            f"model has {model.n_states} states but alphabet "
            f"{alphabet.name} has {alphabet.n_states}"
        )
    tree.validate()
    rng = ensure_rng(rng)

    if site_rates is not None:
        site_rates = np.asarray(site_rates, dtype=np.float64)
        if site_rates.shape != (n_sites,):
            raise ModelError("site_rates length mismatch")
        if np.any(site_rates <= 0):
            raise ModelError("site rates must be positive")
    elif gamma_alpha is not None:
        if gamma_alpha <= 0:
            raise ModelError("gamma_alpha must be positive")
        site_rates = rng.gamma(shape=gamma_alpha, scale=1.0 / gamma_alpha, size=n_sites)
        site_rates = np.maximum(site_rates, 1e-4)
    else:
        site_rates = np.ones(n_sites)

    n = model.n_states
    eigen = model.eigen()
    root = tree.inner_nodes()[0]
    states: dict[int, np.ndarray] = {
        root.id: _draw_states(
            np.broadcast_to(model.frequencies, (n_sites, n)), rng
        )
    }

    def visit(node: Node, parent: Node) -> None:
        t = float(tree.edge_length(node, parent)[0])
        pmats = eigen.pmatrices(site_rates * t)  # (n_sites, n, n)
        parent_states = states[parent.id]
        row_probs = pmats[np.arange(n_sites), parent_states, :]
        states[node.id] = _draw_states(row_probs, rng)
        if not node.is_leaf:
            for child in tree.other_neighbors(node, parent):
                visit(child, node)

    for child in root.neighbors:
        visit(child, root)

    masks = {}
    for leaf in tree.leaves():
        if leaf.label is None:  # pragma: no cover - defensive
            raise TreeError("leaf without label")
        masks[leaf.label] = (np.uint32(1) << states[leaf.id].astype(np.uint32))
    taxa = sorted(masks)
    data = np.vstack([masks[t] for t in taxa])
    return Alignment(taxa, data, alphabet)


def simulate_partitioned_alignment(
    tree: Tree,
    models: list[SubstitutionModel],
    partition_sizes: list[int],
    rng: np.random.Generator | int | None = None,
    gamma_alphas: list[float] | None = None,
    partition_rate_multipliers: list[float] | None = None,
) -> Alignment:
    """Simulate a multi-gene alignment: one model (and optional α and
    overall rate multiplier) per partition, concatenated left to right.

    Different genes evolving at different speeds is exactly the
    biological motivation the paper gives for partitioned analyses.
    """
    p = len(partition_sizes)
    if len(models) != p:
        raise ModelError("one model per partition required")
    if gamma_alphas is not None and len(gamma_alphas) != p:
        raise ModelError("one alpha per partition required")
    if partition_rate_multipliers is not None and len(partition_rate_multipliers) != p:
        raise ModelError("one rate multiplier per partition required")
    rng = ensure_rng(rng)

    blocks: list[Alignment] = []
    for i in range(p):
        block_tree = tree
        mult = 1.0 if partition_rate_multipliers is None else partition_rate_multipliers[i]
        if mult != 1.0:
            if mult <= 0:
                raise ModelError("rate multipliers must be positive")
            block_tree = tree.copy()
            for u, v in block_tree.edges():
                block_tree.set_edge_length(u, v, block_tree.edge_length(u, v) * mult)
        blocks.append(
            simulate_alignment(
                block_tree,
                models[i],
                partition_sizes[i],
                rng=rng,
                gamma_alpha=None if gamma_alphas is None else gamma_alphas[i],
            )
        )
    taxa = blocks[0].taxa
    for b in blocks[1:]:
        if b.taxa != taxa:  # pragma: no cover - defensive
            raise ModelError("taxon sets diverged across partitions")
    data = np.concatenate([b.data for b in blocks], axis=1)
    return Alignment(taxa, data, DNA)
