"""Partition schemes for multi-gene / whole-genome alignments.

A *partition* is a named set of alignment sites that shares one substitution
model, one α shape parameter (or one per-site-rate vector) and — unless
per-partition branch lengths are requested (the ``-M`` option) — the global
branch lengths.  The paper's central workloads are partitioned alignments
with 10 … 1000 gene-sized partitions.

The text format follows RAxML's partition file::

    DNA, gene1 = 1-1000
    DNA, gene2 = 1001-2000
    DNA, codon3 = 3-3000\\3

i.e. 1-based inclusive ranges, comma-separated range lists, and an optional
``\\k`` stride for codon-position partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import AlignmentError

__all__ = [
    "Partition",
    "PartitionScheme",
    "parse_partition_file",
    "read_partition_file",
    "format_partition_file",
    "write_partition_file",
]


@dataclass
class Partition:
    """A named partition: a model tag plus the (0-based) site indices."""

    name: str
    sites: np.ndarray
    model: str = "DNA"

    def __post_init__(self) -> None:
        self.sites = np.asarray(self.sites, dtype=np.intp)
        if self.sites.size == 0:
            raise AlignmentError(f"partition {self.name!r} selects no sites")
        if np.any(self.sites < 0):
            raise AlignmentError(f"partition {self.name!r} has negative site indices")
        if np.unique(self.sites).size != self.sites.size:
            raise AlignmentError(f"partition {self.name!r} repeats sites")

    @property
    def n_sites(self) -> int:
        return int(self.sites.size)


@dataclass
class PartitionScheme:
    """An ordered list of partitions covering an alignment.

    The scheme validates that partitions are disjoint; ``validate_cover``
    additionally checks that every alignment site is assigned (RAxML warns
    on uncovered sites, we make it an explicit opt-in check).
    """

    partitions: list[Partition] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.partitions:
            raise AlignmentError("a partition scheme needs at least one partition")
        names = [p.name for p in self.partitions]
        if len(set(names)) != len(names):
            raise AlignmentError("partition names must be unique")
        all_sites = np.concatenate([p.sites for p in self.partitions])
        if np.unique(all_sites).size != all_sites.size:
            raise AlignmentError("partitions overlap")

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self):
        return iter(self.partitions)

    def __getitem__(self, i: int) -> Partition:
        return self.partitions[i]

    @property
    def n_sites(self) -> int:
        return int(sum(p.n_sites for p in self.partitions))

    def validate_cover(self, n_sites: int) -> None:
        """Ensure the scheme covers exactly sites ``0..n_sites-1``."""
        all_sites = np.concatenate([p.sites for p in self.partitions])
        if np.any(all_sites >= n_sites):
            raise AlignmentError(
                f"partition sites exceed alignment length {n_sites}"
            )
        if all_sites.size != n_sites:
            raise AlignmentError(
                f"partitions cover {all_sites.size} of {n_sites} sites"
            )

    @classmethod
    def single(cls, n_sites: int, name: str = "ALL", model: str = "DNA") -> "PartitionScheme":
        """The trivial unpartitioned scheme over ``n_sites`` sites."""
        if n_sites <= 0:
            raise AlignmentError("n_sites must be positive")
        return cls([Partition(name=name, sites=np.arange(n_sites), model=model)])

    @classmethod
    def contiguous_blocks(
        cls, block_sizes: list[int], names: list[str] | None = None, model: str = "DNA"
    ) -> "PartitionScheme":
        """Build a scheme of consecutive blocks of the given sizes."""
        if names is None:
            names = [f"p{i}" for i in range(len(block_sizes))]
        if len(names) != len(block_sizes):
            raise AlignmentError("names/block_sizes length mismatch")
        parts = []
        offset = 0
        for name, size in zip(names, block_sizes):
            if size <= 0:
                raise AlignmentError("block sizes must be positive")
            parts.append(
                Partition(name=name, sites=np.arange(offset, offset + size), model=model)
            )
            offset += size
        return cls(parts)


def _parse_range_spec(spec: str, name: str) -> np.ndarray:
    """Parse ``1-1000, 2001-3000\\3`` style 1-based range lists."""
    sites: list[np.ndarray] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            raise AlignmentError(f"empty range in partition {name!r}")
        stride = 1
        if "\\" in chunk:
            chunk, stride_s = chunk.split("\\", 1)
            try:
                stride = int(stride_s)
            except ValueError as exc:
                raise AlignmentError(
                    f"bad stride {stride_s!r} in partition {name!r}"
                ) from exc
            if stride <= 0:
                raise AlignmentError(f"stride must be positive in {name!r}")
        chunk = chunk.strip()
        if "-" in chunk:
            lo_s, hi_s = chunk.split("-", 1)
            try:
                lo, hi = int(lo_s), int(hi_s)
            except ValueError as exc:
                raise AlignmentError(f"bad range {chunk!r} in {name!r}") from exc
        else:
            try:
                lo = hi = int(chunk)
            except ValueError as exc:
                raise AlignmentError(f"bad site {chunk!r} in {name!r}") from exc
        if lo < 1 or hi < lo:
            raise AlignmentError(f"invalid range {chunk!r} in {name!r}")
        sites.append(np.arange(lo - 1, hi, stride, dtype=np.intp))
    return np.concatenate(sites)


def parse_partition_file(text: str) -> PartitionScheme:
    """Parse RAxML-style partition-file text into a :class:`PartitionScheme`."""
    parts: list[Partition] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "," not in line or "=" not in line:
            raise AlignmentError(f"malformed partition line {lineno}: {raw!r}")
        model, rest = line.split(",", 1)
        name, spec = rest.split("=", 1)
        parts.append(
            Partition(
                name=name.strip(),
                sites=_parse_range_spec(spec.strip(), name.strip()),
                model=model.strip(),
            )
        )
    return PartitionScheme(parts)


def read_partition_file(path: str | Path) -> PartitionScheme:
    """Read a RAxML-style partition file from disk."""
    return parse_partition_file(Path(path).read_text())


def format_partition_file(scheme: PartitionScheme) -> str:
    """Serialize a scheme back to RAxML partition-file text.

    Site runs are emitted as 1-based inclusive ranges; strided
    (codon-position) partitions round-trip through explicit ranges.
    """
    lines = []
    for part in scheme:
        sites = np.sort(part.sites)
        chunks = []
        start = prev = int(sites[0])
        for s in sites[1:]:
            s = int(s)
            if s == prev + 1:
                prev = s
                continue
            chunks.append((start, prev))
            start = prev = s
        chunks.append((start, prev))
        spec = ", ".join(
            f"{a + 1}-{b + 1}" if a != b else f"{a + 1}" for a, b in chunks
        )
        lines.append(f"{part.model}, {part.name} = {spec}")
    return "\n".join(lines) + "\n"


def write_partition_file(scheme: PartitionScheme, path: str | Path) -> None:
    """Write a scheme to disk in RAxML partition-file format."""
    Path(path).write_text(format_partition_file(scheme))
