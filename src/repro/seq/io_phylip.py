"""Relaxed sequential PHYLIP reading and writing.

RAxML-Light and ExaML consume relaxed PHYLIP: a ``<n_taxa> <n_sites>``
header followed by ``name sequence`` rows where the name is any
whitespace-free token (classic PHYLIP's 10-column fixed names are also
accepted as a fallback).
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.errors import AlignmentError
from repro.seq.alignment import Alignment
from repro.seq.alphabet import DNA, Alphabet

__all__ = ["read_phylip", "write_phylip", "parse_phylip"]


def parse_phylip(text: str, alphabet: Alphabet = DNA) -> Alignment:
    """Parse relaxed sequential PHYLIP text into an :class:`Alignment`."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise AlignmentError("empty PHYLIP input")
    header = lines[0].split()
    if len(header) != 2:
        raise AlignmentError(f"bad PHYLIP header: {lines[0]!r}")
    try:
        n_taxa, n_sites = int(header[0]), int(header[1])
    except ValueError as exc:
        raise AlignmentError(f"non-numeric PHYLIP header: {lines[0]!r}") from exc
    if n_taxa <= 0 or n_sites <= 0:
        raise AlignmentError("PHYLIP header must declare positive dimensions")
    if len(lines) - 1 < n_taxa:
        raise AlignmentError(
            f"PHYLIP header declares {n_taxa} taxa but only "
            f"{len(lines) - 1} data lines follow"
        )

    seqs: dict[str, str] = {}
    row = 1
    for _ in range(n_taxa):
        parts = lines[row].split(None, 1)
        if len(parts) == 2 and len(parts[1].replace(" ", "")) >= 1:
            name, seq = parts[0], parts[1].replace(" ", "")
        else:
            # classic PHYLIP: 10-character name field
            name = lines[row][:10].strip()
            seq = lines[row][10:].replace(" ", "")
        row += 1
        # interleaved continuation lines for sequential files that wrap
        while len(seq) < n_sites and row < len(lines):
            nxt = lines[row].replace(" ", "")
            seq += nxt
            row += 1
        if len(seq) != n_sites:
            raise AlignmentError(
                f"taxon {name!r}: expected {n_sites} sites, found {len(seq)}"
            )
        if name in seqs:
            raise AlignmentError(f"duplicate taxon {name!r}")
        seqs[name] = seq
    return Alignment.from_sequences(seqs, alphabet)


def read_phylip(path: str | Path, alphabet: Alphabet = DNA) -> Alignment:
    """Read a relaxed PHYLIP file from disk."""
    return parse_phylip(Path(path).read_text(), alphabet)


def write_phylip(alignment: Alignment, path: str | Path) -> None:
    """Write an alignment as relaxed sequential PHYLIP."""
    buf = io.StringIO()
    buf.write(f"{alignment.n_taxa} {alignment.n_sites}\n")
    pad = max(len(t) for t in alignment.taxa) + 2
    for taxon in alignment.taxa:
        buf.write(f"{taxon:<{pad}}{alignment.sequence(taxon)}\n")
    Path(path).write_text(buf.getvalue())
