"""Nonparametric bootstrap support values.

The standard companion analysis to any ML tree search (and RAxML's other
headline feature): resample alignment columns with replacement, re-run
the search on each pseudo-replicate, and report for every bipartition of
the best tree the fraction of replicates containing it.

With compressed site patterns a bootstrap replicate is just a *reweighting*
— draw the per-pattern multiplicities from a multinomial over the original
weights — so replicates share all pattern data and tip vectors with the
original analysis (the same trick production codes use).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SearchError
from repro.likelihood.backend import SequentialBackend
from repro.rng import ensure_rng
from repro.likelihood.partitioned import PartitionData, PartitionedLikelihood
from repro.search.search import SearchConfig, hill_climb
from repro.tree.distances import bipartitions
from repro.tree.topology import Tree

__all__ = ["BootstrapResult", "bootstrap_weights", "bootstrap_support"]


@dataclass
class BootstrapResult:
    """Support per bipartition of the reference tree."""

    n_replicates: int
    support: dict[frozenset, float]

    def min_support(self) -> float:
        return min(self.support.values()) if self.support else 1.0

    def format(self) -> str:
        lines = [f"bootstrap support ({self.n_replicates} replicates):"]
        for split, value in sorted(
            self.support.items(), key=lambda kv: -kv[1]
        ):
            members = ",".join(sorted(split))
            lines.append(f"  {value * 100:5.1f}%  {{{members}}}")
        return "\n".join(lines)


def bootstrap_weights(
    weights: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Multinomial resample of pattern multiplicities.

    The total (weighted) site count is preserved in expectation and the
    draw is over the normalized original weights — equivalent to sampling
    alignment columns with replacement.  Patterns drawn zero times get an
    ε weight so vector shapes stay fixed (they contribute ~nothing).
    """
    weights = np.asarray(weights, dtype=np.float64)
    total = int(round(weights.sum()))
    if total < 1:
        raise SearchError("cannot bootstrap an empty alignment")
    counts = rng.multinomial(total, weights / weights.sum()).astype(np.float64)
    counts[counts == 0.0] = 1.0e-9
    return counts


def _replicate_parts(
    parts: list[PartitionData], rng: np.random.Generator
) -> list[PartitionData]:
    out = []
    for part in parts:
        rep = part.subset(np.arange(part.n_patterns))
        rep.weights = bootstrap_weights(part.weights, rng)
        out.append(rep)
    return out


def bootstrap_support(
    lik: PartitionedLikelihood,
    reference_tree: Tree,
    n_replicates: int = 20,
    config: SearchConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> BootstrapResult:
    """Bootstrap the dataset behind ``lik`` and score ``reference_tree``.

    Each replicate reweights the patterns, restarts the search from the
    reference topology (the common "rapid bootstrap"-style shortcut) and
    records which reference bipartitions survive.
    """
    if n_replicates < 1:
        raise SearchError("need at least one replicate")
    rng = ensure_rng(rng)
    config = config or SearchConfig(max_iterations=2, radius_max=2,
                                    model_opt=False)
    # Sort the split set once: set iteration order follows the per-
    # process str hash seed, which would give replicas (and re-runs)
    # different support-dict orders and accumulation sequences.
    reference_splits = sorted(bipartitions(reference_tree),
                              key=lambda s: sorted(s))
    hits = {split: 0 for split in reference_splits}

    for _ in range(n_replicates):
        rep_parts = _replicate_parts(lik.parts, rng)
        rep_tree = reference_tree.copy()
        rep_lik = PartitionedLikelihood(rep_tree, rep_parts, lik.taxa)
        hill_climb(SequentialBackend(rep_lik), config)
        rep_splits = bipartitions(rep_tree)
        for split in reference_splits:
            if split in rep_splits:
                hits[split] += 1

    return BootstrapResult(
        n_replicates=n_replicates,
        support={s: h / n_replicates for s, h in hits.items()},
    )
