"""Lazy SPR rounds (the core move of the RAxML search algorithm).

For every prunable subtree the round tries re-insertions into all branches
within the rearrangement radius of the pruning point.  Each trial is
scored *lazily*: only the insertion branch is re-optimized (a short Newton
run, one parallel region per iteration) before a single evaluation — full
branch re-optimization happens only when a move is accepted.  This is the
classical RAxML economy: thousands of cheap trials, few expensive commits.

Both engines execute this exact code; determinism (sorted candidate
enumeration, fixed tolerance) keeps decentralized replicas in lock step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TreeError
from repro.likelihood.optimize_branch import optimize_branch
from repro.tree.rearrange import SPRContext, edges_within_radius
from repro.tree.topology import Node

__all__ = ["SPRStats", "spr_round"]


@dataclass
class SPRStats:
    """Outcome of one SPR round."""

    subtrees_tried: int = 0
    insertions_tried: int = 0
    moves_accepted: int = 0
    best_logl: float = float("-inf")


def _prunable_subtrees(tree) -> list[tuple[Node, Node]]:
    """Deterministic list of (junction, subtree_root) candidates."""
    out = []
    for u, v in tree.edges():
        # subtree rooted at u pruned from junction v, and vice versa
        if not v.is_leaf:
            out.append((v, u))
        if not u.is_leaf:
            out.append((u, v))
    return out


def spr_round(
    backend,
    radius: int,
    current_logl: float,
    accept_epsilon: float = 1.0e-3,
    lazy_newton_iters: int = 8,
) -> SPRStats:
    """One pass of lazy SPR over all subtrees; accepts improving moves
    greedily.  Returns statistics including the final log likelihood."""
    if radius < 1:
        raise TreeError("SPR radius must be >= 1")
    tree = backend.tree
    stats = SPRStats(best_logl=current_logl)
    # Live telemetry (see repro.obs.progress): per-subtree heartbeat
    # status plus one streamed event per accepted move.  The per-trial
    # inner loop stays untouched — thousands of cheap trials must not
    # pay even a no-op call each.
    progress = getattr(backend, "progress", None)
    if progress is not None and not progress.enabled:
        progress = None

    for junction_id, root_id in [
        (j.id, r.id) for j, r in _prunable_subtrees(tree)
    ]:
        junction = tree.node(junction_id)
        subtree_root = tree.node(root_id)
        try:
            ctx = SPRContext(tree, junction, subtree_root)
        except TreeError:
            continue  # 4-taxon corner cases
        stats.subtrees_tried += 1
        if progress is not None:
            progress.status()  # liveness stamp: one subtree's trials done
        healed = ctx.healed_edge
        original_insertion = tree.edge_length(junction, subtree_root).copy()

        best_target: tuple[int, int] | None = None
        best_trial_logl = stats.best_logl
        healed_key = (min(healed[0].id, healed[1].id), max(healed[0].id, healed[1].id))
        targets = edges_within_radius(tree, healed, radius, exclude=junction)
        for e1, e2 in targets:
            if (min(e1.id, e2.id), max(e1.id, e2.id)) == healed_key:
                continue  # re-inserting into the healed edge is a no-op move
            ctx.regraft(e1, e2)
            stats.insertions_tried += 1
            # lazy scoring: optimize only the insertion branch, then evaluate
            optimize_branch(backend, junction, subtree_root,
                            max_iter=lazy_newton_iters)
            trial_logl, _ = backend.evaluate(junction, subtree_root)
            if trial_logl > best_trial_logl + accept_epsilon:
                best_trial_logl = trial_logl
                best_target = (e1.id, e2.id)
            ctx.undo_regraft()
            tree.set_edge_length(junction, subtree_root, original_insertion)

        if best_target is None:
            ctx.restore()
            continue
        # commit the best insertion and re-optimize the branches it touches
        e1, e2 = tree.node(best_target[0]), tree.node(best_target[1])
        ctx.regraft(e1, e2)
        ctx.commit()
        for a, b in (
            (junction, subtree_root),
            (junction, e1),
            (junction, e2),
        ):
            optimize_branch(backend, a, b)
        new_logl, _ = backend.evaluate(junction, subtree_root)
        if new_logl + accept_epsilon < stats.best_logl:
            # full optimization disagreed with the lazy score: revert
            undo = SPRContext(tree, junction, subtree_root)
            undo.regraft(tree.node(healed[0].id), tree.node(healed[1].id))
            undo.commit()
            tree.set_edge_length(junction, subtree_root, original_insertion)
            reverted_logl, _ = backend.evaluate(junction, subtree_root)
            stats.best_logl = max(stats.best_logl, reverted_logl)
            continue
        stats.best_logl = new_logl
        stats.moves_accepted += 1
        if progress is not None:
            progress.event("move", logl=new_logl,
                           insertions_tried=stats.insertions_tried,
                           moves_accepted=stats.moves_accepted)
            progress.status(logl=new_logl)
    return stats
