"""Tree search: RAxML-style lazy-SPR hill climbing with interleaved
branch-length and model-parameter optimization, plus checkpointing."""

from repro.search.search import SearchConfig, SearchResult, hill_climb
from repro.search.spr import spr_round
from repro.search.nni import nni_round
from repro.search.bootstrap import bootstrap_support, BootstrapResult
from repro.search.checkpoint import save_checkpoint, load_checkpoint, restore_into

__all__ = [
    "SearchConfig",
    "SearchResult",
    "hill_climb",
    "spr_round",
    "nni_round",
    "bootstrap_support",
    "BootstrapResult",
    "save_checkpoint",
    "load_checkpoint",
    "restore_into",
]
