"""The hill-climbing search driver.

Implements the RAxML search skeleton that RAxML-Light and ExaML share
(the paper stresses both codes run *exactly the same* algorithm):

1. optimize branch lengths and model parameters on the starting tree;
2. iterate lazy-SPR rounds with an escalating rearrangement radius,
   re-smoothing branches and re-optimizing the model between rounds;
3. stop when a round improves the log likelihood by less than ``epsilon``
   at the maximum radius (or the iteration cap is hit).

The driver is engine-agnostic: give it any
:class:`~repro.likelihood.backend.LikelihoodBackend` and it will emit the
same deterministic sequence of likelihood operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SearchError
from repro.likelihood.optimize_branch import smooth_all_branches
from repro.likelihood.optimize_model import optimize_model
from repro.obs.progress import NULL_PROGRESS
from repro.obs.tracer import NULL_TRACER
from repro.search.spr import SPRStats, spr_round

__all__ = ["SearchConfig", "SearchResult", "hill_climb"]


@dataclass(frozen=True)
class SearchConfig:
    """Tuning knobs of the hill climber.

    The defaults are scaled-down analogues of RAxML's production settings
    so that test and benchmark runs finish in reasonable time; the
    algorithmic structure (and therefore the parallel-region stream) is
    unchanged.
    """

    epsilon: float = 0.1
    max_iterations: int = 20
    radius_min: int = 1
    radius_max: int = 5
    branch_passes: int = 1
    model_opt: bool = True
    optimize_gtr: bool = False
    alpha_iterations: int = 16
    gtr_iterations: int = 10
    psr_candidates: int = 12
    accept_epsilon: float = 1.0e-3
    lazy_newton_iters: int = 8
    checkpoint_every: int = 0
    checkpoint_path: str | None = None

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise SearchError("epsilon must be positive")
        if self.radius_min < 1 or self.radius_max < self.radius_min:
            raise SearchError("invalid radius schedule")
        if self.max_iterations < 1:
            raise SearchError("need at least one iteration")
        if self.checkpoint_every < 0:
            raise SearchError("checkpoint_every must be >= 0")
        if self.checkpoint_every > 0 and not self.checkpoint_path:
            raise SearchError("checkpoint_every needs a checkpoint_path")


@dataclass
class SearchResult:
    """Outcome of a hill-climbing run."""

    logl: float
    iterations: int
    moves_accepted: int
    insertions_tried: int
    converged: bool
    logl_trace: list[float] = field(default_factory=list)
    #: True when the search stopped at a cooperative cancellation point
    #: (SIGTERM under a cancellable launcher) instead of converging.
    cancelled: bool = False


def hill_climb(backend, config: SearchConfig | None = None) -> SearchResult:
    """Run the full search on ``backend``; returns a :class:`SearchResult`.

    The backend's tree is modified in place (it ends as the best tree
    found).
    """
    config = config or SearchConfig()
    tree = backend.tree
    # Search-phase spans: backends built by a tracing launcher carry a
    # tracer; everything else gets the zero-cost null tracer.  (Explicit
    # None check: a span-less Tracer is empty, hence falsy.)
    tracer = getattr(backend, "tracer", None)
    if tracer is None:
        tracer = NULL_TRACER
    # Live progress events follow the same discipline: backends built by
    # a monitoring launcher carry a reporter, everything else gets the
    # shared no-op (no allocation, no clock read on the hot path).
    progress = getattr(backend, "progress", None)
    if progress is None:
        progress = NULL_PROGRESS

    def write_checkpoint(iteration: int, radius: int, logl: float) -> None:
        # Only backends that expose their full likelihood state can
        # write one, and in a replicated run only one rank should (all
        # replicas hold identical state — maximum redundancy, any
        # writer works).
        if not config.checkpoint_path:
            return
        if not getattr(backend, "writes_checkpoints", True):
            return
        lik = getattr(backend, "lik", None)
        if lik is None:  # pragma: no cover - recording/model backends
            return
        from repro.search.checkpoint import save_checkpoint

        save_checkpoint(config.checkpoint_path, lik, iteration, radius, logl)
        progress.checkpoint(str(config.checkpoint_path), iteration)

    def maybe_checkpoint(iteration: int, radius: int, logl: float) -> None:
        # Periodic checkpointing (RAxML-Light's headline feature).
        if not config.checkpoint_every or iteration % config.checkpoint_every:
            return
        write_checkpoint(iteration, radius, logl)

    def anchor():
        # SPR moves may delete whichever edge we evaluated at last time;
        # re-anchor at the (deterministic) first edge of the current tree.
        return tree.edges()[0]

    u, v = anchor()

    progress.phase("initial_smooth")
    with tracer.span("initial_smooth", kind="search"):
        smooth_all_branches(backend, passes=max(2, config.branch_passes))
    logl, _ = backend.evaluate(u, v)
    progress.status(logl=logl)
    if config.model_opt:
        progress.phase("model_opt", iteration=0)
        with tracer.span("model_opt", kind="search", iteration=0):
            logl = optimize_model(
                backend,
                u,
                v,
                alpha_iterations=config.alpha_iterations,
                gtr_iterations=config.gtr_iterations,
                psr_candidates=config.psr_candidates,
                optimize_rates=config.optimize_gtr,
            )

    trace = [logl]
    radius = config.radius_min
    moves_total = 0
    insertions_total = 0
    converged = False
    cancelled = False
    iterations = 0
    # Cooperative cancellation: launchers armed with ``cancellable=True``
    # attach an ``agree_stop`` poll (see repro.engines.cancel).  Polled
    # once per iteration, at the boundary — the only point where tree,
    # model and CLV state are guaranteed consistent, hence the only
    # point where a final checkpoint is safe to write.
    agree_stop = getattr(backend, "agree_stop", None)

    for next_iteration in range(1, config.max_iterations + 1):
        if agree_stop is not None and agree_stop():
            cancelled = True
            progress.event("cancelled", iteration=iterations, logl=logl)
            write_checkpoint(iterations, radius, logl)
            break
        iterations = next_iteration
        progress.phase("spr_round", iteration=iterations, radius=radius)
        progress.status(iteration=iterations, radius=radius)
        with tracer.span("spr_round", kind="search", iteration=iterations,
                         radius=radius):
            stats: SPRStats = spr_round(
                backend,
                radius,
                logl,
                accept_epsilon=config.accept_epsilon,
                lazy_newton_iters=config.lazy_newton_iters,
            )
        moves_total += stats.moves_accepted
        insertions_total += stats.insertions_tried

        progress.phase("smooth_branches", iteration=iterations)
        with tracer.span("smooth_branches", kind="search",
                         iteration=iterations):
            smooth_all_branches(backend, passes=config.branch_passes)
        u, v = anchor()
        new_logl, _ = backend.evaluate(u, v)
        if config.model_opt:
            progress.phase("model_opt", iteration=iterations)
            with tracer.span("model_opt", kind="search",
                             iteration=iterations):
                new_logl = optimize_model(
                    backend,
                    u,
                    v,
                    alpha_iterations=config.alpha_iterations,
                    gtr_iterations=config.gtr_iterations,
                    psr_candidates=config.psr_candidates,
                    optimize_rates=config.optimize_gtr,
                )
        improvement = new_logl - logl
        logl = max(logl, new_logl)
        trace.append(logl)
        progress.iteration(iterations, logl=logl, radius=radius,
                           moves_accepted=stats.moves_accepted,
                           insertions_tried=stats.insertions_tried)
        maybe_checkpoint(iterations, radius, logl)

        if improvement < config.epsilon and stats.moves_accepted == 0:
            if radius >= config.radius_max:
                converged = True
                break
            radius = min(radius * 2, config.radius_max)
        else:
            # RAxML-style escalation: widen the rearrangement radius as the
            # easy local moves dry up, instead of looping forever at the
            # smallest radius (which strands the search in shallow optima)
            radius = min(radius + 1, config.radius_max)

    backend.finish()
    progress.event("search_end", logl=logl, iterations=iterations,
                   moves_accepted=moves_total, converged=converged,
                   cancelled=cancelled)
    return SearchResult(
        logl=logl,
        iterations=iterations,
        moves_accepted=moves_total,
        insertions_tried=insertions_total,
        converged=converged,
        logl_trace=trace,
        cancelled=cancelled,
    )
