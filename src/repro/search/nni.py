"""Nearest-neighbor-interchange rounds.

NNI is the cheap local polish the library offers alongside SPR: every
inner edge has two alternative topologies; each is scored with a short
branch re-optimization and accepted greedily if it improves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.likelihood.optimize_branch import optimize_branch
from repro.tree.rearrange import nni_swap

__all__ = ["NNIStats", "nni_round"]


@dataclass
class NNIStats:
    edges_tried: int = 0
    swaps_accepted: int = 0
    best_logl: float = float("-inf")


def nni_round(backend, current_logl: float, accept_epsilon: float = 1.0e-3) -> NNIStats:
    """One NNI sweep over all inner edges (greedy, deterministic order)."""
    tree = backend.tree
    stats = NNIStats(best_logl=current_logl)
    inner_edges = [
        (u.id, v.id) for u, v in tree.edges() if not u.is_leaf and not v.is_leaf
    ]
    for uid, vid in inner_edges:
        u, v = tree.node(uid), tree.node(vid)
        if not tree.has_edge(u, v):
            continue  # a previously accepted swap rewired this edge
        stats.edges_tried += 1
        for variant in (0, 1):
            undo = nni_swap(tree, u, v, variant)
            optimize_branch(backend, u, v)
            trial, _ = backend.evaluate(u, v)
            if trial > stats.best_logl + accept_epsilon:
                stats.best_logl = trial
                stats.swaps_accepted += 1
                break  # keep this swap; re-examine remaining edges later
            undo()
    return stats
