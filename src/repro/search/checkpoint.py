"""Search checkpointing.

RAxML-Light's headline feature — the paper introduces it as "a
checkpointable and scalable MPI-based code" — is the ability to stop a
multi-day run and restart it.  A checkpoint captures everything a replica
needs to resume deterministically: the tree (topology + all branch-length
sets), every partition's model parameters, and the search-loop state.

The format is a single ``.npz`` archive: portable, versioned, and cheap
to write from every rank (in the decentralized scheme all replicas hold
identical state, so any one of them can write it — maximum redundancy).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.model.rates import DiscreteGamma, NoRateHeterogeneity, PerSiteRates
from repro.tree.newick import parse_newick, write_newick

__all__ = ["save_checkpoint", "load_checkpoint", "restore_into"]

FORMAT_VERSION = 1


def save_checkpoint(path, lik, iteration: int, radius: int, logl: float) -> None:
    """Write the full search state of ``lik`` (and its tree) to ``path``."""
    tree = lik.tree
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {
        "version": FORMAT_VERSION,
        "iteration": int(iteration),
        "radius": int(radius),
        "logl": float(logl),
        "n_branch_sets": tree.n_branch_sets,
        "n_partitions": lik.n_partitions,
        "taxa": lik.taxa,
        "partitions": [],
    }
    # topology without lengths + all length sets keyed by edge
    meta["newick"] = write_newick(tree, lengths=False)
    edge_keys = []
    lengths = []
    label_of = {}
    for node in tree.nodes:
        if node.is_leaf:
            label_of[node.id] = node.label
    for u, v in tree.edges():
        edge_keys.append(_edge_name(tree, u, v))
        lengths.append(tree.edge_length(u, v))
    arrays["edge_lengths"] = np.vstack(lengths)
    meta["edge_names"] = edge_keys

    for i, part in enumerate(lik.parts):
        pm: dict = {"name": part.name, "branch_set": part.branch_set}
        rh = part.rate_het
        if isinstance(rh, DiscreteGamma):
            pm["rate_het"] = {"kind": "gamma", "alpha": rh.alpha, "n_cats": rh.n_cats}
        elif isinstance(rh, PerSiteRates):
            pm["rate_het"] = {"kind": "psr"}
            arrays[f"psr_rates_{i}"] = rh.rates
        elif isinstance(rh, NoRateHeterogeneity):
            pm["rate_het"] = {"kind": "none"}
        else:  # pragma: no cover - future models
            raise CheckpointError(f"cannot checkpoint {type(rh).__name__}")
        arrays[f"gtr_rates_{i}"] = part.model.rates
        arrays[f"frequencies_{i}"] = part.model.frequencies
        meta["partitions"].append(pm)

    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    # Atomic write: a crash mid-write (the very event checkpoints guard
    # against) must never leave a torn archive where the previous good
    # checkpoint used to be.  Write a sibling, fsync, then rename over.
    final = Path(path)
    if final.suffix != ".npz":  # np.savez appends .npz for bare paths
        final = final.with_name(final.name + ".npz")
    tmp = final.with_name(final.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        _fsync_dir(final.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry itself: the rename above is only durable
    once its *directory* hits disk — a crash between rename and dir flush
    could otherwise leave a restart with no visible checkpoint at all."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic fs without dir opens
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs refuses dir fsync
        pass
    finally:
        os.close(fd)


def _edge_name(tree, u, v) -> str:
    """A topology-stable, unique name for an edge: the sorted label set of
    the side *not* containing the globally smallest taxon.  The bipartition
    identifies the edge uniquely and is invariant under node renumbering
    (min-label pairs alone are NOT unique: a leaf edge and the edge above
    it can share both side minima)."""
    from repro.tree.topology import Node

    def side_labels(node: Node, parent: Node) -> list[str]:
        if node.is_leaf:
            return [node.label]  # type: ignore[list-item]
        out: list[str] = []
        for child in tree.other_neighbors(node, parent):
            out.extend(side_labels(child, node))
        return out

    side_u = sorted(side_labels(u, v))
    side_v = sorted(side_labels(v, u))
    global_min = min(side_u[0], side_v[0])
    side = side_v if global_min in side_u else side_u
    return ",".join(sorted(side))


def load_checkpoint(path) -> tuple[dict, dict[str, np.ndarray]]:
    """Read a checkpoint; returns ``(meta, arrays)``."""
    try:
        with np.load(Path(path)) as data:
            arrays = {k: data[k] for k in data.files}
    except Exception as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if "__meta__" not in arrays:
        raise CheckpointError("checkpoint is missing its metadata block")
    meta = json.loads(arrays.pop("__meta__").tobytes().decode("utf-8"))
    if meta.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {meta.get('version')}"
        )
    return meta, arrays


def restore_into(lik, meta: dict, arrays: dict[str, np.ndarray]):
    """Restore tree topology, branch lengths and model parameters.

    ``lik``'s alignment data must match the checkpointed run (same taxa
    and partition count); returns ``(iteration, radius, logl)``.
    """
    if meta["taxa"] != lik.taxa:
        raise CheckpointError("checkpoint is for a different taxon set")
    if meta["n_partitions"] != lik.n_partitions:
        raise CheckpointError("checkpoint is for a different partition count")

    # rebuild the topology in place: parse, then transplant
    new_tree = parse_newick(meta["newick"], meta["n_branch_sets"])
    if meta["n_branch_sets"] > 1:
        new_tree.set_n_branch_sets(meta["n_branch_sets"])
    name_to_row = {}
    for idx, name in enumerate(meta["edge_names"]):
        name_to_row[name] = idx
    lengths = arrays["edge_lengths"]
    for u, v in new_tree.edges():
        name = _edge_name(new_tree, u, v)
        if name not in name_to_row:
            raise CheckpointError(f"edge {name!r} missing from checkpoint")
        new_tree.set_edge_length(u, v, lengths[name_to_row[name]])

    # swap the restored tree into the likelihood
    lik.tree = new_tree
    lik._memo_counter = -1
    for p in range(lik.n_partitions):
        lik._cache[p].clear()
        lik._memo[p].clear()
    if hasattr(lik, "_ucache"):  # stacked implementation
        lik._ucache.clear()
        lik._umemo.clear()
        lik._stack_valid = False

    for i, pm in enumerate(meta["partitions"]):
        part = lik.parts[i]
        part.model = part.model.with_rates(arrays[f"gtr_rates_{i}"])
        part.model = part.model.with_frequencies(arrays[f"frequencies_{i}"])
        rh = pm["rate_het"]
        if rh["kind"] == "gamma":
            if not isinstance(part.rate_het, DiscreteGamma):
                raise CheckpointError(f"partition {i}: rate-het kind mismatch")
            part.rate_het.alpha = rh["alpha"]
        elif rh["kind"] == "psr":
            if not isinstance(part.rate_het, PerSiteRates):
                raise CheckpointError(f"partition {i}: rate-het kind mismatch")
            part.rate_het.set_rates(arrays[f"psr_rates_{i}"])
        part.bump_model()
    return meta["iteration"], meta["radius"], meta["logl"]
