"""Cross-validation: the fork-join *communication model* against the
bytes a *real* distributed fork-join run actually transmits.

The Table-I model prices descriptors and payloads analytically; the real
master/worker implementation counts the bytes of every object it puts on
the wire.  The two are built independently, so order-of-magnitude (and
per-category ranking) agreement is strong evidence the model measures the
real protocol rather than itself.
"""

import numpy as np
import pytest

from repro.datasets import partitioned_workload
from repro.engines.forkjoin import (
    CAT_BL_OPT,
    CAT_LIKELIHOOD,
    CAT_MODEL,
    CAT_TRAVERSAL,
    ForkJoinCommModel,
)
from repro.engines.launch import run_forkjoin
from repro.engines.recording import RecordingBackend
from repro.search.search import SearchConfig, hill_climb
from repro.tree.newick import write_newick


@pytest.fixture(scope="module")
def measured_and_modeled():
    wl = partitioned_workload(4, n_taxa=8, sites_per_partition=30)
    lik = wl.build_likelihood("gamma")
    newick = write_newick(wl.tree)
    cfg = SearchConfig(max_iterations=1, radius_max=2, alpha_iterations=6)

    real = run_forkjoin(lik.parts, lik.taxa, newick, n_ranks=2, config=cfg)

    lik2 = wl.build_likelihood("gamma")
    from repro.tree.newick import parse_newick

    lik2 = type(lik2)(parse_newick(newick), lik2.parts, lik2.taxa)
    rec = RecordingBackend(lik2)
    hill_climb(rec, cfg)
    modeled = ForkJoinCommModel().byte_totals(rec.log)
    return real.bytes_by_tag, modeled


class TestModelAgainstWire:
    def test_categories_present_in_both(self, measured_and_modeled):
        real, modeled = measured_and_modeled
        for cat in (CAT_TRAVERSAL, CAT_BL_OPT, CAT_LIKELIHOOD):
            assert real.get(cat, 0) > 0, cat
            assert modeled[cat] > 0, cat

    def test_same_dominant_category(self, measured_and_modeled):
        real, modeled = measured_and_modeled
        cats = [CAT_TRAVERSAL, CAT_BL_OPT, CAT_LIKELIHOOD, CAT_MODEL]
        real_top = max(cats, key=lambda c: real.get(c, 0))
        model_top = max(cats, key=lambda c: modeled[c])
        assert real_top == model_top == CAT_TRAVERSAL

    def test_totals_within_factor_four(self, measured_and_modeled):
        """Wire framing (tuples, small-object overhead, per-rank copies)
        differs from the idealized byte counts, but not wildly."""
        real, modeled = measured_and_modeled
        cats = [CAT_TRAVERSAL, CAT_BL_OPT, CAT_LIKELIHOOD]
        real_total = sum(real.get(c, 0) for c in cats)
        model_total = sum(modeled[c] for c in cats)
        ratio = real_total / model_total
        assert 0.25 < ratio < 4.0, ratio

    def test_traversal_share_agrees(self, measured_and_modeled):
        real, modeled = measured_and_modeled
        cats = [CAT_TRAVERSAL, CAT_BL_OPT, CAT_LIKELIHOOD, CAT_MODEL]
        share_real = real.get(CAT_TRAVERSAL, 0) / sum(
            real.get(c, 0) for c in cats
        )
        share_model = modeled[CAT_TRAVERSAL] / sum(modeled.values())
        assert abs(share_real - share_model) < 0.35
