"""Cross-validation: the fork-join *communication model* against the
bytes a *real* distributed fork-join run actually transmits.

The Table-I model prices descriptors and payloads analytically; the real
master/worker implementation counts the bytes of every object it puts on
the wire.  The two are built independently, so order-of-magnitude (and
per-category ranking) agreement is strong evidence the model measures the
real protocol rather than itself.
"""

import numpy as np
import pytest

from repro.datasets import partitioned_workload
from repro.engines.forkjoin import (
    CAT_BL_OPT,
    CAT_LIKELIHOOD,
    CAT_MODEL,
    CAT_TRAVERSAL,
    ForkJoinCommModel,
)
from repro.engines.launch import run_decentralized, run_forkjoin
from repro.engines.recording import RecordingBackend
from repro.obs.reconcile import (
    DECENTRALIZED_REL_TOL,
    FORKJOIN_REL_TOL,
    reconcile_live_run,
)
from repro.search.search import SearchConfig, hill_climb
from repro.tree.newick import write_newick


@pytest.fixture(scope="module")
def measured_and_modeled():
    wl = partitioned_workload(4, n_taxa=8, sites_per_partition=30)
    lik = wl.build_likelihood("gamma")
    newick = write_newick(wl.tree)
    cfg = SearchConfig(max_iterations=1, radius_max=2, alpha_iterations=6)

    real = run_forkjoin(lik.parts, lik.taxa, newick, n_ranks=2, config=cfg)

    lik2 = wl.build_likelihood("gamma")
    from repro.tree.newick import parse_newick

    lik2 = type(lik2)(parse_newick(newick), lik2.parts, lik2.taxa)
    rec = RecordingBackend(lik2)
    hill_climb(rec, cfg)
    modeled = ForkJoinCommModel().byte_totals(rec.log)
    return real.bytes_by_tag, modeled


class TestModelAgainstWire:
    def test_categories_present_in_both(self, measured_and_modeled):
        real, modeled = measured_and_modeled
        for cat in (CAT_TRAVERSAL, CAT_BL_OPT, CAT_LIKELIHOOD):
            assert real.get(cat, 0) > 0, cat
            assert modeled[cat] > 0, cat

    def test_same_dominant_category(self, measured_and_modeled):
        real, modeled = measured_and_modeled
        cats = [CAT_TRAVERSAL, CAT_BL_OPT, CAT_LIKELIHOOD, CAT_MODEL]
        real_top = max(cats, key=lambda c: real.get(c, 0))
        model_top = max(cats, key=lambda c: modeled[c])
        assert real_top == model_top == CAT_TRAVERSAL

    def test_totals_within_factor_four(self, measured_and_modeled):
        """Wire framing (tuples, small-object overhead, per-rank copies)
        differs from the idealized byte counts, but not wildly."""
        real, modeled = measured_and_modeled
        cats = [CAT_TRAVERSAL, CAT_BL_OPT, CAT_LIKELIHOOD]
        real_total = sum(real.get(c, 0) for c in cats)
        model_total = sum(modeled[c] for c in cats)
        ratio = real_total / model_total
        assert 0.25 < ratio < 4.0, ratio

    def test_traversal_share_agrees(self, measured_and_modeled):
        real, modeled = measured_and_modeled
        cats = [CAT_TRAVERSAL, CAT_BL_OPT, CAT_LIKELIHOOD, CAT_MODEL]
        share_real = real.get(CAT_TRAVERSAL, 0) / sum(
            real.get(c, 0) for c in cats
        )
        share_model = modeled[CAT_TRAVERSAL] / sum(modeled.values())
        assert abs(share_real - share_model) < 0.35


class TestDecentralizedReconciliation:
    """The strong version of the cross-validation, via ``obs.reconcile``:
    every decentralized collective is an allreduce of a flat float64
    array whose size the model knows, so a *non-root* rank's measured
    bytes must match the :class:`DecentralizedCommModel` **exactly**
    (MPComm composes allreduce = reduce + bcast and only the root
    additionally accounts the broadcast result)."""

    @pytest.fixture(scope="class")
    def report(self):
        wl = partitioned_workload(4, n_taxa=8, sites_per_partition=30)
        lik = wl.build_likelihood("gamma")
        newick = write_newick(wl.tree)
        cfg = SearchConfig(max_iterations=1, radius_max=2,
                           alpha_iterations=6)
        replicas = run_decentralized(lik.parts, lik.taxa, newick,
                                     n_ranks=2, config=cfg)
        measured = replicas[1]  # non-root: exactly one payload/allreduce
        return reconcile_live_run(
            lik.parts, lik.taxa, newick, cfg, "decentralized",
            measured.bytes_by_tag,
            measured_calls_by_tag=measured.calls_by_tag,
            measured_rank=1,
        )

    def test_exact_byte_match(self, report):
        assert report.within(DECENTRALIZED_REL_TOL)
        for row in report.rows:
            assert row.delta == 0.0, row
        assert report.measured_total == report.modeled_total > 0

    def test_call_counts_match(self, report):
        for row in report.rows:
            assert row.measured_calls == row.modeled_calls, row

    def test_nothing_unmodeled(self, report):
        assert report.unmodeled == {}

    def test_report_names_the_measured_rank(self, report):
        assert report.measured_rank == 1
        assert "(rank 1)" in report.format_table()


class TestForkJoinReconciliation:
    """Same API on the fork-join engine: framed tuples on the wire, so
    the match is within the documented tolerance, not exact."""

    def test_within_documented_tolerance(self, measured_and_modeled):
        real, _ = measured_and_modeled
        wl = partitioned_workload(4, n_taxa=8, sites_per_partition=30)
        lik = wl.build_likelihood("gamma")
        cfg = SearchConfig(max_iterations=1, radius_max=2,
                           alpha_iterations=6)
        report = reconcile_live_run(
            lik.parts, lik.taxa, write_newick(wl.tree), cfg, "forkjoin",
            real, measured_rank=0,
        )
        assert report.within(FORKJOIN_REL_TOL)
        assert report.worst_rel_error > 0  # genuinely inexact: framing
        # the unpriced STOP broadcast surfaces instead of vanishing
        assert "control" in report.unmodeled
