"""replicheck: the determinism & collective-consistency static analyzer.

The fixture corpus under ``tests/fixtures/replicheck/`` carries the
known-bad patterns (one file per rule, >= 2 seeded violations each) and
known-good counterparts; the acceptance test at the bottom runs the
analyzer over ``src/repro`` itself and requires zero unsuppressed
findings — the shipped baseline stays empty.
"""

import json
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    Baseline,
    analyze_paths,
    analyze_source,
    parse_suppressions,
)
from repro.analysis.findings import assign_fingerprints
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "replicheck"
SRC = Path(__file__).parent.parent / "src" / "repro"


def findings_for(path: Path):
    report = analyze_paths([path])
    assert not report.parse_errors, report.parse_errors
    return report


def from_snippet(code: str):
    findings, _ = analyze_source(textwrap.dedent(code), "snippet.py")
    return findings


class TestRuleCatalog:
    def test_full_catalog_documented(self):
        assert sorted(RULES) == [
            "R001", "R002", "R003", "R004", "R005", "R006",
            "R007", "R008", "R009", "R010", "R011",
        ]

    @pytest.mark.parametrize("rule", sorted(RULES))
    def test_bad_fixture_flags_only_its_rule(self, rule):
        report = findings_for(FIXTURES / f"bad_{rule.lower()}.py")
        counts = Counter(f.rule for f in report.findings)
        assert counts[rule] >= 2, counts
        assert set(counts) == {rule}, counts

    def test_good_fixture_is_clean(self):
        report = findings_for(FIXTURES / "good_clean.py")
        assert report.findings == []

    def test_every_finding_carries_location_and_hint(self):
        report = analyze_paths([FIXTURES])
        for f in report.all_findings():
            assert f.rule in RULES
            assert f.severity in ("error", "warning")
            assert f.line > 0 and f.path
            assert f.message
            formatted = f.format()
            assert f"{f.path}:{f.line}" in formatted
            assert f.rule in formatted


class TestR001:
    def test_seeded_generator_is_clean(self):
        assert from_snippet("""
            import numpy as np
            rng = np.random.default_rng(42)
            x = rng.random()
        """) == []

    def test_unseeded_default_rng_flagged(self):
        findings = from_snippet("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert [f.rule for f in findings] == ["R001"]

    def test_none_default_parameter_flagged(self):
        findings = from_snippet("""
            import numpy as np
            def build(rng=None):
                return np.random.default_rng(rng)
        """)
        assert [f.rule for f in findings] == ["R001"]

    def test_threaded_parameter_without_none_default_is_clean(self):
        assert from_snippet("""
            import numpy as np
            def build(seed):
                return np.random.default_rng(seed)
        """) == []


class TestR002:
    def test_sorted_wrapper_is_clean(self):
        assert from_snippet("""
            def f(splits: set):
                return [len(s) for s in sorted(splits, key=sorted)]
        """) == []

    def test_order_insensitive_consumers_are_clean(self):
        assert from_snippet("""
            def f(splits: set):
                return len(splits), max(splits), any(splits)
        """) == []

    def test_cross_module_set_return_annotation(self, tmp_path):
        (tmp_path / "producer.py").write_text(textwrap.dedent("""
            def bipartitions(tree) -> set:
                return {frozenset([1]), frozenset([2])}
        """))
        (tmp_path / "consumer.py").write_text(textwrap.dedent("""
            from producer import bipartitions

            def support(tree):
                return {s: 0 for s in bipartitions(tree)}
        """))
        report = analyze_paths([tmp_path])
        assert [f.rule for f in report.findings] == ["R002"]
        assert report.findings[0].path.endswith("consumer.py")


class TestR003:
    def test_data_dependent_branch_is_clean(self):
        # both replicas evaluate the same replicated value identically
        assert from_snippet("""
            def step(comm, x):
                total = comm.allreduce(x, tag="a")
                if total > 0:
                    comm.allreduce(x, tag="b")
        """) == []

    def test_rank_branch_same_sequence_is_clean(self):
        assert from_snippet("""
            def step(comm, x):
                if comm.rank == 0:
                    comm.bcast(x, root=0, tag="a")
                else:
                    comm.bcast(None, root=0, tag="a")
        """) == []

    def test_rank_branch_different_sequence_flagged(self):
        findings = from_snippet("""
            def step(comm, x):
                if comm.rank == 0:
                    comm.bcast(x, root=0, tag="a")
        """)
        assert [f.rule for f in findings] == ["R003"]

    def test_functools_reduce_not_a_collective(self):
        assert from_snippet("""
            from functools import reduce
            def total(xs, rank):
                if rank == 0:
                    return reduce(lambda a, b: a + b, xs)
                return 0
        """) == []


class TestR004:
    def test_wall_clock_in_loop_test_is_error(self):
        findings = from_snippet("""
            import time
            def run(budget):
                start = time.time()
                while time.time() - start < budget:
                    pass
        """)
        assert {f.rule for f in findings} == {"R004"}
        assert any(f.severity == "error" for f in findings)

    def test_obs_layer_is_exempt(self):
        findings, _ = analyze_source(
            "import time\nt = time.perf_counter()\n",
            "src/repro/obs/tracer.py",
        )
        assert findings == []


class TestR005:
    def test_sum_over_list_is_clean(self):
        assert from_snippet("def f(xs: list):\n    return sum(xs)\n") == []

    def test_sum_over_sorted_set_is_clean(self):
        assert from_snippet(
            "def f(xs: set):\n    return sum(sorted(xs))\n") == []

    def test_sum_over_set_flagged_once(self):
        findings = from_snippet("def f(xs: set):\n    return sum(xs)\n")
        assert [f.rule for f in findings] == ["R005"]


class TestSuppressions:
    def test_same_line_and_next_line_pragmas(self):
        source = textwrap.dedent("""
            import time
            # replicheck: ignore[R004] -- standalone pragma, next line
            a = time.time()
            b = time.time()  # replicheck: ignore[R004] -- same line
        """)
        sups = parse_suppressions(source)
        assert [(s.line, s.justified) for s in sups] == [(4, True), (5, True)]

    def test_pragma_in_docstring_is_not_a_suppression(self):
        source = '"""# replicheck: ignore[R001] -- docs only"""\n'
        assert parse_suppressions(source) == []

    def test_suppressed_fixture_reports_hygiene(self):
        report = findings_for(FIXTURES / "good_suppressed.py")
        assert report.findings == []
        assert len(report.suppressed) == 3
        assert len(report.unjustified_suppressions) == 1
        assert report.unused_suppressions == []

    def test_wrong_rule_pragma_does_not_suppress(self):
        findings, sups = analyze_source(
            "import time\nt = time.time()"
            "  # replicheck: ignore[R001] -- wrong rule\n",
            "x.py",
        )
        assert [f.rule for f in findings] == ["R004"]
        assert sups[0].rules == frozenset({"R001"})


class TestBaseline:
    def test_fingerprints_survive_line_shifts(self):
        code = "import random\nrandom.shuffle([])\n"
        shifted = "import random\n\n\n# moved\nrandom.shuffle([])\n"
        f1, _ = analyze_source(code, "x.py")
        f2, _ = analyze_source(shifted, "x.py")
        assign_fingerprints(f1)
        assign_fingerprints(f2)
        assert f1[0].fingerprint == f2[0].fingerprint
        assert f1[0].line != f2[0].line

    def test_identical_snippets_get_distinct_fingerprints(self):
        code = "import random\nrandom.shuffle([])\nrandom.shuffle([])\n"
        findings, _ = analyze_source(code, "x.py")
        assign_fingerprints(findings)
        prints = {f.fingerprint for f in findings}
        assert len(prints) == 2

    def test_baselined_findings_do_not_gate(self, tmp_path):
        bad = tmp_path / "legacy.py"
        bad.write_text("import random\nrandom.shuffle([])\n")
        first = analyze_paths([bad])
        assert first.exit_code == 1
        baseline = Baseline.from_findings(first.findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        second = analyze_paths([bad], baseline=Baseline.load(path))
        assert second.exit_code == 0
        assert len(second.baselined) == 1
        # new debt still gates
        bad.write_text(
            "import random\nrandom.shuffle([])\nrandom.random()\n")
        third = analyze_paths([bad], baseline=Baseline.load(path))
        assert third.exit_code == 1
        assert len(third.findings) == 1
        assert len(third.baselined) == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0


class TestLintCLI:
    def test_json_format_and_exit_code(self, tmp_path, capsys):
        code = main(["lint", str(FIXTURES / "bad_r001.py"),
                     "--format", "json", "--no-baseline"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["new"] >= 2
        assert all(f["rule"] == "R001" for f in report["findings"])

    def test_text_format_lists_findings(self, capsys):
        code = main(["lint", str(FIXTURES / "bad_r002.py"),
                     "--no-baseline"])
        assert code == 1
        out = capsys.readouterr().out
        assert "R002" in out and "bad_r002.py" in out

    def test_clean_paths_exit_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "good_clean.py"),
                     "--no-baseline"]) == 0

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        bad = tmp_path / "legacy.py"
        bad.write_text("import random\nrandom.shuffle([])\n")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(bad), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert baseline.exists()
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0

    def test_out_writes_report_artifact(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        main(["lint", str(FIXTURES / "bad_r003.py"), "--no-baseline",
              "--out", str(out)])
        report = json.loads(out.read_text())
        assert report["counts"]["new"] >= 2

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out


class TestSelfCheck:
    """The triage satellite: src/repro itself must be clean."""

    def test_src_repro_has_zero_unsuppressed_findings(self):
        report = analyze_paths([SRC])
        assert not report.parse_errors, report.parse_errors
        assert report.findings == [], "\n".join(
            f.format() for f in report.findings
        )

    def test_src_repro_suppressions_all_justified_and_used(self):
        report = analyze_paths([SRC])
        assert report.unjustified_suppressions == []
        assert report.unused_suppressions == []

    def test_shipped_baseline_is_empty(self):
        baseline = Baseline.load(
            Path(__file__).parent.parent / "replicheck.baseline.json")
        assert len(baseline) == 0
