"""Fault-tolerance tests (paper Section V future work)."""

import numpy as np
import pytest

from repro.dist.distributions import cyclic_distribution, mps_distribution
from repro.engines.fault import (
    forkjoin_failure_outcome,
    recovery_time,
    redistribute_after_failure,
)
from repro.errors import DistributionError
from repro.par.machine import HITS_CLUSTER


@pytest.fixture()
def mps_dist():
    rng = np.random.default_rng(1)
    return mps_distribution(rng.uniform(800, 1200, 100), 16)


@pytest.fixture()
def cyclic_dist():
    return cyclic_distribution(np.full(10, 1000.0), 16)


class TestRedistribution:
    def test_mps_recovery_conserves_data(self, mps_dist):
        report = redistribute_after_failure(mps_dist, [3, 7])
        assert report.recoverable
        assert report.survivors == 14
        new = report.new_distribution
        assert new.owned.sum() == pytest.approx(mps_dist.owned.sum())
        # still monolithic: one owner per partition
        assert np.all((new.owned > 0).sum(axis=0) == 1)

    def test_mps_survivors_keep_their_partitions(self, mps_dist):
        report = redistribute_after_failure(mps_dist, [0])
        survivors = list(range(1, 16))
        assert np.all(
            report.new_distribution.owned >= mps_dist.owned[survivors] - 1e-9
        )

    def test_cyclic_recovery_spreads_evenly(self, cyclic_dist):
        report = redistribute_after_failure(cyclic_dist, [5])
        new = report.new_distribution
        assert new.owned.sum() == pytest.approx(cyclic_dist.owned.sum())
        assert new.balance() > 0.99

    def test_bytes_moved_matches_lost_share(self, cyclic_dist):
        report = redistribute_after_failure(cyclic_dist, [5], bytes_per_pattern=8.0)
        lost = cyclic_dist.owned[5].sum()
        assert report.bytes_moved == pytest.approx(lost * 8.0)

    def test_all_ranks_failed_rejected(self, cyclic_dist):
        with pytest.raises(DistributionError):
            redistribute_after_failure(cyclic_dist, list(range(16)))

    def test_bad_rank_rejected(self, cyclic_dist):
        with pytest.raises(DistributionError):
            redistribute_after_failure(cyclic_dist, [99])
        with pytest.raises(DistributionError):
            redistribute_after_failure(cyclic_dist, [])


class TestRecoveryTime:
    def test_finite_and_small(self, mps_dist):
        report = redistribute_after_failure(mps_dist, [1, 2])
        t = recovery_time(report, HITS_CLUSTER)
        assert 0 < t < 10.0

    def test_more_failures_cost_more(self, mps_dist):
        t1 = recovery_time(
            redistribute_after_failure(mps_dist, [1]), HITS_CLUSTER
        )
        t4 = recovery_time(
            redistribute_after_failure(mps_dist, [1, 2, 3, 4]), HITS_CLUSTER
        )
        assert t4 > t1


class TestForkJoinContrast:
    def test_master_failure_catastrophic(self):
        report = forkjoin_failure_outcome([0])
        assert not report.recoverable
        assert "master" in report.reason
        assert recovery_time(report, HITS_CLUSTER) == float("inf")

    def test_worker_failure_still_fatal(self):
        report = forkjoin_failure_outcome([11])
        assert not report.recoverable
        assert "checkpoint" in report.reason


class TestConservation:
    """Recovery must conserve every partition's pattern mass — silent loss
    or duplication during re-homing becomes a hard DistributionError."""

    def test_valid_recoveries_pass(self, mps_dist, cyclic_dist):
        # the check runs inside redistribute_after_failure on both kinds
        assert redistribute_after_failure(mps_dist, [5]).recoverable
        assert redistribute_after_failure(cyclic_dist, [5]).recoverable

    def test_lost_patterns_detected(self, cyclic_dist):
        from repro.dist.distributions import DataDistribution
        from repro.engines.fault import _check_conservation

        report = redistribute_after_failure(cyclic_dist, [3])
        good = report.new_distribution
        corrupted = DataDistribution(
            kind="cyclic", owned=good.owned * 0.999  # 0.1% of the mass gone
        )
        with pytest.raises(DistributionError, match="lost patterns"):
            _check_conservation(cyclic_dist, corrupted)

    def test_tiny_float_drift_tolerated(self, cyclic_dist):
        from repro.dist.distributions import DataDistribution
        from repro.engines.fault import _check_conservation

        report = redistribute_after_failure(cyclic_dist, [3])
        drifted = DataDistribution(
            kind="cyclic",
            owned=report.new_distribution.owned * (1.0 + 1e-13),
        )
        _check_conservation(cyclic_dist, drifted)  # must not raise
